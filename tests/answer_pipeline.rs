//! Cross-crate integration: the full answer-file pipeline — simulate,
//! serialize, reload, render — is lossless and deterministic.

use photon_gi::core::view::{auto_exposure, render};
use photon_gi::core::{Answer, Camera, SimConfig, Simulator};
use photon_gi::scenes::TestScene;

fn camera() -> Camera {
    let v = TestScene::CornellBox.view();
    Camera {
        eye: v.eye,
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 64,
        height: 48,
    }
}

#[test]
fn render_from_reloaded_answer_is_identical() {
    let mut sim = Simulator::new(
        TestScene::CornellBox.build(),
        SimConfig {
            seed: 99,
            ..Default::default()
        },
    );
    sim.run_photons(60_000);
    let answer = sim.answer_snapshot();
    let scene = sim.scene();

    let mut bytes = Vec::new();
    answer.write_to(&mut bytes).expect("serialize");
    let reloaded = Answer::read_from(&mut bytes.as_slice()).expect("deserialize");

    let exposure = auto_exposure(scene, &answer);
    let img1 = render(scene, &answer, &camera(), exposure);
    let img2 = render(scene, &reloaded, &camera(), exposure);
    assert_eq!(img1.pixels().len(), img2.pixels().len());
    for (a, b) in img1.pixels().iter().zip(img2.pixels()) {
        assert_eq!(a, b);
    }
}

#[test]
fn answer_file_size_scales_with_bins_not_photons() {
    // The paper's storage argument: the answer is a distillation, so
    // doubling photons must NOT double file size once refinement slows.
    let size_at = |photons: u64| {
        let mut sim = Simulator::new(
            TestScene::CornellBox.build(),
            SimConfig {
                seed: 98,
                ..Default::default()
            },
        );
        sim.run_photons(photons);
        let mut bytes = Vec::new();
        sim.answer_snapshot()
            .write_to(&mut bytes)
            .expect("serialize");
        bytes.len() as f64
    };
    let small = size_at(50_000);
    let big = size_at(200_000);
    assert!(
        big / small < 3.0,
        "4x photons grew the answer file {small} -> {big}"
    );
}

#[test]
fn mirror_patch_refines_angularly() {
    // The Cornell Box mirror must hold view-dependent (angular) structure:
    // its bin tree refines beyond pure position splits.
    use photon_gi::hist::{Axis, ExportNode};
    let mut sim = Simulator::new(
        TestScene::CornellBox.build(),
        SimConfig {
            seed: 97,
            ..Default::default()
        },
    );
    sim.run_photons(250_000);
    let scene = sim.scene();
    let mirror_pid = (0..scene.polygon_count() as u32)
        .find(|&p| scene.patch(p).material.kind() == photon_gi::geom::SurfaceKind::Mirror)
        .expect("cornell box has a mirror");
    let tree = sim.forest().tree(mirror_pid);
    let mut angular = 0;
    for n in tree.export_nodes() {
        if let ExportNode::Internal { axis, .. } = n {
            if matches!(axis, Axis::Theta | Axis::RSq) {
                angular += 1;
            }
        }
    }
    assert!(
        angular > 0,
        "mirror tree has {} leaves but no angular splits",
        tree.leaf_count()
    );
}
