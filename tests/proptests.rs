//! Cross-crate property tests on the core invariants.

use photon_gi::core::Camera;
use photon_gi::dist::{balance, PhotonRecord};
use photon_gi::geom::{Material, Scene, SurfacePatch};
use photon_gi::hist::BinPoint;
use photon_gi::math::{Patch, Ray, Rgb, Vec3};
use proptest::prelude::*;

fn arb_vec3(range: f64) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn arb_unit() -> impl Strategy<Value = Vec3> {
    arb_vec3(1.0)
        .prop_filter("nonzero", |v| v.length_sq() > 1e-6)
        .prop_map(|v| v.normalized())
}

/// Arbitrary pinhole cameras with odd pixel grids (odd so the central
/// pixel's center sits exactly on the optical axis).
fn arb_camera() -> impl Strategy<Value = Camera> {
    (
        arb_vec3(10.0),
        arb_vec3(10.0),
        20.0f64..120.0,
        1usize..7,
        1usize..7,
    )
        .prop_map(|(eye, target, vfov_deg, wk, hk)| Camera {
            eye,
            target,
            up: Vec3::Y,
            vfov_deg,
            width: 2 * wk + 1,
            height: 2 * hk + 1,
        })
}

/// Is the camera's frame well conditioned (eye apart from target, view
/// direction not parallel to the up hint)?
fn well_posed(cam: &Camera) -> bool {
    let back = cam.eye - cam.target;
    back.length() > 1e-3 && back.normalized().cross(cam.up).length() > 1e-3
}

/// Random tile scenes for the octree oracle.
fn arb_scene() -> impl Strategy<Value = Scene> {
    proptest::collection::vec((0.0f64..8.0, 0.0f64..4.0, 0.0f64..8.0), 2..40).prop_map(|tiles| {
        let mut patches: Vec<SurfacePatch> = tiles
            .iter()
            .map(|&(x, y, z)| {
                SurfacePatch::new(
                    Patch::from_origin_edges(
                        Vec3::new(x, y, z),
                        Vec3::new(0.9, 0.0, 0.1),
                        Vec3::new(0.0, 0.2, 0.9),
                    ),
                    Material::matte(Rgb::gray(0.5)),
                )
            })
            .collect();
        // One emitter so Scene's invariant holds.
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(Vec3::new(0.0, 10.0, 0.0), Vec3::X, Vec3::Z),
            Material::emitter(Rgb::WHITE),
        ));
        let id = patches.len() as u32 - 1;
        Scene::new(
            patches,
            vec![photon_gi::geom::Luminaire {
                patch_id: id,
                power: Rgb::WHITE,
                collimation: 1.0,
            }],
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The octree must agree with exhaustive search on every ray.
    #[test]
    fn octree_matches_brute_force(scene in arb_scene(), origin in arb_vec3(10.0), dir in arb_unit()) {
        let ray = Ray::new(origin, dir);
        let fast = scene.intersect(&ray, f64::INFINITY);
        let slow = scene.intersect_brute_force(&ray, f64::INFINITY);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                prop_assert_eq!(f.patch_id, s.patch_id);
                prop_assert!((f.t - s.t).abs() < 1e-9);
            }
            (f, s) => prop_assert!(false, "octree {:?} vs brute {:?}", f.is_some(), s.is_some()),
        }
    }

    /// Photon records survive the wire format (f32 precision).
    #[test]
    fn record_codec_round_trips(
        patch_id in 0u32..100_000,
        s in 0.0f64..1.0,
        t in 0.0f64..1.0,
        theta in 0.0f64..std::f64::consts::TAU,
        r_sq in 0.0f64..1.0,
        e in 0.0f64..1000.0,
    ) {
        let rec = PhotonRecord {
            patch_id,
            point: BinPoint::new(s, t, theta, r_sq),
            energy: Rgb::new(e, e * 0.5, e * 0.25),
        };
        let mut buf = Vec::new();
        rec.encode_into(&mut buf);
        let back = PhotonRecord::decode(&buf);
        prop_assert_eq!(back.patch_id, patch_id);
        prop_assert!((back.point.s - s).abs() < 1e-6);
        prop_assert!((back.point.theta - theta).abs() < 1e-5);
        prop_assert!((back.energy.r - e).abs() / e.max(1.0) < 1e-6);
    }

    /// Every patch gets exactly one owner, and Best-Fit never loses to the
    /// naive contiguous split.
    #[test]
    fn ownership_covers_and_best_fit_wins(
        weights in proptest::collection::vec(0u64..50_000, 1..200),
        nranks in 1usize..16,
    ) {
        let naive = balance::naive(weights.len(), nranks);
        let packed = balance::best_fit(&weights, nranks);
        let mut seen = vec![false; weights.len()];
        for r in 0..nranks {
            for pid in packed.patches_of(r) {
                prop_assert!(!seen[pid as usize], "patch owned twice");
                seen[pid as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "unowned patch");
        prop_assert!(packed.imbalance(&weights) <= naive.imbalance(&weights) + 1e-9);
    }

    /// Bilinear inversion round-trips on arbitrary parallelogram patches.
    #[test]
    fn patch_st_inversion(
        origin in arb_vec3(5.0),
        e1 in arb_vec3(3.0),
        e2 in arb_vec3(3.0),
        s in 0.001f64..0.999,
        t in 0.001f64..0.999,
    ) {
        prop_assume!(e1.cross(e2).length() > 1e-3); // non-degenerate
        let p = Patch::from_origin_edges(origin, e1, e2);
        let q = p.point_at(s, t);
        let (s2, t2) = p.st_of_point(q).expect("inside");
        prop_assert!((s2 - s).abs() < 1e-6, "s {} -> {}", s, s2);
        prop_assert!((t2 - t).abs() < 1e-6, "t {} -> {}", t, t2);
    }

    /// Every pixel's primary ray starts at the eye with a unit direction.
    #[test]
    fn camera_rays_are_unit_and_anchored_at_the_eye(cam in arb_camera()) {
        prop_assume!(well_posed(&cam));
        for y in 0..cam.height {
            for x in 0..cam.width {
                let ray = cam.ray(x, y);
                prop_assert!((ray.origin - cam.eye).length() == 0.0, "pixel ({x},{y}) origin moved");
                prop_assert!((ray.dir.length() - 1.0).abs() < 1e-12, "pixel ({x},{y}) dir not unit");
                // Forward: every primary ray leaves the eye away from the
                // backward axis.
                let back = (cam.eye - cam.target).normalized();
                prop_assert!(ray.dir.dot(back) < 0.0, "pixel ({x},{y}) points backward");
            }
        }
    }

    /// The central pixel's ray passes through the look-at target.
    #[test]
    fn camera_center_ray_hits_the_target(cam in arb_camera()) {
        prop_assume!(well_posed(&cam));
        let center = cam.ray(cam.width / 2, cam.height / 2);
        let to_target = (cam.target - cam.eye).normalized();
        prop_assert!(
            (center.dir - to_target).length() < 1e-9,
            "center ray {:?} vs target direction {:?}",
            center.dir,
            to_target
        );
    }

    /// Horizontally mirrored pixels produce mirrored rays (the image plane
    /// is symmetric about the optical axis).
    #[test]
    fn camera_rays_mirror_across_the_axis(cam in arb_camera()) {
        prop_assume!(well_posed(&cam));
        let y = cam.height / 2;
        let left = cam.ray(0, y);
        let right = cam.ray(cam.width - 1, y);
        let axis = (cam.target - cam.eye).normalized();
        prop_assert!(
            (left.dir.dot(axis) - right.dir.dot(axis)).abs() < 1e-9,
            "mirrored pixels differ along the axis"
        );
    }

    /// Leapfrog substreams partition the base stream for any rank count.
    #[test]
    fn leapfrog_partition(seed in 0u64..1_000_000, nranks in 1usize..12) {
        use photon_gi::rng::Lcg48;
        let base = Lcg48::new(seed);
        let mut subs: Vec<Lcg48> = (0..nranks).map(|r| base.leapfrog(r, nranks)).collect();
        let mut reference = base.clone();
        for step in 0..nranks * 8 {
            let expect = reference.next_u48();
            let got = subs[step % nranks].next_u48();
            prop_assert_eq!(got, expect, "step {}", step);
        }
    }
}
