//! Cross-crate integration: exact and statistical equivalence between the
//! serial simulator and its parallelizations.

use photon_gi::core::{SimConfig, Simulator};
use photon_gi::dist::{run_distributed, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_gi::mpi::Platform;
use photon_gi::scenes::TestScene;

#[test]
fn one_rank_distributed_is_bit_identical_to_serial() {
    // nranks = 1 with naive balance must trace the exact same photon stream
    // as the serial simulator (leapfrog of 1 = identity) — identical
    // forests, bins, everything.
    let scene = TestScene::HarpsichordRoom.build();
    let config = DistConfig {
        seed: 31337,
        nranks: 1,
        platform: Platform::power_onyx(),
        balance: BalanceMode::Naive,
        batch: BatchMode::Fixed(1000),
        stop: StopRule::Photons(6000),
        ..Default::default()
    };
    let dist = run_distributed(&scene, &config);

    let mut serial = Simulator::new(
        TestScene::HarpsichordRoom.build(),
        SimConfig {
            seed: 31337,
            ..Default::default()
        },
    );
    serial.run_photons(6000);

    assert_eq!(dist.stats.emitted, serial.stats().emitted);
    assert_eq!(dist.stats.reflections, serial.stats().reflections);
    assert_eq!(dist.stats.absorbed, serial.stats().absorbed);
    assert_eq!(dist.stats.escaped, serial.stats().escaped);
    assert_eq!(
        dist.answer.total_leaf_bins(),
        serial.forest().total_leaf_bins()
    );
    for pid in 0..scene.polygon_count() as u32 {
        assert_eq!(
            dist.answer.tree(pid).tallies(),
            serial.forest().tree(pid).tallies(),
            "patch {pid}"
        );
        assert_eq!(
            dist.answer.tree(pid).leaf_count(),
            serial.forest().tree(pid).leaf_count(),
            "patch {pid}"
        );
    }
}

#[test]
fn rank_count_does_not_bias_the_solution() {
    // 2-rank and 4-rank runs consume disjoint halves/quarters of the same
    // global stream; per-patch tally distributions must match closely.
    let scene = TestScene::CornellBox.build();
    let run_with = |nranks: usize| {
        run_distributed(
            &scene,
            &DistConfig {
                seed: 555,
                nranks,
                platform: Platform::power_onyx(),
                balance: BalanceMode::Naive,
                batch: BatchMode::Fixed(2000 / nranks as u64),
                stop: StopRule::Photons(40_000),
                ..Default::default()
            },
        )
    };
    let a = run_with(2);
    let b = run_with(4);
    assert_eq!(a.stats.emitted, b.stats.emitted);
    // Leapfrog partitions random *values*, not photons, so the two runs
    // trace different trajectories from the same stream: agreement is
    // statistical. Allow ~5 sigma of Poisson noise on well-populated
    // patches.
    for pid in 0..scene.polygon_count() as u32 {
        let ta = a.answer.tree(pid).tallies() as f64;
        let tb = b.answer.tree(pid).tallies() as f64;
        if ta.min(tb) > 1000.0 {
            let sigma = (ta.max(tb)).sqrt();
            assert!(
                (ta - tb).abs() < 5.0 * sigma + 0.05 * ta.max(tb),
                "patch {pid}: {ta} vs {tb}"
            );
        }
    }
}

#[test]
fn virtual_platforms_agree_on_physics() {
    // The platform model changes time, never the light: identical seeds on
    // Onyx and SP-2 produce identical photon statistics.
    let scene = TestScene::CornellBox.build();
    let run_on = |platform| {
        run_distributed(
            &scene,
            &DistConfig {
                seed: 777,
                nranks: 4,
                platform,
                balance: BalanceMode::Naive,
                batch: BatchMode::Fixed(500),
                stop: StopRule::Photons(8000),
                ..Default::default()
            },
        )
    };
    let onyx = run_on(Platform::power_onyx());
    let sp2 = run_on(Platform::sp2());
    assert_eq!(onyx.stats.reflections, sp2.stats.reflections);
    assert_eq!(onyx.stats.absorbed, sp2.stats.absorbed);
    // But the clocks differ (SP-2 pays buffered messaging costs).
    assert!(sp2.virtual_elapsed != onyx.virtual_elapsed);
}
