//! Cross-validation: Photon's Monte Carlo radiance estimator against the
//! radiosity matrix solve — two independent algorithms, one answer.
//!
//! For an all-diffuse scene both must agree: radiosity solves
//! `(I − ρF) b = e` deterministically; Photon simulates photons and
//! estimates radiance from histogram tallies. Their agreement validates,
//! in one test, the cosine-weighted generation kernel, the transport and
//! energy weighting, the bin-measure normalization of the radiance
//! estimator, and the form-factor assembly + iterative solver.

use photon_gi::baselines::radiosity::RadiositySystem;
use photon_gi::core::{SimConfig, Simulator};
use photon_gi::geom::{Luminaire, Material, Scene, SurfacePatch};
use photon_gi::math::{Patch, Rgb, Vec3};

/// Unit emitter square at z = 1 facing a unit diffuse receiver at z = 0,
/// 1 apart — the configuration with the known analytic form factor 0.1998.
fn facing_squares(rho: f64) -> Scene {
    // Receiver at z = 0 faces +z.
    let receiver = Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::Y);
    // Emitter at z = 1 faces -z (toward the receiver).
    let emitter = Patch::from_origin_edges(Vec3::new(0.0, 0.0, 1.0), Vec3::Y, Vec3::X);
    let mut ep = SurfacePatch::new(emitter, Material::emitter(Rgb::WHITE));
    ep.material.emission = Rgb::WHITE;
    Scene::new(
        vec![
            SurfacePatch::new(receiver, Material::matte(Rgb::gray(rho))),
            ep,
        ],
        vec![Luminaire {
            patch_id: 1,
            // Power 1 over a unit-area emitter => emitter radiosity 1.
            power: Rgb::gray(1.0),
            collimation: 1.0,
        }],
    )
}

#[test]
fn photon_radiance_matches_radiosity_solution() {
    let rho = 0.5;
    let scene = facing_squares(rho);

    // Deterministic path: assemble and solve the radiosity system. With a
    // non-reflective emitter of radiosity 1, the receiver's radiosity is
    // exactly rho * F_receiver->emitter.
    let sys = RadiositySystem::assemble(&scene, 4000, 71);
    let sol = sys.solve_gauss_seidel(1e-12, 1000);
    let b_receiver = sol.b[0].g;
    let radiosity_l = b_receiver / std::f64::consts::PI;

    // Monte Carlo path: simulate and read the receiver's mean radiance
    // from the bin forest.
    let mut sim = Simulator::new(
        facing_squares(rho),
        SimConfig {
            seed: 71,
            ..Default::default()
        },
    );
    sim.run_photons(400_000);
    let answer = sim.answer_snapshot();
    let photon_l = answer.mean_patch_radiance(sim.scene(), 0).g;

    // Both must also agree with the analytic expectation
    // rho * F / pi with F ~ 0.1998 for parallel unit squares at unit gap.
    let analytic_l = rho * 0.1998 / std::f64::consts::PI;

    let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
    assert!(
        rel(photon_l, radiosity_l) < 0.05,
        "Photon {photon_l} vs radiosity {radiosity_l}"
    );
    assert!(
        rel(photon_l, analytic_l) < 0.05,
        "Photon {photon_l} vs analytic {analytic_l}"
    );
    assert!(
        rel(radiosity_l, analytic_l) < 0.05,
        "radiosity {radiosity_l} vs analytic {analytic_l}"
    );
}

#[test]
fn agreement_holds_across_albedos() {
    // The receiver's radiance is linear in rho for this single-bounce
    // configuration; both methods must track it.
    let mut photon_ls = Vec::new();
    for (i, &rho) in [0.25, 0.75].iter().enumerate() {
        let mut sim = Simulator::new(
            facing_squares(rho),
            SimConfig {
                seed: 72 + i as u64,
                ..Default::default()
            },
        );
        sim.run_photons(300_000);
        let answer = sim.answer_snapshot();
        photon_ls.push(answer.mean_patch_radiance(sim.scene(), 0).g);
    }
    let ratio = photon_ls[1] / photon_ls[0].max(1e-12);
    assert!(
        (ratio - 3.0).abs() < 0.2,
        "radiance not linear in albedo: ratio {ratio}"
    );
}

#[test]
fn emitter_radiance_matches_its_power() {
    // The light patch's own mean radiance must equal P / (A * pi): unit
    // power over unit area => 1/pi.
    let scene = facing_squares(0.5);
    let mut sim = Simulator::new(
        scene,
        SimConfig {
            seed: 73,
            ..Default::default()
        },
    );
    sim.run_photons(200_000);
    let answer = sim.answer_snapshot();
    let l = answer.mean_patch_radiance(sim.scene(), 1).g;
    let expect = 1.0 / std::f64::consts::PI;
    assert!(
        (l - expect).abs() / expect < 0.03,
        "emitter L {l} vs {expect}"
    );
}
