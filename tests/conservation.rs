//! Cross-crate integration: photon conservation across all three
//! parallelization modes on the same scene.

use photon_gi::core::{SimConfig, Simulator};
use photon_gi::dist::{run_distributed, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_gi::mpi::Platform;
use photon_gi::par::{run, ParConfig};
use photon_gi::scenes::TestScene;

const PHOTONS: u64 = 8_000;

#[test]
fn serial_conserves_photons_and_tallies() {
    let mut sim = Simulator::new(
        TestScene::CornellBox.build(),
        SimConfig {
            seed: 11,
            ..Default::default()
        },
    );
    sim.run_photons(PHOTONS);
    let s = sim.stats();
    assert!(s.is_conserved(), "{s:?}");
    assert_eq!(sim.forest().total_tallies(), s.emitted + s.reflections);
}

#[test]
fn shared_memory_conserves_photons_and_tallies() {
    let scene = TestScene::CornellBox.build();
    let config = ParConfig {
        seed: 11,
        threads: 4,
        batch_size: 2000,
        ..Default::default()
    };
    let r = run(&scene, &config, PHOTONS);
    assert!(r.stats.is_conserved(), "{:?}", r.stats);
    let tallies: u64 = (0..r.answer.patch_count() as u32)
        .map(|p| r.answer.tree(p).tallies())
        .sum();
    assert_eq!(tallies, r.stats.emitted + r.stats.reflections);
}

#[test]
fn distributed_conserves_photons_and_tallies() {
    let scene = TestScene::CornellBox.build();
    let config = DistConfig {
        seed: 11,
        nranks: 4,
        platform: Platform::indy_cluster(),
        balance: BalanceMode::BinPacking { pilot_photons: 500 },
        batch: BatchMode::Fixed(500),
        stop: StopRule::Photons(PHOTONS),
        ..Default::default()
    };
    let r = run_distributed(&scene, &config);
    assert!(r.stats.is_conserved(), "{:?}", r.stats);
    let tallies: u64 = (0..r.answer.patch_count() as u32)
        .map(|p| r.answer.tree(p).tallies())
        .sum();
    assert_eq!(tallies, r.stats.emitted + r.stats.reflections);
}

#[test]
fn all_three_modes_agree_statistically() {
    // Same scene, same photon budget: mean bounce counts agree within a few
    // percent across serial, shared-memory and distributed execution.
    let mean_bounces = |emitted: u64, reflections: u64| reflections as f64 / emitted as f64;

    let mut sim = Simulator::new(
        TestScene::CornellBox.build(),
        SimConfig {
            seed: 21,
            ..Default::default()
        },
    );
    sim.run_photons(PHOTONS);
    let serial = mean_bounces(sim.stats().emitted, sim.stats().reflections);

    let scene = TestScene::CornellBox.build();
    let par = run(
        &scene,
        &ParConfig {
            seed: 22,
            threads: 4,
            batch_size: 2000,
            ..Default::default()
        },
        PHOTONS,
    );
    let shared = mean_bounces(par.stats.emitted, par.stats.reflections);

    let dist = run_distributed(
        &scene,
        &DistConfig {
            seed: 23,
            nranks: 4,
            stop: StopRule::Photons(PHOTONS),
            batch: BatchMode::Fixed(500),
            ..Default::default()
        },
    );
    let distributed = mean_bounces(dist.stats.emitted, dist.stats.reflections);

    for (name, v) in [("shared", shared), ("distributed", distributed)] {
        assert!(
            (v - serial).abs() / serial < 0.05,
            "{name} mean bounces {v} vs serial {serial}"
        );
    }
}
