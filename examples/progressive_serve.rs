//! The full solve→store→render pipeline, live: submit a scene with no
//! precomputed answer, watch epochs refine, and render the same view from
//! each epoch as the service picks up fresher solutions.
//!
//! ```sh
//! cargo run --release --example progressive_serve
//! ```

use photon_gi::core::Camera;
use photon_gi::scenes::TestScene;
use photon_gi::serve::{
    AnswerStore, BackendChoice, RenderRequest, RenderService, ServeConfig, SolveRequest, SolverPool,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let store = Arc::new(AnswerStore::new());
    let solver = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());

    // Scene in: the Cornell Box, threaded backend, 80k-photon target.
    let kind = TestScene::CornellBox;
    let mut request = SolveRequest::new(kind.name(), kind.build());
    request.backend = BackendChoice::Threaded {
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
    };
    request.seed = 7;
    request.batch_size = 10_000;
    request.target_photons = 80_000;
    let job = solver.submit(request);
    println!(
        "submitted {} as {} — no answer stored yet",
        kind.name(),
        job.scene_id()
    );

    let v = kind.view();
    let camera = Camera {
        eye: v.eye,
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 160,
        height: 120,
    };
    let req = RenderRequest {
        scene_id: job.scene_id(),
        camera,
    };

    // Render the same view once per published epoch: quality converges
    // while the service stays online.
    let mut last = None;
    while let Some(progress) = job.next_progress(Duration::from_secs(120)) {
        let view = service.render_blocking(req).expect("served");
        let drift = last
            .map(|prev: std::sync::Arc<photon_gi::core::Image>| view.image.rms_error(&prev))
            .unwrap_or(f64::NAN);
        println!(
            "epoch {:>2}: {:>6} photons, {:>4} leaf bins | served epoch {:>2} ({:?}), \
             mean luminance {:.4}, rms vs previous {:.5}",
            progress.epoch,
            progress.emitted,
            progress.leaf_bins,
            view.epoch,
            view.outcome,
            view.image.mean_luminance(),
            drift,
        );
        last = Some(view.image);
        if progress.done {
            break;
        }
    }

    let final_view = service.render_blocking(req).expect("served");
    let out = std::env::temp_dir().join("progressive_serve.ppm");
    let mut f = std::fs::File::create(&out).expect("create output");
    final_view.image.write_ppm(&mut f).expect("write ppm");
    let m = service.metrics();
    println!(
        "final epoch {} -> {} | {} requests ({} rendered, {} cache hits), p50 {:.2} ms",
        final_view.epoch,
        out.display(),
        m.completed,
        m.rendered,
        m.cache_hits,
        m.latency.p50_ms,
    );
}
