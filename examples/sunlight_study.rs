//! Sunlight study: directional emission by scaling the generation circle.
//!
//! The paper's Fig 4.4 mechanism as an experiment: a square occluder above
//! a floor under (a) the 0.5° collimated sun, (b) a broader lamp, (c) fully
//! diffuse sky — watch the shadow edge sharpen as collimation tightens and
//! blur as the occluder rises. The scan is restricted to the shadow's `t`
//! band so the 1-D profile keeps full contrast.
//!
//! ```sh
//! cargo run --release --example sunlight_study
//! ```

use photon_gi::core::generate::PhotonGenerator;
use photon_gi::core::trace::trace_photon;
use photon_gi::hist::BinPoint;
use photon_gi::math::Rgb;
use photon_gi::rng::Lcg48;
use photon_gi::scenes::sun_room;

fn shadow_scan(h: f64, c: f64, strips: usize) -> Vec<f64> {
    let scene = sun_room(h, c);
    let generator = PhotonGenerator::new(&scene);
    let mut rng = Lcg48::new(404);
    let mut counts = vec![0u64; strips];
    let mut sink = |pid: u32, p: &BinPoint, _e: Rgb| {
        if pid == 0 && (p.t - 0.5).abs() < 0.05 {
            counts[((p.s * strips as f64) as usize).min(strips - 1)] += 1;
        }
    };
    for _ in 0..400_000 {
        trace_photon(&scene, &generator, &mut rng, &mut sink);
    }
    counts.into_iter().map(|v| v as f64).collect()
}

fn sparkline(profile: &[f64]) -> String {
    let max = profile.iter().cloned().fold(0.0f64, f64::max).max(1e-12);
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    profile
        .iter()
        .map(|v| glyphs[((v / max) * 7.0).round() as usize])
        .collect()
}

fn main() {
    println!("floor irradiance through the shadow (s axis, t in the shadow band):\n");
    for (label, h, c) in [
        ("sun (0.5 deg), occluder at 0.5 m", 0.5, 0.005),
        ("sun (0.5 deg), occluder at 4.0 m", 4.0, 0.005),
        ("lamp (c = 0.15), occluder at 0.5 m", 0.5, 0.15),
        ("lamp (c = 0.15), occluder at 4.0 m", 4.0, 0.15),
        ("diffuse sky (c = 1.0), occluder at 0.5 m", 0.5, 1.0),
    ] {
        let profile = shadow_scan(h, c, 64);
        println!("{label:44} |{}|", sparkline(&profile));
    }
    println!("\nsharp shadow under the collimated sun near the floor; edges blur as the");
    println!("occluder rises or the source widens — what point-light tracers cannot do.");
}
