//! Serving many viewpoints from one stored answer — the photon-serve
//! quickstart, with the cache-hit speedup measured end to end.
//!
//! Simulates the Cornell Box once, persists the answer through the
//! `PHOTANS1` codec, loads it back into an [`AnswerStore`], and then asks
//! the render service for a camera orbit twice: the first pass renders
//! tile-parallel, the second is served from the LRU view cache.
//!
//! ```sh
//! cargo run --release --example serve_views
//! ```

use photon_gi::core::{Camera, SimConfig, Simulator};
use photon_gi::scenes::TestScene;
use photon_gi::serve::{AnswerStore, RenderRequest, RenderService, ServeConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // Simulate once (the expensive, view-independent part).
    let kind = TestScene::CornellBox;
    let t0 = Instant::now();
    let mut sim = Simulator::new(
        kind.build(),
        SimConfig {
            seed: 7,
            ..Default::default()
        },
    );
    sim.run_photons(60_000);
    let answer = sim.answer_snapshot();
    println!(
        "simulated {} photons in {:.2} s ({} leaf bins)",
        sim.stats().emitted,
        t0.elapsed().as_secs_f64(),
        answer.total_leaf_bins()
    );

    // Persist and restore through the answer codec, as a service would.
    let scene = sim.scene().clone();
    let staging = AnswerStore::new();
    let staged = staging.insert(kind.name(), scene.clone(), answer);
    let path = std::env::temp_dir().join("cornell.photans");
    staging
        .save(
            staged,
            &mut std::fs::File::create(&path).expect("create answer file"),
        )
        .unwrap();
    println!("answer persisted -> {}", path.display());

    let store = Arc::new(AnswerStore::new());
    let id = store
        .load(
            kind.name(),
            scene,
            &mut std::fs::File::open(&path).expect("reopen answer file"),
        )
        .expect("load answer");

    // Serve an orbit of viewpoints, twice.
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    let view = kind.view();
    let orbit: Vec<Camera> = (0..12)
        .map(|i| {
            let v = view.orbited(i as f64 / 12.0, 1.0);
            Camera {
                eye: v.eye,
                target: v.target,
                up: v.up,
                vfov_deg: v.vfov_deg,
                width: 160,
                height: 120,
            }
        })
        .collect();

    let cold = Instant::now();
    let first: Vec<_> = service
        .render_batch(orbit.iter().map(|&camera| RenderRequest {
            scene_id: id,
            camera,
        }))
        .into_iter()
        .map(|r| r.expect("served"))
        .collect();
    let cold = cold.elapsed().as_secs_f64();

    let warm = Instant::now();
    let second: Vec<_> = service
        .render_batch(orbit.iter().map(|&camera| RenderRequest {
            scene_id: id,
            camera,
        }))
        .into_iter()
        .map(|r| r.expect("served"))
        .collect();
    let warm = warm.elapsed().as_secs_f64();

    let hits = second.iter().filter(|r| r.from_cache()).count();
    println!(
        "cold orbit: {:.1} ms; warm orbit: {:.1} ms ({hits}/12 cache hits, {:.0}x speedup)",
        cold * 1e3,
        warm * 1e3,
        cold / warm.max(1e-9)
    );
    assert!(
        first
            .iter()
            .zip(&second)
            .all(|(a, b)| a.image.pixels() == b.image.pixels()),
        "cached views must be identical to rendered ones"
    );

    let m = service.metrics();
    println!(
        "service: {} completed, {} rendered, {} cache hits; p50 {:.2} ms p99 {:.2} ms, {:.0} q/s",
        m.completed, m.rendered, m.cache_hits, m.latency.p50_ms, m.latency.p99_ms, m.qps
    );

    let out = std::env::temp_dir().join("serve_views.ppm");
    let mut f = std::fs::File::create(&out).expect("create output");
    first[0].image.write_ppm(&mut f).expect("write ppm");
    println!("first view -> {}", out.display());
}
