//! A viewport that refines tile-by-tile as the solve converges: subscribe
//! to a scene being solved in the background and receive a pushed
//! `FrameDelta` per published epoch — only the tiles that changed — then
//! reassemble them locally into the exact frame a full render would
//! produce. No polling anywhere: the store announces each publish to the
//! dispatcher, the dispatcher pushes to subscribers, `recv` blocks until
//! something actually happened.
//!
//! ```sh
//! cargo run --release --example streaming_viewport
//! ```

use photon_gi::scenes::TestScene;
use photon_gi::serve::{
    AnswerStore, RenderRequest, RenderService, ServeConfig, SolveRequest, SolverPool, StreamRequest,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let kind = TestScene::CornellBox;
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            tile_size: 16,
            ..ServeConfig::default()
        },
    );

    // A progressive solve: one publish every two batches.
    let mut request = SolveRequest::new("cornell-viewport", kind.build());
    request.seed = 7;
    request.batch_size = 5_000;
    request.target_photons = 50_000;
    request.publish_every = 2;
    let job = pool.submit(request);

    // Subscribe the viewport: the canonical view pulled back, so the box
    // floats against background — those tiles never change, and the
    // deltas stay visibly smaller than full frames.
    let v = kind.view().orbited(0.0, 1.6);
    let camera = photon_gi::core::Camera {
        eye: v.eye,
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 128,
        height: 96,
    };
    let stream = service
        .subscribe(StreamRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("subscribe");

    // Apply deltas as they arrive. The first rebuilds the frame from a
    // black canvas; later ones repaint only what the new photons changed.
    let mut canvas = None;
    let final_epoch = 50_000 / 5_000 / 2; // target / batch / publish_every
    println!("epoch | tiles shipped | delta kB | full kB | viewport luminance");
    loop {
        let delta = stream
            .recv_timeout(Duration::from_secs(300))
            .expect("pushed delta");
        let canvas = canvas.get_or_insert_with(|| delta.canvas());
        delta.apply(canvas);
        println!(
            "{:>5} | {:>13} | {:>8.1} | {:>7.1} | {:.4}",
            delta.epoch,
            delta.tiles.len(),
            delta.tile_bytes() as f64 / 1024.0,
            delta.full_frame_bytes() as f64 / 1024.0,
            canvas.mean_luminance(),
        );
        if delta.epoch >= final_epoch {
            break;
        }
    }
    job.wait_done(Duration::from_secs(300)).expect("converged");

    // The reassembled viewport is exactly the frame the service would
    // serve a fresh client asking for the same epoch.
    let served = service
        .render_blocking(RenderRequest {
            scene_id: job.scene_id(),
            camera,
        })
        .expect("served");
    let canvas = canvas.expect("at least one delta");
    assert_eq!(
        canvas.pixels(),
        served.image.pixels(),
        "streamed viewport must equal the served frame"
    );
    let m = service.metrics();
    println!(
        "\nbit-identical to the served epoch-{} frame; {} deltas shipped {} kB \
         instead of {} kB ({} kB saved)",
        served.epoch,
        m.stream.deltas,
        m.stream.tile_bytes / 1024,
        m.stream.full_frame_bytes / 1024,
        m.stream.bytes_saved() / 1024,
    );
}
