//! Distributed rendering on a simulated 1997 cluster.
//!
//! Runs the full distributed-memory Photon pipeline — pilot trace, Best-Fit
//! bin packing, leapfrogged photon streams, all-to-all tally exchange,
//! adaptive batch sizing — on eight virtual IBM SP-2 ranks, then renders
//! the merged answer.
//!
//! ```sh
//! cargo run --release --example cluster_render
//! ```

use photon_gi::core::view::{auto_exposure, render};
use photon_gi::core::Camera;
use photon_gi::dist::{
    run_distributed, AdaptiveBatch, BalanceMode, BatchMode, DistConfig, StopRule,
};
use photon_gi::mpi::Platform;
use photon_gi::scenes::TestScene;

fn main() {
    let scene_kind = TestScene::CornellBox;
    let scene = scene_kind.build();
    let config = DistConfig {
        seed: 64,
        nranks: 8,
        platform: Platform::sp2(),
        balance: BalanceMode::BinPacking {
            pilot_photons: 2000,
        },
        batch: BatchMode::Adaptive(AdaptiveBatch::default()),
        stop: StopRule::Photons(400_000),
        ..Default::default()
    };
    println!(
        "running {} ranks on the {} model...",
        config.nranks, config.platform.name
    );
    let r = run_distributed(&scene, &config);

    println!(
        "photons: {} emitted, {} reflections",
        r.stats.emitted, r.stats.reflections
    );
    println!(
        "virtual time: {:.2} s; steady rate {:.0} photons/s",
        r.virtual_elapsed,
        r.speed.steady_rate()
    );
    println!(
        "batch sizes: {:?}",
        &r.batch_history[..r.batch_history.len().min(10)]
    );
    println!("per-rank tallies processed: {:?}", r.per_rank_tallies);
    println!(
        "forwarded {} MB of photon records through the all-to-all",
        r.bytes_forwarded / 1_000_000
    );

    let view = scene_kind.view();
    let cam = Camera {
        eye: view.eye,
        target: view.target,
        up: view.up,
        vfov_deg: view.vfov_deg,
        width: 200,
        height: 150,
    };
    let img = render(&scene, &r.answer, &cam, auto_exposure(&scene, &r.answer));
    let path = std::env::temp_dir().join("cluster_render.ppm");
    let mut f = std::fs::File::create(&path).expect("create output");
    img.write_ppm(&mut f).expect("write ppm");
    println!("merged answer rendered -> {}", path.display());
}
