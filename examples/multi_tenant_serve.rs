//! Fair multi-job scheduling, live: two tenants share a one-worker
//! `SolverPool` — a heavy archviz solve and a light interactive one — and
//! the light tenant's render converges long before the heavy job is done.
//! Along the way the heavy job is paused, resumed, and finally canceled
//! (which still publishes its best snapshot), while a quota keeps a third
//! tenant from eating the pool.
//!
//! ```sh
//! cargo run --release --example multi_tenant_serve
//! ```

use photon_gi::core::Camera;
use photon_gi::scenes::TestScene;
use photon_gi::serve::{
    AnswerStore, RenderRequest, RenderService, ServeConfig, SolveRequest, SolverPool,
};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
    service.attach_solver(pool.stats_source());

    // Tenant "batch": a heavy background solve, low priority.
    let kind = TestScene::CornellBox;
    let mut heavy = SolveRequest::new("archviz-batch", kind.build());
    heavy.seed = 41;
    heavy.batch_size = 20_000;
    heavy.target_photons = 1_000_000;
    heavy.publish_every = 5;
    heavy.tenant = "batch".into();
    heavy.priority = 1;
    let heavy = pool.submit(heavy);

    // Tenant "interactive": a small job, double weight — its batches are
    // interleaved with the heavy job's, so it finishes in seconds even
    // though the pool has a single worker.
    let mut light = SolveRequest::new("viewer-session", kind.build());
    light.seed = 42;
    light.batch_size = 2_000;
    light.target_photons = 30_000;
    light.tenant = "interactive".into();
    light.priority = 2;
    let light = pool.submit(light);

    // Tenant "trial": capped at 10k photons until someone pays.
    pool.set_tenant_budget("trial", 10_000);
    let mut trial = SolveRequest::new("trial-scene", kind.build());
    trial.seed = 43;
    trial.batch_size = 2_000;
    trial.target_photons = 100_000;
    trial.tenant = "trial".into();
    let trial = pool.submit(trial);

    let v = kind.view();
    let camera = Camera {
        eye: v.eye,
        target: v.target,
        up: v.up,
        vfov_deg: v.vfov_deg,
        width: 96,
        height: 72,
    };

    let done = light
        .wait_done(Duration::from_secs(300))
        .expect("light job converged");
    let view = service
        .render_blocking(RenderRequest {
            scene_id: light.scene_id(),
            camera,
        })
        .expect("served");
    let heavy_so_far = store.get(heavy.scene_id()).unwrap().answer.emitted();
    println!(
        "interactive tenant done: {} photons in {} epochs, served epoch {} \
         (mean luminance {:.4})",
        done.emitted,
        done.epoch,
        view.epoch,
        view.image.mean_luminance()
    );
    println!(
        "… while the batch tenant is only at {heavy_so_far}/1000000 photons \
         on the same single worker"
    );

    // Operations on the heavy job: pause it, look at the scheduler, bring
    // it back, then cancel — the store keeps its best snapshot.
    heavy.pause();
    std::thread::sleep(Duration::from_millis(200));
    let m = service.metrics();
    println!("\nscheduler while paused:");
    for j in &m.solver.jobs {
        println!(
            "  job {} [{}] {}: {}/{} photons, {} slices, {:.0} photons/s",
            j.job, j.tenant, j.state, j.emitted, j.target_photons, j.slices, j.photons_per_sec
        );
    }
    for t in &m.solver.tenants {
        println!(
            "  tenant {:<12} {} slices, {} photons used, budget left: {}",
            t.tenant,
            t.slices,
            t.photons_used,
            t.budget_remaining
                .map_or("unlimited".into(), |b| b.to_string()),
        );
    }

    heavy.resume();
    heavy.cancel();
    let final_heavy = heavy
        .wait_done(Duration::from_secs(300))
        .expect("cancel finalizes");
    println!(
        "\nbatch job canceled at {} photons (canceled={}); its snapshot still renders:",
        final_heavy.emitted, final_heavy.canceled
    );
    let view = service
        .render_blocking(RenderRequest {
            scene_id: heavy.scene_id(),
            camera,
        })
        .expect("served");
    println!(
        "  epoch {} image, mean luminance {:.4}",
        view.epoch,
        view.image.mean_luminance()
    );

    // The trial tenant parked at its budget; topping it up finishes it.
    let parked = store.get(trial.scene_id()).unwrap().answer.emitted();
    println!("\ntrial tenant parked at {parked} photons (budget 10000)");
    pool.add_tenant_budget("trial", 200_000);
    let done = trial
        .wait_done(Duration::from_secs(300))
        .expect("trial resumed");
    println!(
        "after top-up the trial job converged at {} photons",
        done.emitted
    );
}
