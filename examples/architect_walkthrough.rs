//! Architectural walkthrough: the paper's motivating application.
//!
//! "Global illumination is key to virtual reality efforts since correct
//! views can be displayed quickly as the viewpoint moves." We solve the
//! Harpsichord Practice Room **once**, then render a camera path of frames
//! from the same answer file — no per-frame recomputation, the property
//! that distinguishes Photon from view-dependent ray tracing.
//!
//! ```sh
//! cargo run --release --example architect_walkthrough
//! ```

use photon_gi::core::view::{auto_exposure, render};
use photon_gi::core::{Camera, SimConfig, Simulator};
use photon_gi::math::Vec3;
use photon_gi::scenes::TestScene;
use std::time::Instant;

fn main() {
    let scene = TestScene::HarpsichordRoom.build();
    println!(
        "solving global illumination once ({} polygons)...",
        scene.polygon_count()
    );
    let t0 = Instant::now();
    let mut sim = Simulator::new(
        scene,
        SimConfig {
            seed: 1997,
            ..Default::default()
        },
    );
    sim.run_photons(300_000);
    let solve_secs = t0.elapsed().as_secs_f64();
    let answer = sim.answer_snapshot();
    let scene = sim.scene();
    println!(
        "solved in {solve_secs:.2} s: {} leaf bins",
        answer.total_leaf_bins()
    );

    // Walk a camera arc through the room; every frame reads the same answer.
    let exposure = auto_exposure(scene, &answer);
    let frames = 12;
    let out = std::env::temp_dir();
    let t0 = Instant::now();
    for k in 0..frames {
        let angle = std::f64::consts::PI * (0.15 + 0.5 * k as f64 / frames as f64);
        let eye = Vec3::new(3.5 + 2.8 * angle.cos(), 1.7, 3.0 - 2.8 * angle.sin());
        let cam = Camera {
            eye,
            target: Vec3::new(3.4, 1.1, 3.1), // the harpsichord
            up: Vec3::Y,
            vfov_deg: 55.0,
            width: 160,
            height: 120,
        };
        let img = render(scene, &answer, &cam, exposure);
        let path = out.join(format!("walkthrough_{k:02}.ppm"));
        let mut f = std::fs::File::create(&path).expect("create frame");
        img.write_ppm(&mut f).expect("write frame");
    }
    let walk_secs = t0.elapsed().as_secs_f64();
    println!(
        "{frames} frames in {walk_secs:.2} s ({:.0} ms/frame) -> {}/walkthrough_*.ppm",
        1000.0 * walk_secs / frames as f64,
        out.display()
    );
    println!(
        "re-solving per frame would have cost ~{:.0} s instead of {walk_secs:.2} s",
        solve_secs * frames as f64
    );
}
