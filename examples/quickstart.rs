//! Quickstart: simulate the Cornell Box, inspect the solution, render one
//! frame.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use photon_gi::core::view::{auto_exposure, render};
use photon_gi::core::{Camera, SimConfig, Simulator};
use photon_gi::scenes::TestScene;

fn main() {
    // 1. Build a scene (30 defining polygons, one area light, one mirror).
    let scene = TestScene::CornellBox.build();
    println!("scene: {} polygons", scene.polygon_count());

    // 2. Simulate light transport: photons stream from the luminaires and
    //    every reflection lands in a 4-D adaptive histogram bin.
    let mut sim = Simulator::new(
        scene,
        SimConfig {
            seed: 7,
            ..Default::default()
        },
    );
    sim.run_photons(200_000);
    let stats = *sim.stats();
    println!(
        "emitted {} photons: {} absorbed, {} escaped, {} reflections",
        stats.emitted, stats.absorbed, stats.escaped, stats.reflections
    );
    println!(
        "bin forest: {} leaf bins over {} patches ({} KiB)",
        sim.forest().total_leaf_bins(),
        sim.forest().len(),
        sim.forest().memory_bytes() / 1024
    );

    // 3. The answer is view-independent: render any viewpoint from it.
    let answer = sim.answer_snapshot();
    let scene = sim.scene();
    let view = TestScene::CornellBox.view();
    let cam = Camera {
        eye: view.eye,
        target: view.target,
        up: view.up,
        vfov_deg: view.vfov_deg,
        width: 160,
        height: 120,
    };
    let img = render(scene, &answer, &cam, auto_exposure(scene, &answer));
    let path = std::env::temp_dir().join("photon_quickstart.ppm");
    let mut f = std::fs::File::create(&path).expect("create output");
    img.write_ppm(&mut f).expect("write ppm");
    println!(
        "rendered {}x{} frame -> {}",
        img.width(),
        img.height(),
        path.display()
    );
}
