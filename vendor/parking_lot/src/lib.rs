//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The workspace builds in hermetic environments with no crates.io access,
//! so the handful of external crates it leans on are vendored as minimal
//! shims (see `vendor/README.md`). This one maps the parking_lot lock API
//! onto `std::sync` primitives: same method names, no `Result` wrappers.
//! Poisoning is ignored — a poisoned std lock yields its inner guard, which
//! matches parking_lot's semantics (parking_lot locks never poison).
//!
//! Only the surface the workspace uses is provided: `Mutex` (`new`, `lock`,
//! `into_inner`), `RwLock` (`new`, `read`, `write`, `into_inner`), and the
//! guard types (std's, re-exported under parking_lot's names).

#![deny(missing_docs)]

use std::sync;
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }
}
