//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The workspace builds in hermetic environments with no crates.io access
//! (see `vendor/README.md`), so the `benches/` targets run against this
//! shim: same macro and builder surface (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`, throughput
//! annotations), but measurement is a plain self-calibrating wall-clock
//! loop — no statistics, outlier rejection, or HTML reports. Passing
//! `--test` (as `cargo test` does for bench targets) switches every
//! benchmark to a single smoke iteration.

#![deny(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many logical elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    quick: bool,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Times `routine`, self-calibrating the iteration count until the
    /// measurement window is long enough to trust (~25 ms).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.quick {
            std::hint::black_box(routine());
            self.ns_per_iter = None;
            return;
        }
        std::hint::black_box(routine()); // warm-up
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(25) || iters >= 1 << 24 {
                self.ns_per_iter = Some(elapsed.as_nanos() as f64 / iters as f64);
                return;
            }
            iters *= 2;
        }
    }
}

/// The top-level harness state.
pub struct Criterion {
    quick: bool,
}

impl Criterion {
    /// Builds the harness from the process arguments. Full measurement only
    /// runs under `cargo bench` (which passes `--bench`); `cargo test` and
    /// direct invocation get the single-iteration smoke mode, and `--test`
    /// forces it.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
        Criterion { quick }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            quick: self.quick,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// A named set of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    quick: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Sets the sample count (accepted for API compatibility; the shim's
    /// calibration loop ignores it).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher {
            quick: self.quick,
            ns_per_iter: None,
        };
        f(&mut b);
        self.report(&id.to_string(), b.ns_per_iter);
    }

    /// Runs one benchmark that receives an input by reference.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b = Bencher {
            quick: self.quick,
            ns_per_iter: None,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.ns_per_iter);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, ns_per_iter: Option<f64>) {
        let Some(ns) = ns_per_iter else {
            println!("{}/{id}: smoke-tested (1 iteration)", self.name);
            return;
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => format!(" ({:.0} elem/s)", n as f64 * 1e9 / ns),
            Some(Throughput::Bytes(n)) => format!(" ({:.0} B/s)", n as f64 * 1e9 / ns),
            None => String::new(),
        };
        println!("{}/{id}: {:.1} ns/iter{rate}", self.name, ns);
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut calls = 0u32;
        let mut b = Bencher {
            quick: true,
            ns_per_iter: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.ns_per_iter.is_none());
    }

    #[test]
    fn calibration_measures_something() {
        let mut b = Bencher {
            quick: false,
            ns_per_iter: None,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(5)));
        assert!(b.ns_per_iter.unwrap() > 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(
            BenchmarkId::new("octree", "Cornell Box").to_string(),
            "octree/Cornell Box"
        );
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
