//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The workspace builds in hermetic environments with no crates.io access
//! (see `vendor/README.md`). `simmpi` only uses crossbeam's unbounded
//! channels — `unbounded`, `Sender`, `Receiver`, `RecvTimeoutError` — and
//! `std::sync::mpsc` provides the identical API, so this shim is a re-export.

#![deny(missing_docs)]

/// Multi-producer channels (the subset of `crossbeam::channel` in use).
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn senders_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        std::thread::spawn(move || tx2.send(1).unwrap())
            .join()
            .unwrap();
        tx.send(2).unwrap();
        let mut got = vec![rx.recv().unwrap(), rx.recv().unwrap()];
        got.sort();
        assert_eq!(got, vec![1, 2]);
    }
}
