//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The workspace builds in hermetic environments with no crates.io access
//! (see `vendor/README.md`), so this shim reimplements the slice of the
//! proptest API its test suites use: the [`proptest!`] macro (with an
//! optional `#![proptest_config(..)]` header), the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`/`prop_filter`, range and tuple strategies,
//! [`collection::vec`], and the `prop_assert!`/`prop_assert_eq!`/
//! [`prop_assume!`] macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - no shrinking — a failing case reports its case index and message only;
//! - sampling is a fixed deterministic stream per test name (seeded by a
//!   hash of the test's name), so failures are reproducible but the
//!   explored inputs never vary between runs.

#![deny(missing_docs)]

use std::ops::Range;

/// Deterministic generator feeding the strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name, so each test explores its own
    /// reproducible inputs.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, folded into a nonzero seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(h | 1)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test inputs (the sampling core of proptest's trait).
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps produced values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Chains a dependent strategy: each produced value picks the
    /// strategy the final value is drawn from (proptest's monadic bind —
    /// what makes "a rectangle inside a sampled frame" expressible).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `keep`; `whence` names the predicate in the
    /// exhaustion panic.
    fn prop_filter<F>(self, whence: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            keep,
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
    type Value = O::Value;

    fn sample(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.sample(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive samples",
            self.whence
        );
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as u64;
                assert!(span > 0, "empty integer range");
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = self.end.wrapping_sub(self.start) as u64;
                assert!(self.end > self.start, "empty integer range");
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
signed_range_strategy!(i32, i64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Strategy that always yields a clone of one value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-test configuration (`cases` is the only knob the workspace uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Declares property tests: zero or more `#[test]` functions whose
/// arguments are drawn from strategies via `name in strategy` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property failed at case {}/{} of {}: {}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside [`proptest!`], failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} != {:?})",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(::std::format!(
                "{} ({:?} != {:?})", ::std::format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..7.0, n in 1u32..9) {
            prop_assert!((-3.0..7.0).contains(&x), "x = {}", x);
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn map_filter_and_vec(v in crate::collection::vec((0.0f64..1.0).prop_map(|x| x * 2.0), 1..20)) {
            prop_assert!(!v.is_empty());
            for x in &v {
                prop_assert!((0.0..2.0).contains(x));
            }
        }

        #[test]
        fn flat_map_dependent_ranges(pair in (1usize..10).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, k) = pair;
            prop_assert!(k < n, "k = {} escaped 0..{}", k, n);
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn filters_apply() {
        let s = (0u32..100).prop_filter("even", |n| n % 2 == 0);
        let mut rng = TestRng::from_name("filters_apply");
        for _ in 0..50 {
            assert_eq!(Strategy::sample(&s, &mut rng) % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_report_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(dead_code)]
            fn always_fails(x in 0.0f64..1.0) {
                prop_assert!(x < 0.0, "x was {}", x);
            }
        }
        always_fails();
    }

    use crate::{Strategy, TestRng};
}
