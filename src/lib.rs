//! # photon-gi — Parallel Hierarchical Global Illumination
//!
//! Umbrella crate re-exporting the public API of the workspace: a
//! reproduction of Quinn O. Snell's *Parallel Hierarchical Global
//! Illumination* (Iowa State / HPDC 1997) — the **Photon** Monte Carlo
//! light-transport simulator with four-dimensional adaptive histogram bins,
//! parallelized for shared memory (threads + fine-grained locking) and
//! distributed memory (message passing with bin-forest distribution,
//! bin-packing load balance and adaptive batch sizing).
//!
//! ## Layer map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`math`] | `photon-math` | vectors, rays, AABBs, patches, cylindrical direction coords |
//! | [`rng`] | `photon-rng` | 48-bit LCG with leapfrog subsequence splitting |
//! | [`hist`] | `photon-hist` | adaptive 1-D histograms and 4-D bin trees (3σ split rule) |
//! | [`geom`] | `photon-geom` | scenes, materials, luminaires, octree intersection |
//! | [`core`] | `photon-core` | the serial Photon simulator, answer files, viewer, and the `SolverEngine` trait every backend implements |
//! | [`scenes`] | `photon-scenes` | Cornell Box, Harpsichord Practice Room, Computer Laboratory |
//! | [`par`] | `photon-par` | shared-memory parallel simulator (resumable `ParEngine`) |
//! | [`mpi`] | `simmpi` | in-process message-passing substrate with 1997 platform models |
//! | [`dist`] | `photon-dist` | distributed-memory simulator (resumable `DistEngine`), load balancing, batch sizing |
//! | [`serve`] | `photon-serve` | solve→store→render pipeline: background solver pool, epoch-versioned answer store with a publish watch, tile-parallel render service with an epoch-keyed view cache, and streaming tile-delta subscriptions |
//! | [`baselines`] | `photon-baselines` | Whitted ray tracing, radiosity, density estimation, spherical harmonics |
//!
//! ## Quickstart
//!
//! ```
//! use photon_gi::core::{Simulator, SimConfig};
//! use photon_gi::scenes;
//!
//! let scene = scenes::cornell_box();
//! let mut sim = Simulator::new(scene, SimConfig { seed: 42, ..SimConfig::default() });
//! sim.run_photons(20_000);
//! let answer = sim.into_answer();
//! assert!(answer.total_leaf_bins() > 100); // hierarchy refined where light landed
//! ```

pub use photon_baselines as baselines;
pub use photon_core as core;
pub use photon_dist as dist;
pub use photon_geom as geom;
pub use photon_hist as hist;
pub use photon_math as math;
pub use photon_par as par;
pub use photon_rng as rng;
pub use photon_scenes as scenes;
pub use photon_serve as serve;
pub use simmpi as mpi;
