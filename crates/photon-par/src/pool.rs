//! A reusable scoped worker pool for index-addressed jobs.
//!
//! The shared-memory simulator splits photon batches across threads with
//! static leapfrog striping (the RNG demands it — the union of the threads'
//! draws must be the serial stream). Rendering has no such constraint, so
//! this pool hands out job indices dynamically from a shared counter: fast
//! workers keep pulling while a slow tile (deep octree region, refined bin
//! trees) occupies one thread. Results come back in job order regardless of
//! completion order, which is what makes the tile-parallel viewer in
//! `photon-serve` bit-identical to the serial one.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Maps `job` over `0..jobs` on `threads` workers, returning results in
/// index order.
///
/// Scheduling is dynamic: each worker repeatedly claims the next unclaimed
/// index. With `threads == 1` (or one job) everything runs on the calling
/// thread with no synchronization, so a single-threaded pool is exactly the
/// serial loop.
///
/// # Panics
/// Panics if `threads == 0`, and propagates a panic from any job.
pub fn parallel_map<T, F>(threads: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    assert!(threads >= 1, "a pool needs at least one worker");
    if threads == 1 || jobs <= 1 {
        return (0..jobs).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                *slots[i].lock() = Some(job(i));
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every job index was claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_arrive_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = parallel_map(threads, 37, |i| i * i);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let counter = AtomicU64::new(0);
        let out = parallel_map(4, 100, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn zero_jobs_is_fine() {
        let out: Vec<usize> = parallel_map(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_job_costs_balance() {
        // A few heavy jobs up front must not serialize the rest: just check
        // correctness under skew (scheduling is dynamic by construction).
        let out = parallel_map(3, 20, |i| {
            if i < 2 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            i + 1
        });
        assert_eq!(out, (1..=20).collect::<Vec<_>>());
    }
}
