//! The resumable shared-memory solver engine.
//!
//! [`ParEngine`] is `photon_par`'s implementation of
//! [`photon_core::SolverEngine`]: it owns its [`SharedForest`] and a
//! persistent worker pool, so the solve advances batch by batch across
//! [`step`](photon_core::SolverEngine::step) calls instead of running once
//! and exiting. `photon_par::run` is now a thin driver over this engine.
//!
//! **Photon assignment.** Step `k` covers global photon indices
//! `[emitted, emitted + batch)`; worker `t` of `T` leapfrogs through them,
//! taking every `T`-th index. Each photon draws from its own block
//! substream ([`photon_core::photon_stream`]), so the photon *set* is
//! independent of the worker count.
//!
//! **Tally modes.** In [`TallyMode::Concurrent`] (the paper's Fig 5.2)
//! workers tally straight into the locked forest as they trace; final bin
//! boundaries then depend on tally interleaving. In
//! [`TallyMode::Deterministic`] workers buffer `(photon, patch, point,
//! energy)` records during the trace and a second pool pass replays them in
//! global photon order — each worker owning a disjoint slice of trees — so
//! every tree sees exactly the tally sequence of the serial simulator and
//! the resulting [`Answer`] is **bit-identical** to `Simulator`'s for the
//! same seed and photon count, at any thread count.

use crate::{ParConfig, SharedForest, SharedSink, TallyMode};
use photon_core::generate::PhotonGenerator;
use photon_core::sim::SimStats;
use photon_core::trace::{trace_photon, TallySink};
use photon_core::{
    photon_stream, Answer, BatchReport, EngineCheckpoint, RestoreError, SolverEngine, SpeedTrace,
};
use photon_geom::Scene;
use photon_hist::BinPoint;
use photon_math::Rgb;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// One buffered interaction, tagged with its global photon index so the
/// replay pass can restore serial order.
#[derive(Clone, Copy, Debug)]
struct TallyRecord {
    photon: u64,
    patch_id: u32,
    point: BinPoint,
    energy: Rgb,
}

/// Sink that buffers records instead of touching the forest, bucketed by
/// the replay worker that will own each record's tree (`patch_id % T`) so
/// the replay pass visits every record exactly once overall.
struct RecordSink {
    photon: u64,
    threads: usize,
    buckets: Vec<Vec<TallyRecord>>,
}

impl TallySink for RecordSink {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.buckets[patch_id as usize % self.threads].push(TallyRecord {
            photon: self.photon,
            patch_id,
            point: *point,
            energy,
        });
    }
}

enum Cmd {
    /// Trace this worker's leapfrogged share of photons
    /// `[start, start + count)`.
    Trace { start: u64, count: u64 },
    /// Replay the step's records onto this worker's slice of trees, in
    /// global photon order. `records[src][dst]` holds the records traced
    /// by worker `src` whose trees belong to replay worker `dst`, sorted
    /// by photon index.
    Replay {
        start: u64,
        count: u64,
        records: Arc<Vec<Vec<Vec<TallyRecord>>>>,
    },
}

enum Reply {
    Traced {
        tid: usize,
        stats: SimStats,
        records: Vec<Vec<TallyRecord>>,
    },
    Replayed,
}

struct WorkerCtx {
    tid: usize,
    threads: usize,
    seed: u64,
    mode: TallyMode,
    scene: Arc<Scene>,
    generator: Arc<PhotonGenerator>,
    forest: Arc<SharedForest>,
}

fn worker_loop(ctx: WorkerCtx, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Trace { start, count } => {
                let mut stats = SimStats::default();
                let mut recorder = RecordSink {
                    photon: 0,
                    threads: ctx.threads,
                    buckets: (0..ctx.threads).map(|_| Vec::new()).collect(),
                };
                let mut shared = SharedSink {
                    forest: &ctx.forest,
                };
                let mut j = start + ctx.tid as u64;
                while j < start + count {
                    let mut rng = photon_stream(ctx.seed, j);
                    let out = match ctx.mode {
                        TallyMode::Concurrent => {
                            trace_photon(&ctx.scene, &ctx.generator, &mut rng, &mut shared)
                        }
                        TallyMode::Deterministic => {
                            recorder.photon = j;
                            trace_photon(&ctx.scene, &ctx.generator, &mut rng, &mut recorder)
                        }
                    };
                    stats.record(&out);
                    j += ctx.threads as u64;
                }
                let _ = tx.send(Reply::Traced {
                    tid: ctx.tid,
                    stats,
                    records: recorder.buckets,
                });
            }
            Cmd::Replay {
                start,
                count,
                records,
            } => {
                // This worker's records, one sorted-by-photon list per
                // tracing worker. Walk photons in global order; photon j's
                // records live only in the list of the worker that traced
                // it, contiguously — so each record is visited once, by its
                // owner (disjoint tree ownership: no contention, pure
                // order).
                let lists: Vec<&[TallyRecord]> =
                    records.iter().map(|src| src[ctx.tid].as_slice()).collect();
                let mut cursors = vec![0usize; lists.len()];
                for j in start..start + count {
                    let src = ((j - start) % ctx.threads as u64) as usize;
                    let list = lists[src];
                    let cur = &mut cursors[src];
                    while *cur < list.len() && list[*cur].photon == j {
                        let rec = &list[*cur];
                        ctx.forest.tally(rec.patch_id, &rec.point, rec.energy);
                        *cur += 1;
                    }
                }
                let _ = tx.send(Reply::Replayed);
            }
        }
    }
}

/// The resumable shared-memory engine: a worker pool over a shared,
/// reader/writer-locked bin forest, stepped batch by batch.
pub struct ParEngine {
    config: ParConfig,
    forest: Arc<SharedForest>,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    stats: SimStats,
    /// Next global photon index to trace; tracks `stats.emitted` for a
    /// fresh run and diverges only after restoring a checkpoint whose
    /// counters include out-of-stream photons (a distributed pilot phase).
    cursor: u64,
    speed: SpeedTrace,
    started: Option<Instant>,
}

impl ParEngine {
    /// Spawns `config.threads` workers over `scene` and an empty forest.
    pub fn new(scene: Scene, config: ParConfig) -> Self {
        assert!(config.threads >= 1);
        let forest = Arc::new(SharedForest::new(
            scene.polygon_count(),
            config.split,
            config.lock,
        ));
        let generator = Arc::new(PhotonGenerator::new(&scene));
        let scene = Arc::new(scene);
        let (reply_tx, reply_rx) = channel();
        let mut cmd_txs = Vec::with_capacity(config.threads);
        let mut handles = Vec::with_capacity(config.threads);
        for tid in 0..config.threads {
            let (tx, rx) = channel();
            cmd_txs.push(tx);
            let ctx = WorkerCtx {
                tid,
                threads: config.threads,
                seed: config.seed,
                mode: config.tally,
                scene: Arc::clone(&scene),
                generator: Arc::clone(&generator),
                forest: Arc::clone(&forest),
            };
            let reply_tx = reply_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("photon-par-{tid}"))
                    .spawn(move || worker_loop(ctx, rx, reply_tx))
                    .expect("spawn worker"),
            );
        }
        ParEngine {
            config,
            forest,
            cmd_txs,
            reply_rx,
            handles,
            stats: SimStats::default(),
            cursor: 0,
            speed: SpeedTrace::new(),
            started: None,
        }
    }

    /// The shared forest being refined.
    pub fn forest(&self) -> &SharedForest {
        &self.forest
    }

    /// Speed-vs-time trace, one sample per step.
    pub fn speed_trace(&self) -> &SpeedTrace {
        &self.speed
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &ParConfig {
        &self.config
    }

    fn broadcast(&self, make: impl Fn() -> Cmd) {
        for tx in &self.cmd_txs {
            tx.send(make()).expect("worker alive");
        }
    }

    fn shutdown(&mut self) {
        self.cmd_txs.clear(); // hang up; workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Finishes the run, moving the forest into the answer (no tree
    /// clones, unlike a mid-solve [`SolverEngine::snapshot`]).
    pub fn into_answer(mut self) -> Answer {
        self.shutdown(); // joins workers, dropping their forest handles
        let emitted = self.stats.emitted;
        let dummy = Arc::new(SharedForest::new(0, self.config.split, self.config.lock));
        let forest = std::mem::replace(&mut self.forest, dummy);
        let forest = match Arc::try_unwrap(forest) {
            Ok(owned) => owned.into_forest(),
            // Unreachable after shutdown, but cloning stays correct.
            Err(shared) => shared.snapshot_forest(),
        };
        Answer::from_forest(&forest, emitted)
    }
}

impl Drop for ParEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SolverEngine for ParEngine {
    fn step(&mut self, batch: u64) -> BatchReport {
        let t0 = *self.started.get_or_insert_with(Instant::now);
        let batch_start = Instant::now();
        let start = self.cursor;
        self.cursor += batch;
        self.broadcast(|| Cmd::Trace {
            start,
            count: batch,
        });
        let mut lists: Vec<Vec<Vec<TallyRecord>>> =
            (0..self.config.threads).map(|_| Vec::new()).collect();
        for _ in 0..self.config.threads {
            match self.reply_rx.recv().expect("worker alive") {
                Reply::Traced {
                    tid,
                    stats,
                    records,
                } => {
                    self.stats.merge(&stats);
                    lists[tid] = records;
                }
                Reply::Replayed => unreachable!("no replay outstanding"),
            }
        }
        if self.config.tally == TallyMode::Deterministic {
            let records = Arc::new(lists);
            self.broadcast(|| Cmd::Replay {
                start,
                count: batch,
                records: Arc::clone(&records),
            });
            for _ in 0..self.config.threads {
                match self.reply_rx.recv().expect("worker alive") {
                    Reply::Replayed => {}
                    Reply::Traced { .. } => unreachable!("no trace outstanding"),
                }
            }
        }
        let batch_seconds = batch_start.elapsed().as_secs_f64();
        let elapsed_seconds = t0.elapsed().as_secs_f64();
        self.speed.push_batch(elapsed_seconds, batch, batch_seconds);
        BatchReport {
            batch_photons: batch,
            emitted_total: self.stats.emitted,
            leaf_bins: self.forest.total_leaf_bins(),
            batch_seconds,
            elapsed_seconds,
            stats: self.stats,
        }
    }

    fn snapshot(&self) -> Answer {
        Answer::from_forest(&self.forest.snapshot_forest(), self.stats.emitted)
    }

    fn stats(&self) -> SimStats {
        self.stats
    }

    fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint::new(
            self.config.seed,
            self.cursor,
            self.stats,
            self.config.split,
            self.forest.snapshot_forest().into_trees(),
        )
    }

    fn restore(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), RestoreError> {
        checkpoint.compatible_with(
            self.forest.patch_count(),
            self.config.seed,
            self.config.split,
        )?;
        // The workers only hold the shared forest and per-photon stream
        // parameters, so swapping the trees in place restores them too.
        self.forest.replace(checkpoint.forest());
        self.stats = checkpoint.stats();
        self.cursor = checkpoint.cursor();
        // Rates after a resume describe the resumed solve only.
        self.speed = SpeedTrace::new();
        self.started = None;
        Ok(())
    }

    fn backend(&self) -> &'static str {
        "threaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_scenes::cornell_box;

    fn engine(threads: usize, tally: TallyMode) -> ParEngine {
        ParEngine::new(
            cornell_box(),
            ParConfig {
                seed: 2024,
                threads,
                tally,
                ..Default::default()
            },
        )
    }

    fn answer_bytes(a: &Answer) -> Vec<u8> {
        let mut buf = Vec::new();
        a.write_to(&mut buf).expect("encode answer");
        buf
    }

    #[test]
    fn engine_is_resumable_across_steps() {
        let mut e = engine(3, TallyMode::Deterministic);
        let r1 = e.step(1000);
        let r2 = e.step(1000);
        assert_eq!(r1.emitted_total, 1000);
        assert_eq!(r2.emitted_total, 2000);
        assert!(r2.leaf_bins >= r1.leaf_bins, "forest must not coarsen");
        assert_eq!(e.speed_trace().samples().len(), 2);
        assert!(e.stats().is_conserved());
    }

    #[test]
    fn deterministic_engine_matches_serial_bit_for_bit() {
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 2024,
                ..Default::default()
            },
        );
        serial.run_photons(4000);
        let want = answer_bytes(&serial.answer_snapshot());
        for threads in [1, 2, 4, 5] {
            let mut e = engine(threads, TallyMode::Deterministic);
            e.step(1500);
            e.step(2500);
            assert_eq!(
                answer_bytes(&e.snapshot()),
                want,
                "threads={threads} diverged from serial"
            );
        }
    }

    #[test]
    fn batching_does_not_change_the_answer() {
        let mut a = engine(4, TallyMode::Deterministic);
        a.step(3000);
        let mut b = engine(4, TallyMode::Deterministic);
        for _ in 0..6 {
            b.step(500);
        }
        assert_eq!(answer_bytes(&a.snapshot()), answer_bytes(&b.snapshot()));
    }

    #[test]
    fn concurrent_engine_traces_the_same_photons() {
        // Tally interleaving may move bin boundaries, but the photon set —
        // and hence every counter — is identical to the serial stream.
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 11,
                ..Default::default()
            },
        );
        serial.run_photons(3000);
        let mut e = ParEngine::new(
            cornell_box(),
            ParConfig {
                seed: 11,
                threads: 4,
                tally: TallyMode::Concurrent,
                ..Default::default()
            },
        );
        e.step(3000);
        assert_eq!(e.stats(), *serial.stats());
        assert_eq!(e.forest().total_tallies(), serial.forest().total_tallies());
    }

    #[test]
    fn checkpoint_resume_matches_an_uninterrupted_run() {
        let mut straight = engine(3, TallyMode::Deterministic);
        straight.step(4000);
        let want = answer_bytes(&straight.snapshot());
        let mut first = engine(2, TallyMode::Deterministic);
        first.step(1700);
        let ck = first.checkpoint();
        assert_eq!(ck.cursor(), 1700);
        drop(first); // the original engine (and its workers) are gone
        let mut resumed = engine(5, TallyMode::Deterministic);
        resumed.restore(&ck).expect("compatible checkpoint");
        resumed.step(2300);
        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(answer_bytes(&resumed.snapshot()), want);
    }

    #[test]
    fn restore_rejects_a_mismatched_seed() {
        let mut a = engine(2, TallyMode::Deterministic);
        a.step(500);
        let ck = a.checkpoint();
        let mut other = ParEngine::new(
            cornell_box(),
            ParConfig {
                seed: 1,
                threads: 2,
                tally: TallyMode::Deterministic,
                ..Default::default()
            },
        );
        assert!(other.restore(&ck).is_err());
        assert_eq!(other.stats().emitted, 0);
    }

    #[test]
    fn snapshot_does_not_stop_the_engine() {
        let mut e = engine(2, TallyMode::Deterministic);
        e.step(800);
        let early = e.snapshot();
        e.step(800);
        let late = e.snapshot();
        assert_eq!(early.emitted(), 800);
        assert_eq!(late.emitted(), 1600);
        assert!(late.total_leaf_bins() >= early.total_leaf_bins());
    }
}
