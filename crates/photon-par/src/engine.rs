//! The resumable shared-memory solver engine.
//!
//! [`ParEngine`] is `photon_par`'s implementation of
//! [`photon_core::SolverEngine`]: it owns its [`SharedForest`] and a
//! persistent worker pool, so the solve advances batch by batch across
//! [`step`](photon_core::SolverEngine::step) calls instead of running once
//! and exiting. `photon_par::run` is now a thin driver over this engine.
//!
//! **Photon assignment.** Step `k` covers global photon indices
//! `[cursor, cursor + batch)`; worker `t` of `T` leapfrogs through them,
//! taking every `T`-th index. Each photon draws from its own block
//! substream ([`photon_core::photon_stream`]), so the photon *set* is
//! independent of the worker count.
//!
//! **The step pipeline** (the trace→partition→apply kernel of
//! [`photon_core::batch`]):
//!
//! 1. *Trace* — every worker traces its stride lock-free, appending
//!    [`TallyRecord`]s to its own scratch buffer (reused across steps) and
//!    replying with its photon counters only.
//! 2. *Partition* — the engine thread counting-sorts all records by patch,
//!    scattering in global `(photon, bounce)` order into one reused buffer:
//!    each patch's run is exactly the serial tally subsequence for that
//!    tree.
//! 3. *Apply* — workers claim whole patch runs from an atomic cursor and
//!    fold each into its tree under a single write-lock acquisition, with
//!    the leaf-descent cache skipping root re-descents inside a run.
//!
//! Because every tree sees exactly the serial tally order and each run is
//! applied by exactly one worker, the resulting [`Answer`] is
//! **bit-identical** to `Simulator`'s for the same seed and photon count,
//! at any thread count — while runs on distinct trees apply concurrently.
//! Steady-state steps allocate nothing: trace buffers, the sorted buffer,
//! the run list, and the per-patch counters are all reused.
//!
//! **Single-worker fusion.** With one worker (a one-core host under the
//! default clamp, or `threads: 1`), trace order already *is* serial order,
//! so the worker applies each tally inline through persistent per-tree
//! leaf cursors and the partition/apply phases vanish — same bytes, none
//! of the record traffic.

use crate::{ParConfig, PipelineMode, SharedForest, SharedSink};
use parking_lot::{Mutex, RwLock};
use photon_core::batch::{trace_strided, PartitionScratch, TallyRecord};
use photon_core::generate::PhotonGenerator;
use photon_core::sim::SimStats;
use photon_core::trace::{trace_photon, TallySink};
use photon_core::{
    photon_stream, Answer, BatchReport, EngineCheckpoint, RestoreError, SolverEngine, SpeedTrace,
};
use photon_geom::Scene;
use photon_hist::{BinPoint, LeafCursor};
use photon_math::Rgb;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Buffers shared between the engine thread and the workers, reused across
/// steps. The phases alternate strict ownership: workers write `traces`
/// (each its own slot) while tracing and the engine reads them all during
/// the partition; the engine writes `partition` during the partition and
/// workers read it during the apply. The locks are therefore uncontended —
/// they exist to prove the handoff to the compiler, not to arbitrate races.
struct StepShared {
    /// Per-worker trace records; slot `t` belongs to worker `t`.
    traces: Vec<Mutex<Vec<TallyRecord>>>,
    /// The partition output the apply phase consumes.
    partition: RwLock<PartitionScratch>,
    /// Next un-claimed index into `partition.runs` during the apply phase.
    next_run: AtomicUsize,
}

enum Cmd {
    /// Trace this worker's leapfrogged share of photons
    /// `[start, start + count)` into its scratch buffer.
    Trace { start: u64, count: u64 },
    /// Trace the same share, tallying inline through the forest locks
    /// (the [`PipelineMode::InlineTally`] oracle).
    TraceInline { start: u64, count: u64 },
    /// Claim patch runs from the shared partition and apply them.
    Apply,
}

enum Reply {
    Traced(SimStats),
    Applied,
}

struct WorkerCtx {
    tid: usize,
    threads: usize,
    seed: u64,
    pipeline: PipelineMode,
    scene: Arc<Scene>,
    generator: Arc<PhotonGenerator>,
    forest: Arc<SharedForest>,
    shared: Arc<StepShared>,
}

/// Sink of the fused single-worker path: tallies land in the forest as
/// they are traced (serial order for free), each through its tree's leaf
/// cursor. The worker holds every tree's write guard for the whole batch
/// and counts tallies locally, so the per-tally cost is an index and a
/// cursor-cached leaf update — no lock, no atomic.
struct FusedSink<'a, 'f> {
    trees: &'a mut [parking_lot::RwLockWriteGuard<'f, photon_hist::BinTree>],
    cursors: &'a mut [LeafCursor],
    tallies: u64,
}

impl TallySink for FusedSink<'_, '_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.tallies += 1;
        self.trees[patch_id as usize].tally_with(
            point,
            energy,
            &mut self.cursors[patch_id as usize],
        );
    }
}

fn worker_loop(ctx: WorkerCtx, rx: Receiver<Cmd>, tx: Sender<Reply>) {
    // Fused-path leaf cursors, one per tree, allocated once per worker.
    let mut cursors: Vec<LeafCursor> = (0..ctx.forest.patch_count())
        .map(|_| LeafCursor::new())
        .collect();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Trace { start, count } => {
                let mut stats = SimStats::default();
                if ctx.threads == 1 && ctx.pipeline == PipelineMode::Batched {
                    // A lone worker's trace order is serial order, so the
                    // partition buys nothing: apply inline with the leaf
                    // cursors, holding the whole forest for the batch.
                    // Reset the cursors first — a checkpoint restore
                    // between steps replaces the trees wholesale, and a
                    // stale cursor must never descend into a new tree.
                    for cursor in &mut cursors {
                        *cursor = LeafCursor::new();
                    }
                    let mut guards = ctx.forest.write_all();
                    let mut sink = FusedSink {
                        trees: &mut guards,
                        cursors: &mut cursors,
                        tallies: 0,
                    };
                    for j in start..start + count {
                        let mut rng = photon_stream(ctx.seed, j);
                        let out = trace_photon(&ctx.scene, &ctx.generator, &mut rng, &mut sink);
                        stats.record(&out);
                    }
                    let tallies = sink.tallies;
                    drop(guards);
                    ctx.forest.add_tallies(tallies);
                } else {
                    let mut out = ctx.shared.traces[ctx.tid].lock();
                    out.clear(); // keep capacity: steady state reallocates nothing
                    trace_strided(
                        &ctx.scene,
                        &ctx.generator,
                        ctx.seed,
                        start,
                        count,
                        ctx.tid as u64,
                        ctx.threads as u64,
                        &mut out,
                        &mut stats,
                    );
                }
                let _ = tx.send(Reply::Traced(stats));
            }
            Cmd::TraceInline { start, count } => {
                let mut stats = SimStats::default();
                let mut sink = SharedSink {
                    forest: &ctx.forest,
                };
                let mut j = start + ctx.tid as u64;
                while j < start + count {
                    let mut rng = photon_stream(ctx.seed, j);
                    let out = trace_photon(&ctx.scene, &ctx.generator, &mut rng, &mut sink);
                    stats.record(&out);
                    j += ctx.threads as u64;
                }
                let _ = tx.send(Reply::Traced(stats));
            }
            Cmd::Apply => {
                let leaf_cache = ctx.pipeline == PipelineMode::Batched;
                let partition = ctx.shared.partition.read();
                loop {
                    let i = ctx.shared.next_run.fetch_add(1, Ordering::Relaxed);
                    let Some(run) = partition.runs.get(i) else {
                        break;
                    };
                    ctx.forest
                        .tally_run(run.patch_id, partition.run_records(run), leaf_cache);
                }
                drop(partition);
                let _ = tx.send(Reply::Applied);
            }
        }
    }
}

/// The resumable shared-memory engine: a worker pool over a shared,
/// reader/writer-locked bin forest, stepped batch by batch through the
/// trace→partition→apply pipeline.
pub struct ParEngine {
    config: ParConfig,
    /// Spawned workers (`config.worker_count()`): `threads` clamped to the
    /// host unless oversubscription was requested. The answer does not
    /// depend on it — only the wall clock does.
    workers: usize,
    forest: Arc<SharedForest>,
    shared: Arc<StepShared>,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rx: Receiver<Reply>,
    handles: Vec<JoinHandle<()>>,
    stats: SimStats,
    /// Next global photon index to trace; tracks `stats.emitted` for a
    /// fresh run and diverges only after restoring a checkpoint whose
    /// counters include out-of-stream photons (a distributed pilot phase).
    cursor: u64,
    /// Forest node count at the last arena compaction; once the forest
    /// outgrows it by half, the step recompacts at the batch boundary.
    compact_watermark: u64,
    speed: SpeedTrace,
    started: Option<Instant>,
}

impl ParEngine {
    /// Spawns the engine's workers (see [`ParConfig::worker_count`]) over
    /// `scene` and an empty forest.
    pub fn new(scene: Scene, config: ParConfig) -> Self {
        assert!(config.threads >= 1);
        let workers = config.worker_count();
        let forest = Arc::new(SharedForest::new(scene.polygon_count(), config.split));
        let shared = Arc::new(StepShared {
            traces: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            partition: RwLock::new(PartitionScratch::new(scene.polygon_count())),
            next_run: AtomicUsize::new(0),
        });
        let generator = Arc::new(PhotonGenerator::new(&scene));
        let scene = Arc::new(scene);
        let (reply_tx, reply_rx) = channel();
        let mut cmd_txs = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for tid in 0..workers {
            let (tx, rx) = channel();
            cmd_txs.push(tx);
            let ctx = WorkerCtx {
                tid,
                threads: workers,
                seed: config.seed,
                pipeline: config.pipeline,
                scene: Arc::clone(&scene),
                generator: Arc::clone(&generator),
                forest: Arc::clone(&forest),
                shared: Arc::clone(&shared),
            };
            let reply_tx = reply_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("photon-par-{tid}"))
                    .spawn(move || worker_loop(ctx, rx, reply_tx))
                    .expect("spawn worker"),
            );
        }
        ParEngine {
            config,
            workers,
            forest,
            shared,
            cmd_txs,
            reply_rx,
            handles,
            stats: SimStats::default(),
            cursor: 0,
            compact_watermark: scene.polygon_count() as u64,
            speed: SpeedTrace::new(),
            started: None,
        }
    }

    /// Arena nodes across the forest, derived from the leaf count: the
    /// packed arenas carry no orphan slots, so every tree holds exactly
    /// `2·leaves − 1` nodes.
    fn total_nodes(&self) -> u64 {
        2 * self.forest.total_leaf_bins() - self.forest.patch_count() as u64
    }

    /// The shared forest being refined.
    pub fn forest(&self) -> &SharedForest {
        &self.forest
    }

    /// Speed-vs-time trace, one sample per step.
    pub fn speed_trace(&self) -> &SpeedTrace {
        &self.speed
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &ParConfig {
        &self.config
    }

    fn broadcast(&self, make: impl Fn() -> Cmd) {
        for tx in &self.cmd_txs {
            tx.send(make()).expect("worker alive");
        }
    }

    fn collect_traced(&mut self) {
        for _ in 0..self.workers {
            match self.reply_rx.recv().expect("worker alive") {
                Reply::Traced(stats) => self.stats.merge(&stats),
                Reply::Applied => unreachable!("no apply outstanding"),
            }
        }
    }

    fn shutdown(&mut self) {
        self.cmd_txs.clear(); // hang up; workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }

    /// Finishes the run, moving the forest into the answer (no tree
    /// clones, unlike a mid-solve [`SolverEngine::snapshot`]).
    pub fn into_answer(mut self) -> Answer {
        self.shutdown(); // joins workers, dropping their forest handles
        let emitted = self.stats.emitted;
        let dummy = Arc::new(SharedForest::new(0, self.config.split));
        let forest = std::mem::replace(&mut self.forest, dummy);
        let forest = match Arc::try_unwrap(forest) {
            Ok(owned) => owned.into_forest(),
            // Unreachable after shutdown, but cloning stays correct.
            Err(shared) => shared.snapshot_forest(),
        };
        Answer::from_forest(&forest, emitted)
    }
}

impl Drop for ParEngine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl SolverEngine for ParEngine {
    fn step(&mut self, batch: u64) -> BatchReport {
        let t0 = *self.started.get_or_insert_with(Instant::now);
        let batch_start = Instant::now();
        let start = self.cursor;
        self.cursor += batch;
        let inline = self.config.pipeline == PipelineMode::InlineTally;

        // Phase 1: trace (lock-free into per-worker scratch, or inline
        // through the locks for the oracle mode).
        if inline {
            self.broadcast(|| Cmd::TraceInline {
                start,
                count: batch,
            });
        } else {
            self.broadcast(|| Cmd::Trace {
                start,
                count: batch,
            });
        }
        self.collect_traced();
        let trace_seconds = batch_start.elapsed().as_secs_f64();

        // Phases 2+3: partition on the engine thread, then parallel apply.
        // A lone Batched worker already applied inline while tracing (the
        // fused path), so like the inline backends it reports the whole
        // step as trace time.
        let fused = self.workers == 1 && self.config.pipeline == PipelineMode::Batched;
        if !inline && !fused {
            {
                let guards: Vec<_> = self.shared.traces.iter().map(|m| m.lock()).collect();
                let lists: Vec<&[TallyRecord]> = guards.iter().map(|g| g.as_slice()).collect();
                self.shared
                    .partition
                    .write()
                    .partition(&lists, start, batch);
            }
            self.shared.next_run.store(0, Ordering::Release);
            self.broadcast(|| Cmd::Apply);
            for _ in 0..self.workers {
                match self.reply_rx.recv().expect("worker alive") {
                    Reply::Applied => {}
                    Reply::Traced(_) => unreachable!("no trace outstanding"),
                }
            }
        }

        // Batch boundary: no worker holds a cursor or guard between steps,
        // so this is the one safe place to recompact. Growth-gated like the
        // serial engine, and invisible in the answer (canonical export).
        let nodes = self.total_nodes();
        if nodes > self.compact_watermark + self.compact_watermark / 2 {
            self.forest.compact_all();
            self.compact_watermark = nodes;
        }

        let batch_seconds = batch_start.elapsed().as_secs_f64();
        let apply_seconds = batch_seconds - trace_seconds;
        let elapsed_seconds = t0.elapsed().as_secs_f64();
        self.speed.push_batch(elapsed_seconds, batch, batch_seconds);
        BatchReport {
            batch_photons: batch,
            emitted_total: self.stats.emitted,
            leaf_bins: self.forest.total_leaf_bins(),
            batch_seconds,
            trace_seconds,
            apply_seconds,
            elapsed_seconds,
            stats: self.stats,
            footprint: self.forest.footprint(),
        }
    }

    fn snapshot(&self) -> Answer {
        Answer::from_forest(&self.forest.snapshot_forest(), self.stats.emitted)
    }

    fn stats(&self) -> SimStats {
        self.stats
    }

    fn checkpoint(&self) -> EngineCheckpoint {
        // A checkpoint is a batch boundary too: compact the live arenas so
        // both the resumed solve and the cloned trees are subtree-clustered.
        self.forest.compact_all();
        EngineCheckpoint::new(
            self.config.seed,
            self.cursor,
            self.stats,
            self.config.split,
            self.forest.snapshot_forest().into_trees(),
        )
    }

    fn restore(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), RestoreError> {
        checkpoint.compatible_with(
            self.forest.patch_count(),
            self.config.seed,
            self.config.split,
        )?;
        // The workers only hold the shared forest and per-photon stream
        // parameters, so swapping the trees in place restores them too.
        self.forest.replace(checkpoint.forest());
        self.stats = checkpoint.stats();
        self.cursor = checkpoint.cursor();
        self.compact_watermark = self.total_nodes();
        // Rates after a resume describe the resumed solve only.
        self.speed = SpeedTrace::new();
        self.started = None;
        Ok(())
    }

    fn backend(&self) -> &'static str {
        "threaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_scenes::cornell_box;

    fn engine(threads: usize, pipeline: PipelineMode) -> ParEngine {
        ParEngine::new(
            cornell_box(),
            ParConfig {
                seed: 2024,
                threads,
                pipeline,
                // Real worker counts even on small CI hosts — these tests
                // exercise the multi-worker pipeline, not its speed.
                oversubscribe: true,
                ..Default::default()
            },
        )
    }

    fn answer_bytes(a: &Answer) -> Vec<u8> {
        let mut buf = Vec::new();
        a.write_to(&mut buf).expect("encode answer");
        buf
    }

    #[test]
    fn engine_is_resumable_across_steps() {
        let mut e = engine(3, PipelineMode::Batched);
        let r1 = e.step(1000);
        let r2 = e.step(1000);
        assert_eq!(r1.emitted_total, 1000);
        assert_eq!(r2.emitted_total, 2000);
        assert!(r2.leaf_bins >= r1.leaf_bins, "forest must not coarsen");
        assert_eq!(r2.footprint.leaf_bins, r2.leaf_bins);
        assert!(r2.footprint.node_bytes > 0 && r2.footprint.leaf_bytes > 0);
        assert_eq!(e.speed_trace().samples().len(), 2);
        assert!(e.stats().is_conserved());
        // The report splits the step into trace + apply phases.
        assert!(r2.trace_seconds >= 0.0 && r2.apply_seconds >= 0.0);
        assert!(r2.trace_seconds + r2.apply_seconds <= r2.batch_seconds + 1e-9);
    }

    #[test]
    fn batched_engine_matches_serial_bit_for_bit() {
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 2024,
                ..Default::default()
            },
        );
        serial.run_photons(4000);
        let want = answer_bytes(&serial.answer_snapshot());
        for threads in [1, 2, 4, 5] {
            let mut e = engine(threads, PipelineMode::Batched);
            e.step(1500);
            e.step(2500);
            assert_eq!(
                answer_bytes(&e.snapshot()),
                want,
                "threads={threads} diverged from serial"
            );
        }
    }

    #[test]
    fn batching_does_not_change_the_answer() {
        let mut a = engine(4, PipelineMode::Batched);
        a.step(3000);
        let mut b = engine(4, PipelineMode::Batched);
        for _ in 0..6 {
            b.step(500);
        }
        assert_eq!(answer_bytes(&a.snapshot()), answer_bytes(&b.snapshot()));
    }

    #[test]
    fn inline_oracle_traces_the_same_photons() {
        // Tally interleaving may move bin boundaries in the inline mode,
        // but the photon set — and hence every counter — is identical to
        // the serial stream.
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 11,
                ..Default::default()
            },
        );
        serial.run_photons(3000);
        let mut e = ParEngine::new(
            cornell_box(),
            ParConfig {
                seed: 11,
                threads: 4,
                pipeline: PipelineMode::InlineTally,
                ..Default::default()
            },
        );
        e.step(3000);
        assert_eq!(e.stats(), *serial.stats());
        assert_eq!(e.forest().total_tallies(), serial.forest().total_tallies());
    }

    #[test]
    fn checkpoint_resume_matches_an_uninterrupted_run() {
        let mut straight = engine(3, PipelineMode::Batched);
        straight.step(4000);
        let want = answer_bytes(&straight.snapshot());
        let mut first = engine(2, PipelineMode::Batched);
        first.step(1700);
        let ck = first.checkpoint();
        assert_eq!(ck.cursor(), 1700);
        drop(first); // the original engine (and its workers) are gone
        let mut resumed = engine(5, PipelineMode::Batched);
        resumed.restore(&ck).expect("compatible checkpoint");
        resumed.step(2300);
        assert_eq!(resumed.stats(), straight.stats());
        assert_eq!(answer_bytes(&resumed.snapshot()), want);
    }

    #[test]
    fn restore_rejects_a_mismatched_seed() {
        let mut a = engine(2, PipelineMode::Batched);
        a.step(500);
        let ck = a.checkpoint();
        let mut other = ParEngine::new(
            cornell_box(),
            ParConfig {
                seed: 1,
                threads: 2,
                ..Default::default()
            },
        );
        assert!(other.restore(&ck).is_err());
        assert_eq!(other.stats().emitted, 0);
    }

    #[test]
    fn snapshot_does_not_stop_the_engine() {
        let mut e = engine(2, PipelineMode::Batched);
        e.step(800);
        let early = e.snapshot();
        e.step(800);
        let late = e.snapshot();
        assert_eq!(early.emitted(), 800);
        assert_eq!(late.emitted(), 1600);
        assert!(late.total_leaf_bins() >= early.total_leaf_bins());
    }
}
