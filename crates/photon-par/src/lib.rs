//! Shared-memory parallel Photon (dissertation ch. 5, Fig 5.2).
//!
//! "The geometry data structure becomes a shared database with multiple
//! processors accessing and modifying it. … Mutually exclusive access is
//! insured through the use of semaphores to lock access to nodes in the bin
//! forest, and follows a multiple reader, single writer protocol."
//!
//! The crate is built around [`ParEngine`] (see [`engine`]): a *resumable*
//! solver implementing [`photon_core::SolverEngine`], holding its
//! [`SharedForest`] — one `parking_lot::RwLock` per patch tree — and a
//! persistent worker pool across batches. Worker `t` of `T` leapfrogs
//! through each batch's photon indices (every `T`-th photon), and each
//! photon draws from its own block substream of the seeded base stream, so
//! the photon set is exactly the serial simulator's regardless of thread
//! count.
//!
//! **The batched pipeline.** Each step runs the trace→partition→apply
//! kernel of [`photon_core::batch`]: workers trace their strides lock-free
//! into reusable record buffers; the records are counting-sorted by patch
//! into per-patch runs that preserve global `(photon, bounce)` order; then
//! workers claim whole runs and fold each into its tree under one write-lock
//! acquisition. Per-tree tally order equals serial order *by construction*,
//! so the default mode is simultaneously concurrent **and** bit-identical
//! to the serial simulator at any thread count — the old
//! `Concurrent`/`Deterministic` split collapsed into one mode that is both.
//! [`PipelineMode::InlineTally`] keeps the historical tally-through-locks
//! path as a test oracle and ablation baseline.
//!
//! [`run`] drives the engine for a fixed photon budget, recording a speed
//! sample per batch — the traces of Figs 5.6–5.8.

#![deny(missing_docs)]

pub mod engine;
pub mod pool;

pub use engine::ParEngine;
pub use pool::parallel_map;

use parking_lot::RwLock;
use photon_core::batch::TallyRecord;
use photon_core::sim::SimStats;
use photon_core::trace::TallySink;
use photon_core::{Answer, ForestFootprint, SolverEngine, SpeedTrace};
use photon_geom::Scene;
use photon_hist::{BinPoint, BinTree, SplitConfig};
use photon_math::Rgb;
use std::sync::atomic::{AtomicU64, Ordering};

/// How a step moves tallies from the trace into the shared forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PipelineMode {
    /// Trace → partition → apply with the leaf-descent cache (the
    /// production mode): lock-free tracing into record buffers, counting-
    /// sort by patch, one write-lock per patch run. Bit-identical to the
    /// serial simulator at any thread count.
    Batched,
    /// The batched pipeline with the [`photon_hist::LeafCursor`] fast path
    /// disabled (every record re-descends from the root). Same answers as
    /// [`PipelineMode::Batched`]; exists for the `ablation_pipeline` bench.
    BatchedNoCache,
    /// Tally through the per-tree write locks while tracing (the paper's
    /// original Fig 5.2 loop). Bin boundaries depend on tally interleaving,
    /// so answers are *not* reproducible across thread counts — kept as the
    /// test oracle for photon-set invariants and as the ablation baseline.
    InlineTally,
}

/// Configuration of a shared-memory run.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Seed of the photon stream (block-split per photon).
    pub seed: u64,
    /// Bin splitting policy.
    pub split: SplitConfig,
    /// Worker thread count (the paper's "processors").
    pub threads: usize,
    /// Photons per batch (across all threads).
    pub batch_size: u64,
    /// How tallies reach the forest.
    pub pipeline: PipelineMode,
    /// Spawn exactly [`threads`](Self::threads) workers even beyond the
    /// host's available parallelism. Off by default: oversubscribing cores
    /// is pure scheduling overhead for this compute-bound pipeline, so the
    /// engine clamps its worker count to the host — which the batched
    /// pipeline makes safe, because its answer is bit-identical at *any*
    /// worker count. The thread-scaling experiments (`fig5_6_shared`,
    /// `ablation_locks`, the equivalence suite) turn this on to measure
    /// real contention.
    pub oversubscribe: bool,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            seed: 0x5EED,
            split: SplitConfig::default(),
            threads: 2,
            batch_size: 2000,
            pipeline: PipelineMode::Batched,
            oversubscribe: false,
        }
    }
}

impl ParConfig {
    /// Workers the engine actually spawns: `threads`, clamped to the
    /// host's available parallelism unless
    /// [`oversubscribe`](Self::oversubscribe) is set. Never zero.
    pub fn worker_count(&self) -> usize {
        let requested = self.threads.max(1);
        if self.oversubscribe {
            requested
        } else {
            let host = std::thread::available_parallelism().map_or(requested, |n| n.get());
            requested.min(host)
        }
    }
}

/// The shared bin forest: one reader/writer lock per patch tree.
pub struct SharedForest {
    trees: Vec<RwLock<BinTree>>,
    tallies: AtomicU64,
}

impl SharedForest {
    /// One tree per patch.
    pub fn new(patch_count: usize, split: SplitConfig) -> Self {
        SharedForest {
            trees: (0..patch_count)
                .map(|_| RwLock::new(BinTree::new(split)))
                .collect(),
            tallies: AtomicU64::new(0),
        }
    }

    /// Records one interaction (thread-safe): one write-lock acquisition
    /// per tally. The batched pipeline amortizes this via
    /// [`SharedForest::tally_run`]; this per-tally path serves
    /// [`PipelineMode::InlineTally`].
    #[inline]
    pub fn tally(&self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.tallies.fetch_add(1, Ordering::Relaxed);
        self.trees[patch_id as usize].write().tally(point, energy);
    }

    /// Write-locks every tree for the fused single-worker batch: with one
    /// writer, per-tally locking is pure overhead, so the worker holds the
    /// whole forest for the batch and concurrent readers (snapshots) wait
    /// out at most one batch. Guards are returned in patch order.
    pub(crate) fn write_all(&self) -> Vec<parking_lot::RwLockWriteGuard<'_, BinTree>> {
        self.trees.iter().map(|t| t.write()).collect()
    }

    /// Folds a batch-local tally count into the shared total (the fused
    /// path counts locally instead of one atomic add per tally).
    pub(crate) fn add_tallies(&self, n: u64) {
        self.tallies.fetch_add(n, Ordering::Relaxed);
    }

    /// Applies one patch's run of records under a single write-lock
    /// acquisition, in record order. With `leaf_cache` the tree reuses the
    /// previous record's leaf descent when the next record lands in the
    /// same leaf ([`photon_hist::LeafCursor`]); either way the result is
    /// bit-identical to tallying the records one at a time in order.
    pub fn tally_run(&self, patch_id: u32, records: &[TallyRecord], leaf_cache: bool) {
        if records.is_empty() {
            return;
        }
        self.tallies
            .fetch_add(records.len() as u64, Ordering::Relaxed);
        let mut tree = self.trees[patch_id as usize].write();
        if leaf_cache {
            tree.tally_run(records.iter().map(|r| (&r.point, r.energy)));
        } else {
            for r in records {
                tree.tally(&r.point, r.energy);
            }
        }
    }

    /// Total tallies recorded (exact).
    pub fn total_tallies(&self) -> u64 {
        self.tallies.load(Ordering::Relaxed)
    }

    /// Number of patches (trees).
    pub fn patch_count(&self) -> usize {
        self.trees.len()
    }

    /// Replaces every tree with `forest`'s — the restore path of an engine
    /// checkpoint. The tally counter resets to the incoming trees' total.
    ///
    /// # Panics
    /// Panics if the patch counts differ (callers validate via
    /// [`photon_core::EngineCheckpoint::compatible_with`] first).
    pub fn replace(&self, forest: photon_core::BinForest) {
        assert_eq!(forest.len(), self.trees.len(), "patch count mismatch");
        let mut total = 0u64;
        for (slot, tree) in self.trees.iter().zip(forest.into_trees()) {
            total += tree.tallies();
            *slot.write() = tree;
        }
        self.tallies.store(total, Ordering::Relaxed);
    }

    /// Total leaf bins across trees.
    pub fn total_leaf_bins(&self) -> u64 {
        self.trees
            .iter()
            .map(|t| t.read().leaf_count() as u64)
            .sum()
    }

    /// Per-arena footprint gauges summed over the trees, each under a brief
    /// read lock.
    pub fn footprint(&self) -> ForestFootprint {
        let mut fp = ForestFootprint::default();
        for t in &self.trees {
            fp.add_tree(&t.read());
        }
        fp
    }

    /// Rebuilds every tree's arenas into the canonical subtree-clustered
    /// order (see [`BinTree::compact`]). Layout-only: exports, lookups, and
    /// future splits are unchanged, so any snapshot or checkpoint taken
    /// around the compaction is byte-identical. Callers must only compact
    /// at batch boundaries — workers re-derive their leaf cursors each
    /// batch, and a compaction invalidates outstanding cursors.
    pub fn compact_all(&self) {
        for t in &self.trees {
            t.write().compact();
        }
    }

    /// Clones the current trees into a serial forest — the snapshot behind
    /// a progressive answer publish; the engine keeps refining afterwards.
    pub fn snapshot_forest(&self) -> photon_core::BinForest {
        photon_core::BinForest::from_trees(self.trees.iter().map(|t| t.read().clone()).collect())
    }

    /// Collapses into a serial forest.
    pub fn into_forest(self) -> photon_core::BinForest {
        photon_core::BinForest::from_trees(self.trees.into_iter().map(|t| t.into_inner()).collect())
    }
}

/// Per-thread sink borrowing the shared forest (the inline-tally oracle).
pub(crate) struct SharedSink<'a> {
    pub(crate) forest: &'a SharedForest,
}

impl TallySink for SharedSink<'_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.forest.tally(patch_id, point, energy);
    }
}

/// Result of a shared-memory run.
pub struct ParRunResult {
    /// Aggregate photon counters.
    pub stats: SimStats,
    /// Speed-vs-time trace (one sample per batch).
    pub speed: SpeedTrace,
    /// The answer snapshot.
    pub answer: Answer,
    /// Leaf bins at the end (Table 5.1's view-dependent polygons).
    pub leaf_bins: u64,
}

/// Runs `total_photons` through a [`ParEngine`] batch by batch (Fig 5.2's
/// `forall` loop with per-batch speed samples).
pub fn run(scene: &Scene, config: &ParConfig, total_photons: u64) -> ParRunResult {
    assert!(config.threads >= 1);
    assert!(config.batch_size >= 1);
    let mut engine = ParEngine::new(scene.clone(), *config);
    let mut remaining = total_photons;
    while remaining > 0 {
        let n = remaining.min(config.batch_size);
        engine.step(n);
        remaining -= n;
    }
    let leaf_bins = engine.forest().total_leaf_bins();
    let stats = engine.stats();
    let speed = engine.speed_trace().clone();
    ParRunResult {
        stats,
        speed,
        answer: engine.into_answer(),
        leaf_bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_scenes::cornell_box;

    fn small_run(threads: usize, pipeline: PipelineMode) -> ParRunResult {
        let scene = cornell_box();
        let config = ParConfig {
            seed: 99,
            threads,
            batch_size: 2000,
            pipeline,
            // Real worker counts even on small CI hosts — these tests
            // exercise the multi-worker pipeline, not its speed.
            oversubscribe: true,
            ..Default::default()
        };
        run(&scene, &config, 10_000)
    }

    #[test]
    fn photons_are_conserved_across_threads() {
        for threads in [1, 2, 4] {
            let r = small_run(threads, PipelineMode::Batched);
            assert_eq!(r.stats.emitted, 10_000, "threads={threads}");
            assert!(r.stats.is_conserved(), "threads={threads}: {:?}", r.stats);
        }
    }

    #[test]
    fn tallies_equal_emissions_plus_reflections() {
        let scene = cornell_box();
        let config = ParConfig {
            seed: 7,
            threads: 4,
            batch_size: 1000,
            ..Default::default()
        };
        let r = run(&scene, &config, 5_000);
        // answer trees tally exactly emissions + reflections.
        let total: u64 = (0..r.answer.patch_count() as u32)
            .map(|pid| r.answer.tree(pid).tallies())
            .sum();
        assert_eq!(total, r.stats.emitted + r.stats.reflections);
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        // Block-split photon streams: 1 thread and 4 threads trace the
        // *same* photons, so every counter agrees exactly.
        let serial = small_run(1, PipelineMode::Batched);
        let par = small_run(4, PipelineMode::Batched);
        assert_eq!(serial.stats, par.stats);
    }

    #[test]
    fn pipeline_modes_agree_on_totals() {
        let batched = small_run(4, PipelineMode::Batched);
        let nocache = small_run(4, PipelineMode::BatchedNoCache);
        let inline = small_run(4, PipelineMode::InlineTally);
        assert_eq!(batched.stats, inline.stats);
        assert_eq!(batched.stats, nocache.stats);
        // The leaf cache is a pure traversal shortcut: the two batched
        // modes build byte-identical answers.
        let bytes = |r: &ParRunResult| {
            let mut buf = Vec::new();
            r.answer.write_to(&mut buf).expect("encode");
            buf
        };
        assert_eq!(bytes(&batched), bytes(&nocache));
    }

    #[test]
    fn worker_clamping_is_invisible_in_the_answer() {
        // The default config clamps workers to the host; determinism makes
        // that safe — the clamped and fully-oversubscribed runs agree to
        // the byte.
        let scene = cornell_box();
        let with = |oversubscribe| {
            let config = ParConfig {
                seed: 99,
                threads: 4,
                batch_size: 2000,
                oversubscribe,
                ..Default::default()
            };
            assert!(config.worker_count() >= 1);
            assert!(config.worker_count() <= 4);
            let r = run(&scene, &config, 10_000);
            let mut buf = Vec::new();
            r.answer.write_to(&mut buf).expect("encode");
            (r.stats, buf)
        };
        assert_eq!(with(false), with(true));
    }

    #[test]
    fn speed_trace_has_one_sample_per_batch() {
        let r = small_run(2, PipelineMode::Batched);
        assert_eq!(r.speed.samples().len(), 5);
        assert_eq!(r.speed.total_photons(), 10_000);
        assert!(r.speed.total_elapsed() > 0.0);
    }

    #[test]
    fn forest_refines_in_parallel() {
        let r = small_run(4, PipelineMode::Batched);
        assert!(r.leaf_bins > 30, "leaf bins {}", r.leaf_bins);
    }
}
