//! Shared-memory parallel Photon (dissertation ch. 5, Fig 5.2).
//!
//! "The geometry data structure becomes a shared database with multiple
//! processors accessing and modifying it. … Mutually exclusive access is
//! insured through the use of semaphores to lock access to nodes in the bin
//! forest, and follows a multiple reader, single writer protocol."
//!
//! The crate is built around [`ParEngine`] (see [`engine`]): a *resumable*
//! solver implementing [`photon_core::SolverEngine`], holding its
//! [`SharedForest`] — one `parking_lot::RwLock` per patch tree — and a
//! persistent worker pool across batches. Worker `t` of `T` leapfrogs
//! through each batch's photon indices (every `T`-th photon), and each
//! photon draws from its own block substream of the seeded base stream, so
//! the photon set is exactly the serial simulator's regardless of thread
//! count. Two tally modes:
//!
//! * [`TallyMode::Concurrent`] — tallies go through the per-tree write
//!   locks as workers trace (the paper's design; [`LockMode::Global`] is
//!   the single-lock ablation — see the `ablation_locks` bench);
//! * [`TallyMode::Deterministic`] — tallies are buffered and replayed in
//!   global photon order, making the answer bit-identical to the serial
//!   simulator's.
//!
//! [`run`] drives the engine for a fixed photon budget, recording a speed
//! sample per batch — the traces of Figs 5.6–5.8.

#![deny(missing_docs)]

pub mod engine;
pub mod pool;

pub use engine::ParEngine;
pub use pool::parallel_map;

use parking_lot::{Mutex, RwLock};
use photon_core::sim::SimStats;
use photon_core::trace::TallySink;
use photon_core::{Answer, SolverEngine, SpeedTrace};
use photon_geom::Scene;
use photon_hist::{BinPoint, BinTree, SplitConfig};
use photon_math::Rgb;
use std::sync::atomic::{AtomicU64, Ordering};

/// Locking granularity for the shared bin forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// One reader/writer lock per patch tree (the production mode).
    PerTree,
    /// A single lock around the whole forest (ablation baseline).
    Global,
}

/// When tallies reach the shared forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TallyMode {
    /// Tally through the forest locks while tracing (the paper's Fig 5.2).
    /// Fastest; bin boundaries depend on tally interleaving.
    Concurrent,
    /// Buffer tallies during the trace, then replay them in global photon
    /// order — the answer is bit-identical to the serial simulator's.
    Deterministic,
}

/// Configuration of a shared-memory run.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Seed of the photon stream (block-split per photon).
    pub seed: u64,
    /// Bin splitting policy.
    pub split: SplitConfig,
    /// Worker thread count (the paper's "processors").
    pub threads: usize,
    /// Photons per batch (across all threads).
    pub batch_size: u64,
    /// Locking granularity.
    pub lock: LockMode,
    /// When tallies reach the forest.
    pub tally: TallyMode,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            seed: 0x5EED,
            split: SplitConfig::default(),
            threads: 2,
            batch_size: 2000,
            lock: LockMode::PerTree,
            tally: TallyMode::Concurrent,
        }
    }
}

/// The shared bin forest: per-tree writer locks plus an optional global
/// serialization lock for the ablation mode.
pub struct SharedForest {
    trees: Vec<RwLock<BinTree>>,
    global: Mutex<()>,
    mode: LockMode,
    tallies: AtomicU64,
}

impl SharedForest {
    /// One tree per patch.
    pub fn new(patch_count: usize, split: SplitConfig, mode: LockMode) -> Self {
        SharedForest {
            trees: (0..patch_count)
                .map(|_| RwLock::new(BinTree::new(split)))
                .collect(),
            global: Mutex::new(()),
            mode,
            tallies: AtomicU64::new(0),
        }
    }

    /// Records one interaction (thread-safe).
    #[inline]
    pub fn tally(&self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.tallies.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            LockMode::PerTree => {
                self.trees[patch_id as usize].write().tally(point, energy);
            }
            LockMode::Global => {
                let _g = self.global.lock();
                self.trees[patch_id as usize].write().tally(point, energy);
            }
        }
    }

    /// Total tallies recorded (exact).
    pub fn total_tallies(&self) -> u64 {
        self.tallies.load(Ordering::Relaxed)
    }

    /// Number of patches (trees).
    pub fn patch_count(&self) -> usize {
        self.trees.len()
    }

    /// Replaces every tree with `forest`'s — the restore path of an engine
    /// checkpoint. The tally counter resets to the incoming trees' total.
    ///
    /// # Panics
    /// Panics if the patch counts differ (callers validate via
    /// [`photon_core::EngineCheckpoint::compatible_with`] first).
    pub fn replace(&self, forest: photon_core::BinForest) {
        assert_eq!(forest.len(), self.trees.len(), "patch count mismatch");
        let mut total = 0u64;
        for (slot, tree) in self.trees.iter().zip(forest.into_trees()) {
            total += tree.tallies();
            *slot.write() = tree;
        }
        self.tallies.store(total, Ordering::Relaxed);
    }

    /// Total leaf bins across trees.
    pub fn total_leaf_bins(&self) -> u64 {
        self.trees
            .iter()
            .map(|t| t.read().leaf_count() as u64)
            .sum()
    }

    /// Clones the current trees into a serial forest — the snapshot behind
    /// a progressive answer publish; the engine keeps refining afterwards.
    pub fn snapshot_forest(&self) -> photon_core::BinForest {
        photon_core::BinForest::from_trees(self.trees.iter().map(|t| t.read().clone()).collect())
    }

    /// Collapses into a serial forest.
    pub fn into_forest(self) -> photon_core::BinForest {
        photon_core::BinForest::from_trees(self.trees.into_iter().map(|t| t.into_inner()).collect())
    }
}

/// Per-thread sink borrowing the shared forest.
pub(crate) struct SharedSink<'a> {
    pub(crate) forest: &'a SharedForest,
}

impl TallySink for SharedSink<'_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.forest.tally(patch_id, point, energy);
    }
}

/// Result of a shared-memory run.
pub struct ParRunResult {
    /// Aggregate photon counters.
    pub stats: SimStats,
    /// Speed-vs-time trace (one sample per batch).
    pub speed: SpeedTrace,
    /// The answer snapshot.
    pub answer: Answer,
    /// Leaf bins at the end (Table 5.1's view-dependent polygons).
    pub leaf_bins: u64,
}

/// Runs `total_photons` through a [`ParEngine`] batch by batch (Fig 5.2's
/// `forall` loop with per-batch speed samples).
pub fn run(scene: &Scene, config: &ParConfig, total_photons: u64) -> ParRunResult {
    assert!(config.threads >= 1);
    assert!(config.batch_size >= 1);
    let mut engine = ParEngine::new(scene.clone(), *config);
    let mut remaining = total_photons;
    while remaining > 0 {
        let n = remaining.min(config.batch_size);
        engine.step(n);
        remaining -= n;
    }
    let leaf_bins = engine.forest().total_leaf_bins();
    let stats = engine.stats();
    let speed = engine.speed_trace().clone();
    ParRunResult {
        stats,
        speed,
        answer: engine.into_answer(),
        leaf_bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_scenes::cornell_box;

    fn small_run(threads: usize, lock: LockMode) -> ParRunResult {
        let scene = cornell_box();
        let config = ParConfig {
            seed: 99,
            threads,
            batch_size: 2000,
            lock,
            ..Default::default()
        };
        run(&scene, &config, 10_000)
    }

    #[test]
    fn photons_are_conserved_across_threads() {
        for threads in [1, 2, 4] {
            let r = small_run(threads, LockMode::PerTree);
            assert_eq!(r.stats.emitted, 10_000, "threads={threads}");
            assert!(r.stats.is_conserved(), "threads={threads}: {:?}", r.stats);
        }
    }

    #[test]
    fn tallies_equal_emissions_plus_reflections() {
        let scene = cornell_box();
        let config = ParConfig {
            seed: 7,
            threads: 4,
            batch_size: 1000,
            ..Default::default()
        };
        let r = run(&scene, &config, 5_000);
        // answer trees tally exactly emissions + reflections.
        let total: u64 = (0..r.answer.patch_count() as u32)
            .map(|pid| r.answer.tree(pid).tallies())
            .sum();
        assert_eq!(total, r.stats.emitted + r.stats.reflections);
    }

    #[test]
    fn parallel_run_matches_serial_exactly() {
        // Block-split photon streams: 1 thread and 4 threads trace the
        // *same* photons, so every counter agrees exactly.
        let serial = small_run(1, LockMode::PerTree);
        let par = small_run(4, LockMode::PerTree);
        assert_eq!(serial.stats, par.stats);
    }

    #[test]
    fn lock_modes_agree_on_totals() {
        let a = small_run(4, LockMode::PerTree);
        let b = small_run(4, LockMode::Global);
        assert_eq!(a.stats.emitted, b.stats.emitted);
        // Identical streams => identical reflection totals, regardless of
        // lock granularity.
        assert_eq!(a.stats.reflections, b.stats.reflections);
    }

    #[test]
    fn speed_trace_has_one_sample_per_batch() {
        let r = small_run(2, LockMode::PerTree);
        assert_eq!(r.speed.samples().len(), 5);
        assert_eq!(r.speed.total_photons(), 10_000);
        assert!(r.speed.total_elapsed() > 0.0);
    }

    #[test]
    fn forest_refines_in_parallel() {
        let r = small_run(4, LockMode::PerTree);
        assert!(r.leaf_bins > 30, "leaf bins {}", r.leaf_bins);
    }
}
