//! Shared-memory parallel Photon (dissertation ch. 5, Fig 5.2).
//!
//! "The geometry data structure becomes a shared database with multiple
//! processors accessing and modifying it. … Mutually exclusive access is
//! insured through the use of semaphores to lock access to nodes in the bin
//! forest, and follows a multiple reader, single writer protocol."
//!
//! Here each worker thread traces its own photons (geometry is shared
//! read-only) and tallies through a [`SharedForest`]: one
//! `parking_lot::RwLock` per patch tree. A tally takes the write lock of the
//! *one* tree it touches — the same granularity that matters for contention
//! (patches are the unit of conflict), with the lock-per-split refinement of
//! the paper subsumed by the short critical section. An optional
//! [`LockMode::Global`] ablation serializes the whole forest behind a single
//! lock to quantify what fine-grained locking buys (see the `ablation`
//! bench).
//!
//! Work is issued in batches; after every batch the coordinator records a
//! speed sample, reproducing the speed-vs-time traces of Figs 5.6–5.8.
//! Random streams are leapfrogged so the union of all threads' photons is
//! exactly the serial photon stream, partitioned.

#![deny(missing_docs)]

pub mod pool;

pub use pool::parallel_map;

use parking_lot::{Mutex, RwLock};
use photon_core::generate::PhotonGenerator;
use photon_core::sim::SimStats;
use photon_core::trace::{trace_photon, TallySink, Termination};
use photon_core::{Answer, SpeedTrace};
use photon_geom::Scene;
use photon_hist::{BinPoint, BinTree, SplitConfig};
use photon_math::Rgb;
use photon_rng::Lcg48;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::Instant;

/// Locking granularity for the shared bin forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockMode {
    /// One reader/writer lock per patch tree (the production mode).
    PerTree,
    /// A single lock around the whole forest (ablation baseline).
    Global,
}

/// Configuration of a shared-memory run.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// Seed of the global (pre-leapfrog) random stream.
    pub seed: u64,
    /// Bin splitting policy.
    pub split: SplitConfig,
    /// Worker thread count (the paper's "processors").
    pub threads: usize,
    /// Photons per batch (across all threads).
    pub batch_size: u64,
    /// Locking granularity.
    pub lock: LockMode,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            seed: 0x5EED,
            split: SplitConfig::default(),
            threads: 2,
            batch_size: 2000,
            lock: LockMode::PerTree,
        }
    }
}

/// The shared bin forest: per-tree writer locks plus an optional global
/// serialization lock for the ablation mode.
pub struct SharedForest {
    trees: Vec<RwLock<BinTree>>,
    global: Mutex<()>,
    mode: LockMode,
    tallies: AtomicU64,
}

impl SharedForest {
    /// One tree per patch.
    pub fn new(patch_count: usize, split: SplitConfig, mode: LockMode) -> Self {
        SharedForest {
            trees: (0..patch_count)
                .map(|_| RwLock::new(BinTree::new(split)))
                .collect(),
            global: Mutex::new(()),
            mode,
            tallies: AtomicU64::new(0),
        }
    }

    /// Records one interaction (thread-safe).
    #[inline]
    pub fn tally(&self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.tallies.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            LockMode::PerTree => {
                self.trees[patch_id as usize].write().tally(point, energy);
            }
            LockMode::Global => {
                let _g = self.global.lock();
                self.trees[patch_id as usize].write().tally(point, energy);
            }
        }
    }

    /// Total tallies recorded (exact).
    pub fn total_tallies(&self) -> u64 {
        self.tallies.load(Ordering::Relaxed)
    }

    /// Total leaf bins across trees.
    pub fn total_leaf_bins(&self) -> u64 {
        self.trees
            .iter()
            .map(|t| t.read().leaf_count() as u64)
            .sum()
    }

    /// Collapses into a serial forest.
    pub fn into_forest(self) -> photon_core::BinForest {
        photon_core::BinForest::from_trees(self.trees.into_iter().map(|t| t.into_inner()).collect())
    }
}

/// Per-thread sink borrowing the shared forest.
struct SharedSink<'a> {
    forest: &'a SharedForest,
}

impl TallySink for SharedSink<'_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.forest.tally(patch_id, point, energy);
    }
}

/// Result of a shared-memory run.
pub struct ParRunResult {
    /// Aggregate photon counters.
    pub stats: SimStats,
    /// Speed-vs-time trace (one sample per batch).
    pub speed: SpeedTrace,
    /// The answer snapshot.
    pub answer: Answer,
    /// Leaf bins at the end (Table 5.1's view-dependent polygons).
    pub leaf_bins: u64,
}

/// Runs `total_photons` through `config.threads` workers over the shared
/// forest, batch by batch (Fig 5.2's `forall` loop).
pub fn run(scene: &Scene, config: &ParConfig, total_photons: u64) -> ParRunResult {
    assert!(config.threads >= 1);
    assert!(config.batch_size >= config.threads as u64);
    let forest = SharedForest::new(scene.polygon_count(), config.split, config.lock);
    let generator = PhotonGenerator::new(scene);
    let base = Lcg48::new(config.seed);
    let nthreads = config.threads;

    // Per-thread leapfrogged RNG streams: the union of all threads' draws is
    // the serial stream (ch. 5, Random Number Generation).
    let rngs: Vec<Lcg48> = (0..nthreads).map(|r| base.leapfrog(r, nthreads)).collect();
    let rngs: Vec<Mutex<Lcg48>> = rngs.into_iter().map(Mutex::new).collect();

    let nbatches = total_photons.div_ceil(config.batch_size);
    let mut speed = SpeedTrace::new();
    let stats_acc = Mutex::new(SimStats::default());
    let barrier = Barrier::new(nthreads);
    let batch_of =
        |b: u64| -> u64 { (total_photons - b * config.batch_size).min(config.batch_size) };

    let t0 = Instant::now();
    let batch_times = Mutex::new(Vec::<(f64, u64, f64)>::new());
    std::thread::scope(|scope| {
        for tid in 0..nthreads {
            let forest = &forest;
            let generator = &generator;
            let rngs = &rngs;
            let stats_acc = &stats_acc;
            let barrier = &barrier;
            let batch_times = &batch_times;
            scope.spawn(move || {
                let mut rng = rngs[tid].lock().clone();
                let mut sink = SharedSink { forest };
                let mut local = SimStats::default();
                for b in 0..nbatches {
                    let n = batch_of(b);
                    // Split the batch across threads (remainder to low tids).
                    let share = n / nthreads as u64 + u64::from((n % nthreads as u64) > tid as u64);
                    let batch_start = Instant::now();
                    for _ in 0..share {
                        let out = trace_photon(scene, generator, &mut rng, &mut sink);
                        local.emitted += 1;
                        local.reflections += out.bounces as u64;
                        match out.termination {
                            Termination::Absorbed => local.absorbed += 1,
                            Termination::Escaped => local.escaped += 1,
                            Termination::BounceCapped => local.capped += 1,
                        }
                    }
                    barrier.wait();
                    // Thread 0 records the batch sample after the barrier so
                    // the time covers the slowest worker.
                    if tid == 0 {
                        let elapsed = t0.elapsed().as_secs_f64();
                        batch_times
                            .lock()
                            .push((elapsed, n, batch_start.elapsed().as_secs_f64()));
                    }
                    barrier.wait();
                }
                let mut acc = stats_acc.lock();
                acc.emitted += local.emitted;
                acc.absorbed += local.absorbed;
                acc.escaped += local.escaped;
                acc.capped += local.capped;
                acc.reflections += local.reflections;
            });
        }
    });

    for (elapsed, n, secs) in batch_times.into_inner() {
        speed.push_batch(elapsed, n, secs);
    }
    let stats = *stats_acc.lock();
    let leaf_bins = forest.total_leaf_bins();
    let forest = forest.into_forest();
    let answer = Answer::from_forest(&forest, stats.emitted);
    ParRunResult {
        stats,
        speed,
        answer,
        leaf_bins,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_scenes::cornell_box;

    fn small_run(threads: usize, lock: LockMode) -> ParRunResult {
        let scene = cornell_box();
        let config = ParConfig {
            seed: 99,
            threads,
            batch_size: 2000,
            lock,
            ..Default::default()
        };
        run(&scene, &config, 10_000)
    }

    #[test]
    fn photons_are_conserved_across_threads() {
        for threads in [1, 2, 4] {
            let r = small_run(threads, LockMode::PerTree);
            assert_eq!(r.stats.emitted, 10_000, "threads={threads}");
            assert!(r.stats.is_conserved(), "threads={threads}: {:?}", r.stats);
        }
    }

    #[test]
    fn tallies_equal_emissions_plus_reflections() {
        let scene = cornell_box();
        let config = ParConfig {
            seed: 7,
            threads: 4,
            batch_size: 1000,
            ..Default::default()
        };
        let forest = SharedForest::new(scene.polygon_count(), config.split, config.lock);
        // run() consumes the forest internally; recompute via the public API.
        let r = run(&scene, &config, 5_000);
        drop(forest);
        // answer trees tally exactly emissions + reflections.
        let total: u64 = (0..r.answer.patch_count() as u32)
            .map(|pid| r.answer.tree(pid).tallies())
            .sum();
        assert_eq!(total, r.stats.emitted + r.stats.reflections);
    }

    #[test]
    fn parallel_run_statistically_matches_serial() {
        // Same seed, 1 thread vs 4 threads: leapfrog partitions the same
        // stream, so aggregate statistics agree closely (split decisions
        // may differ by interleaving, counts may not drift).
        let serial = small_run(1, LockMode::PerTree);
        let par = small_run(4, LockMode::PerTree);
        assert_eq!(serial.stats.emitted, par.stats.emitted);
        let s = serial.stats.reflections as f64;
        let p = par.stats.reflections as f64;
        // Different photons -> different bounce totals, but within a few
        // percent for 10k photons.
        assert!((s - p).abs() / s < 0.1, "serial {s} vs par {p}");
    }

    #[test]
    fn lock_modes_agree_on_totals() {
        let a = small_run(4, LockMode::PerTree);
        let b = small_run(4, LockMode::Global);
        assert_eq!(a.stats.emitted, b.stats.emitted);
        // Identical streams => identical reflection totals, regardless of
        // lock granularity.
        assert_eq!(a.stats.reflections, b.stats.reflections);
    }

    #[test]
    fn speed_trace_has_one_sample_per_batch() {
        let r = small_run(2, LockMode::PerTree);
        assert_eq!(r.speed.samples().len(), 5);
        assert_eq!(r.speed.total_photons(), 10_000);
        assert!(r.speed.total_elapsed() > 0.0);
    }

    #[test]
    fn forest_refines_in_parallel() {
        let r = small_run(4, LockMode::PerTree);
        assert!(r.leaf_bins > 30, "leaf bins {}", r.leaf_bins);
    }
}
