//! Steady-state allocation regression test for the batched engine.
//!
//! The trace→partition→apply pipeline reuses all of its buffers: per-worker
//! record scratch, the partition's counts/cursors/sorted/runs vectors, and
//! the trees themselves once splitting has converged. After warm-up, a
//! `step()` should allocate nothing beyond the channel message headers the
//! worker pool sends per round (std's mpsc boxes each message), so the test
//! asserts a small constant byte bound per measured window — not literal
//! zero — independent of batch size. The old per-tally path allocated fresh
//! batch bookkeeping every step; a regression back to that blows the bound
//! by orders of magnitude.
//!
//! Lives in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use photon_core::SolverEngine;
use photon_hist::SplitConfig;
use photon_par::{ParConfig, ParEngine};
use photon_scenes::TestScene;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates straight to `System`; the counter is side-effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Generous ceiling for two steady-state steps: a handful of mpsc message
/// boxes per sync round, nowhere near the megabytes a fresh-buffers-per-step
/// pipeline would burn.
const BUDGET_BYTES: u64 = 64 * 1024;

fn measured_steps(mut engine: ParEngine, batch: u64) -> u64 {
    // Warm up: grow every scratch vector to its steady-state capacity and
    // drive the depth-capped trees to their final shape.
    for _ in 0..6 {
        engine.step(batch);
    }
    let before = ALLOCATED.load(Ordering::Relaxed);
    engine.step(batch);
    engine.step(batch);
    ALLOCATED.load(Ordering::Relaxed) - before
}

#[test]
fn steady_state_step_reuses_all_scratch() {
    let batch = 4096u64;
    let engine = ParEngine::new(
        TestScene::CornellBox.build(),
        ParConfig {
            seed: 7,
            threads: 2,
            batch_size: batch,
            // Both workers must really exist: the bound covers their
            // per-round channel messages too.
            oversubscribe: true,
            // Shallow trees so splitting (which legitimately allocates
            // nodes) finishes during warm-up and the measured window
            // isolates the pipeline's own behavior.
            split: SplitConfig {
                max_depth: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let delta = measured_steps(engine, batch);
    assert!(
        delta < BUDGET_BYTES,
        "two steady-state steps allocated {delta} bytes (budget {BUDGET_BYTES})"
    );
}

#[test]
fn fused_single_worker_step_reuses_all_scratch() {
    // threads: 1 takes the fused trace+apply path (no partition); its only
    // steady-state allocation is the per-batch vector of tree write guards.
    let batch = 4096u64;
    let engine = ParEngine::new(
        TestScene::CornellBox.build(),
        ParConfig {
            seed: 7,
            threads: 1,
            batch_size: batch,
            split: SplitConfig {
                max_depth: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let delta = measured_steps(engine, batch);
    assert!(
        delta < BUDGET_BYTES,
        "two fused steady-state steps allocated {delta} bytes (budget {BUDGET_BYTES})"
    );
}
