//! Determinism contract of the batched pipeline: the threaded answer is
//! byte-identical to the serial simulator for *any* batch size and *any*
//! thread count — including batches smaller than the thread count and
//! thread counts beyond the host's cores. This is the property that let the
//! engine collapse its old deterministic/concurrent split into one mode.

use photon_core::{Answer, SimConfig, Simulator, SolverEngine};
use photon_par::{ParConfig, ParEngine};
use photon_scenes::TestScene;

const SEED: u64 = 4242;
const TOTAL: u64 = 4096;

fn answer_bytes(a: &Answer) -> Vec<u8> {
    let mut buf = Vec::new();
    a.write_to(&mut buf).expect("encode answer");
    buf
}

fn serial_answer() -> Vec<u8> {
    let mut sim = Simulator::new(
        TestScene::CornellBox.build(),
        SimConfig {
            seed: SEED,
            ..Default::default()
        },
    );
    sim.run_photons(TOTAL);
    answer_bytes(&sim.answer_snapshot())
}

#[test]
fn every_batch_size_and_thread_count_matches_serial_byte_for_byte() {
    let want = serial_answer();
    for &batch in &[1u64, 7, 64, 4096] {
        for &threads in &[1usize, 2, 8] {
            let mut engine = ParEngine::new(
                TestScene::CornellBox.build(),
                ParConfig {
                    seed: SEED,
                    threads,
                    batch_size: batch,
                    // Spawn all 8 workers even on a small CI host: the
                    // point is the multi-worker partition, not speed.
                    oversubscribe: true,
                    ..Default::default()
                },
            );
            let mut left = TOTAL;
            while left > 0 {
                let n = batch.min(left);
                engine.step(n);
                left -= n;
            }
            assert_eq!(
                answer_bytes(&engine.snapshot()),
                want,
                "batch={batch} threads={threads} diverged from serial"
            );
        }
    }
}
