//! The wire format of forwarded photon interactions.
//!
//! In distributed Photon every reflected photon whose bin lives on another
//! processor is queued and shipped in the all-to-all phase (Fig 5.3). A
//! record carries everything `DetermineBin` needs on the owner: the patch,
//! the 4-D bin coordinates and the RGB energy — 32 bytes, a small fraction
//! of the "100 bytes per photon" the paper attributes to ray-history
//! approaches.

use photon_hist::BinPoint;
use photon_math::Rgb;

/// Byte length of one encoded record.
pub const RECORD_BYTES: usize = 32;

/// One forwarded photon interaction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhotonRecord {
    /// Owning patch.
    pub patch_id: u32,
    /// 4-D bin coordinates.
    pub point: BinPoint,
    /// Outgoing energy.
    pub energy: Rgb,
}

impl PhotonRecord {
    /// Appends the 32-byte encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.patch_id.to_le_bytes());
        for v in [
            self.point.s as f32,
            self.point.t as f32,
            self.point.theta as f32,
            self.point.r_sq as f32,
            self.energy.r as f32,
            self.energy.g as f32,
            self.energy.b as f32,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Decodes one record from a 32-byte chunk.
    pub fn decode(chunk: &[u8]) -> PhotonRecord {
        assert_eq!(
            chunk.len(),
            RECORD_BYTES,
            "record must be {RECORD_BYTES} bytes"
        );
        let u32_at = |i: usize| u32::from_le_bytes(chunk[i..i + 4].try_into().unwrap());
        let f32_at = |i: usize| f32::from_le_bytes(chunk[i..i + 4].try_into().unwrap()) as f64;
        PhotonRecord {
            patch_id: u32_at(0),
            point: BinPoint::new(f32_at(4), f32_at(8), f32_at(12), f32_at(16)),
            energy: Rgb::new(f32_at(20), f32_at(24), f32_at(28)),
        }
    }

    /// Decodes a buffer of concatenated records.
    pub fn decode_all(buf: &[u8]) -> impl Iterator<Item = PhotonRecord> + '_ {
        assert_eq!(buf.len() % RECORD_BYTES, 0, "truncated record buffer");
        buf.chunks_exact(RECORD_BYTES).map(PhotonRecord::decode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PhotonRecord {
        PhotonRecord {
            patch_id: 1234,
            point: BinPoint::new(0.25, 0.75, 3.0, 0.5),
            energy: Rgb::new(1.5, 0.5, 0.125),
        }
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let mut buf = Vec::new();
        r.encode_into(&mut buf);
        assert_eq!(buf.len(), RECORD_BYTES);
        let back = PhotonRecord::decode(&buf);
        assert_eq!(back.patch_id, r.patch_id);
        // f32 round trip loses precision below 1e-7 relative.
        assert!((back.point.s - r.point.s).abs() < 1e-6);
        assert!((back.point.theta - r.point.theta).abs() < 1e-6);
        assert!((back.energy.r - r.energy.r).abs() < 1e-6);
    }

    #[test]
    fn decode_all_iterates_packed_records() {
        let mut buf = Vec::new();
        for i in 0..10u32 {
            let mut r = sample();
            r.patch_id = i;
            r.encode_into(&mut buf);
        }
        let ids: Vec<u32> = PhotonRecord::decode_all(&buf).map(|r| r.patch_id).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn truncated_buffer_panics() {
        let mut buf = Vec::new();
        sample().encode_into(&mut buf);
        buf.pop();
        let _: Vec<_> = PhotonRecord::decode_all(&buf).collect();
    }
}
