//! Adaptive batch sizing (ch. 5, Table 5.3).
//!
//! "Photon attempts to match batch size to communication medium. This is
//! accomplished by a growing batch size to maximize overall simulation
//! speed. Batch size starts with just 500 photons per processor and grows as
//! long as overall speed is increased. When a decrease in simulation speed
//! is detected, the batch size is reduced."
//!
//! The arithmetic of Table 5.3 (e.g. 500 → 750 → 1125 → 1687 → 1518 → 2277
//! on the Power Onyx) corresponds to growth ×1.5 and reduction ×0.9; the
//! running text says "15 percent", but the published sequence is consistent
//! with 10 % — we follow the numbers and make both knobs configurable.

/// Batch sizing policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BatchMode {
    /// Fixed photons per processor per batch.
    Fixed(u64),
    /// The paper's adaptive controller.
    Adaptive(AdaptiveBatch),
}

/// Adaptive controller parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdaptiveBatch {
    /// Initial photons per processor (paper: 500).
    pub initial: u64,
    /// Multiplier while speed keeps improving (paper sequence: 1.5).
    pub growth: f64,
    /// Multiplier after a slowdown (paper sequence: 0.9).
    pub shrink: f64,
    /// Relative dead band: rate changes within `±hysteresis` count as
    /// "no change" and keep the size (the plateaus of Table 5.3).
    pub hysteresis: f64,
    /// Hard ceiling to keep virtual batches bounded.
    pub max: u64,
}

impl Default for AdaptiveBatch {
    fn default() -> Self {
        AdaptiveBatch {
            initial: 500,
            growth: 1.5,
            shrink: 0.9,
            hysteresis: 0.02,
            max: 1 << 20,
        }
    }
}

/// Stateful batch-size controller; one instance per run, identical on every
/// rank (decisions depend only on the synchronized virtual clock).
#[derive(Clone, Debug)]
pub struct BatchController {
    size: u64,
    params: AdaptiveBatch,
    last_rate: Option<f64>,
    history: Vec<u64>,
}

impl BatchController {
    /// Creates a controller with the paper's defaults.
    pub fn new(params: AdaptiveBatch) -> Self {
        BatchController {
            size: params.initial.max(1),
            params,
            last_rate: None,
            history: vec![params.initial.max(1)],
        }
    }

    /// Current photons per processor.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// All sizes used so far, in order (Table 5.3's columns).
    pub fn history(&self) -> &[u64] {
        &self.history
    }

    /// Feeds the measured rate (photons/second) of the batch that just ran;
    /// updates the size for the next batch.
    ///
    /// Grows while speed *increases*, shrinks on a *decrease*, and holds
    /// inside the hysteresis dead band — without the dead band every shrink
    /// "improves" on the slow batch that triggered it and the size ratchets
    /// upward forever.
    pub fn observe(&mut self, rate: f64) {
        let next = match self.last_rate {
            Some(last) if rate < last * (1.0 - self.params.hysteresis) => {
                ((self.size as f64 * self.params.shrink).round() as u64).max(1)
            }
            Some(last) if rate <= last * (1.0 + self.params.hysteresis) => self.size,
            _ => ((self.size as f64 * self.params.growth).round() as u64)
                .min(self.params.max)
                .max(1),
        };
        self.last_rate = Some(rate);
        self.size = next;
        self.history.push(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_table_5_3_prefix() {
        // Feed monotonically improving rates: 500, 750, 1125, 1687 — the
        // shared prefix of all three platform columns.
        let mut c = BatchController::new(AdaptiveBatch::default());
        assert_eq!(c.size(), 500);
        c.observe(1000.0);
        assert_eq!(c.size(), 750);
        c.observe(1100.0);
        assert_eq!(c.size(), 1125);
        c.observe(1200.0);
        assert_eq!(c.size(), 1688); // paper rounds to 1687; we round half up
        c.observe(1100.0); // slowdown
        assert_eq!(c.size(), 1519); // paper: 1518
    }

    #[test]
    fn settles_on_a_saturating_medium() {
        // A realistic medium: rate saturates as latency amortizes, with a
        // mild linear penalty for oversized batches (memory/copy costs) —
        // optimum near s = 2662. The controller must settle in that
        // neighbourhood (the hysteresis band freezes it near the plateau),
        // not run away to the cap.
        let mut c = BatchController::new(AdaptiveBatch::default());
        for _ in 0..40 {
            let s = c.size() as f64;
            let rate = 1e5 * s / (s + 500.0) - 5.0 * s;
            c.observe(rate.max(1.0));
        }
        let final_sizes = &c.history()[30..];
        let mean = final_sizes.iter().sum::<u64>() as f64 / final_sizes.len() as f64;
        assert!(
            (1500.0..6000.0).contains(&mean),
            "controller wandered: mean {mean}, history {:?}",
            c.history()
        );
        assert!(c.history().iter().all(|&s| s < 10_000), "{:?}", c.history());
    }

    #[test]
    fn respects_ceiling() {
        let mut c = BatchController::new(AdaptiveBatch {
            max: 1000,
            ..Default::default()
        });
        for _ in 0..10 {
            c.observe(f64::MAX); // always "faster"
        }
        assert!(c.size() <= 1000);
    }

    #[test]
    fn history_records_every_decision() {
        let mut c = BatchController::new(AdaptiveBatch::default());
        for i in 0..5 {
            c.observe(1000.0 + i as f64);
        }
        assert_eq!(c.history().len(), 6); // initial + 5 decisions
        assert_eq!(c.history()[0], 500);
    }
}
