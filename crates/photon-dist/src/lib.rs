//! Distributed-memory Photon (dissertation ch. 5, Fig 5.3).
//!
//! The geometry is replicated on every rank; the *bin forest* — the large,
//! growing data structure — is distributed by patch. Each rank generates and
//! traces its leapfrogged share of every batch. Tallies for bins the rank
//! owns update locally; the rest are encoded as 32-byte
//! [`record::PhotonRecord`]s and queued per owner. A blocking all-to-all
//! exchange follows every batch; receivers run `DetermineBin` /
//! `UpdateBinCount` / `Split` on their own trees.
//!
//! On top of that loop sit the paper's two control mechanisms:
//! [`balance`] — Best-Fit bin packing of tree ownership from a pilot trace
//! (Table 5.2) — and [`batch`] — the adaptive batch-size controller
//! (Table 5.3). Time is virtual, supplied by [`simmpi`]'s platform models,
//! so the speedup traces of Figs 5.9–5.15 are deterministic.
//!
//! The rank world itself lives behind [`DistEngine`] (see [`engine`]): a
//! resumable [`photon_core::SolverEngine`] whose ranks persist across
//! batches and answer snapshot requests mid-solve. [`run_distributed`]
//! drives that engine to a [`StopRule`] and merges the final forest —
//! the original one-shot shape, now a thin wrapper.

#![deny(missing_docs)]

pub mod balance;
pub mod batch;
pub mod engine;
pub mod record;

pub use balance::Ownership;
pub use batch::{AdaptiveBatch, BatchController, BatchMode};
pub use engine::DistEngine;
pub use record::PhotonRecord;

use photon_core::sim::SimStats;
use photon_core::trace::TallySink;
use photon_core::{Answer, BinForest, SpeedTrace};
use photon_geom::Scene;
use photon_hist::{BinPoint, BinTree, SplitConfig};
use photon_math::Rgb;
use simmpi::{Comm, Platform};

/// Ownership assignment strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BalanceMode {
    /// Contiguous blocks of patch ids (no light knowledge).
    Naive,
    /// Pilot trace + Best-Fit bin packing (the paper's method).
    BinPacking {
        /// Photons in the redundant pilot phase (the paper's `k`).
        pilot_photons: u64,
    },
}

/// When to stop the main loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Stop after at least this many photons (global).
    Photons(u64),
    /// Stop at this much virtual time (the Fig 5.16 "2-minute run").
    VirtualSeconds(f64),
}

/// Configuration of a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Seed of the photon stream (block-split per photon, leapfrogged over
    /// ranks by photon index).
    pub seed: u64,
    /// Bin splitting policy.
    pub split: SplitConfig,
    /// Number of ranks ("processors").
    pub nranks: usize,
    /// Virtual-time platform model.
    pub platform: Platform,
    /// Ownership strategy.
    pub balance: BalanceMode,
    /// Batch sizing.
    pub batch: BatchMode,
    /// Stop rule.
    pub stop: StopRule,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            seed: 0x5EED,
            split: SplitConfig::default(),
            nranks: 2,
            platform: Platform::power_onyx(),
            balance: BalanceMode::BinPacking {
                pilot_photons: 1000,
            },
            batch: BatchMode::Fixed(500),
            stop: StopRule::Photons(10_000),
        }
    }
}

/// Result of a distributed run.
pub struct DistRunResult {
    /// Aggregate photon counters (pilot photons included in `emitted`).
    pub stats: SimStats,
    /// Virtual-time speed trace (global rate per batch).
    pub speed: SpeedTrace,
    /// Photon interactions *processed* per rank (local + received) — the
    /// Table 5.2 metric.
    pub per_rank_tallies: Vec<u64>,
    /// Batch sizes used, in order (Table 5.3).
    pub batch_history: Vec<u64>,
    /// The merged answer (owner trees only, each patch exactly once).
    pub answer: Answer,
    /// Final synchronized virtual clock.
    pub virtual_elapsed: f64,
    /// The ownership map used.
    pub ownership: Ownership,
    /// Bytes shipped through the all-to-all, total.
    pub bytes_forwarded: u64,
}

/// The tally sink of Fig 5.3's inner loop: local tallies update the rank's
/// own trees; foreign tallies are queued for their owner.
pub(crate) struct DistSink<'a> {
    pub(crate) ownership: &'a Ownership,
    pub(crate) my_rank: usize,
    pub(crate) forest: &'a mut BinForest,
    pub(crate) queues: &'a mut [Vec<u8>],
    pub(crate) processed: &'a mut u64,
}

impl TallySink for DistSink<'_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        let owner = self.ownership.owner_of(patch_id);
        if owner == self.my_rank {
            self.forest.tally(patch_id, point, energy);
            *self.processed += 1;
        } else {
            PhotonRecord {
                patch_id,
                point: *point,
                energy,
            }
            .encode_into(&mut self.queues[owner]);
        }
    }
}

/// Runs the full distributed simulation; blocks until the [`StopRule`] is
/// met and all ranks finish.
pub fn run_distributed(scene: &Scene, config: &DistConfig) -> DistRunResult {
    let mut engine = DistEngine::new(scene.clone(), *config);
    let per_rank_hint = match config.batch {
        BatchMode::Fixed(n) => n,
        // Adaptive ranks size themselves from their lockstep controllers.
        BatchMode::Adaptive(params) => params.initial,
    };
    loop {
        match config.stop {
            StopRule::Photons(n) => {
                if engine.main_emitted() >= n {
                    break;
                }
            }
            StopRule::VirtualSeconds(t) => {
                if engine.virtual_clock() >= t {
                    break;
                }
            }
        }
        engine.step_round(per_rank_hint);
    }

    // Wind the world down; merge every patch's tree from its unique owner.
    let npolys = scene.polygon_count();
    let (summary, finals) = engine.finish();
    let mut trees: Vec<Option<BinTree>> = (0..npolys).map(|_| None).collect();
    let mut per_rank_tallies = Vec::with_capacity(config.nranks);
    let mut batch_history = Vec::new();
    let mut virtual_elapsed = 0.0f64;
    for (rank, r) in finals.into_iter().enumerate() {
        per_rank_tallies.push(r.processed);
        virtual_elapsed = virtual_elapsed.max(r.final_clock);
        for (pid, tree) in r.owned_trees {
            debug_assert!(trees[pid as usize].is_none(), "patch {pid} owned twice");
            trees[pid as usize] = Some(tree);
        }
        if rank == 0 {
            batch_history = r.batch_history;
        }
    }
    let forest = BinForest::from_trees(
        trees
            .into_iter()
            .map(|t| t.expect("all patches owned"))
            .collect(),
    );
    let answer = Answer::from_forest(&forest, summary.stats.emitted);
    DistRunResult {
        stats: summary.stats,
        speed: summary.speed,
        per_rank_tallies,
        batch_history,
        answer,
        virtual_elapsed,
        ownership: summary.ownership,
        bytes_forwarded: summary.bytes_forwarded,
    }
}

/// Synchronizes every rank's virtual clock to the global maximum and
/// returns it.
pub(crate) fn sync_clock(comm: &mut Comm) -> f64 {
    let t = comm.allreduce_max_f64(comm.clock());
    let dt = t - comm.clock();
    if dt > 0.0 {
        comm.advance(dt);
    }
    comm.clock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_scenes::cornell_box;

    fn base_config() -> DistConfig {
        DistConfig {
            seed: 424242,
            nranks: 4,
            platform: Platform::power_onyx(),
            balance: BalanceMode::BinPacking { pilot_photons: 500 },
            batch: BatchMode::Fixed(250),
            stop: StopRule::Photons(6000),
            ..Default::default()
        }
    }

    #[test]
    fn photons_conserved_across_ranks() {
        let scene = cornell_box();
        let r = run_distributed(&scene, &base_config());
        // emitted = pilot + ceil-to-batch main photons.
        assert!(r.stats.emitted >= 6500, "{:?}", r.stats);
        assert!(r.stats.is_conserved(), "{:?}", r.stats);
    }

    #[test]
    fn merged_forest_has_every_tally_exactly_once() {
        // Every interaction — pilot and main, local and forwarded — lands
        // in exactly one owner tree: total tallies = emissions +
        // reflections, both of which include the pilot via rank 0's stats.
        let scene = cornell_box();
        let r = run_distributed(&scene, &base_config());
        let total_tallies: u64 = (0..r.answer.patch_count() as u32)
            .map(|pid| r.answer.tree(pid).tallies())
            .sum();
        assert_eq!(total_tallies, r.stats.emitted + r.stats.reflections);
    }

    #[test]
    fn single_rank_naive_matches_serial_exactly() {
        let scene = cornell_box();
        let config = DistConfig {
            seed: 777,
            nranks: 1,
            balance: BalanceMode::Naive,
            batch: BatchMode::Fixed(1000),
            stop: StopRule::Photons(5000),
            ..Default::default()
        };
        let dist = run_distributed(&scene, &config);
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 777,
                ..Default::default()
            },
        );
        serial.run_photons(5000);
        assert_eq!(dist.stats.emitted, serial.stats().emitted);
        assert_eq!(dist.stats.reflections, serial.stats().reflections);
        assert_eq!(dist.stats.absorbed, serial.stats().absorbed);
        let dist_tallies: u64 = (0..dist.answer.patch_count() as u32)
            .map(|p| dist.answer.tree(p).tallies())
            .sum();
        assert_eq!(dist_tallies, serial.forest().total_tallies());
        assert_eq!(
            dist.answer.total_leaf_bins(),
            serial.forest().total_leaf_bins()
        );
    }

    #[test]
    fn bin_packing_balances_processed_tallies() {
        let scene = cornell_box();
        let naive = run_distributed(
            &scene,
            &DistConfig {
                balance: BalanceMode::Naive,
                ..base_config()
            },
        );
        let packed = run_distributed(&scene, &base_config());
        let imbalance = |v: &[u64]| {
            let total: u64 = v.iter().sum();
            let mean = total as f64 / v.len() as f64;
            v.iter().copied().max().unwrap() as f64 / mean
        };
        let ni = imbalance(&naive.per_rank_tallies);
        let bi = imbalance(&packed.per_rank_tallies);
        assert!(
            bi < ni,
            "bin packing {bi:.3} not better than naive {ni:.3}: {:?} vs {:?}",
            packed.per_rank_tallies,
            naive.per_rank_tallies
        );
    }

    #[test]
    fn adaptive_batches_grow_from_500() {
        let scene = cornell_box();
        let config = DistConfig {
            batch: BatchMode::Adaptive(AdaptiveBatch::default()),
            stop: StopRule::Photons(30_000),
            ..base_config()
        };
        let r = run_distributed(&scene, &config);
        assert_eq!(r.batch_history[0], 500);
        assert!(r.batch_history.len() > 2);
        assert!(
            r.batch_history.iter().any(|&b| b > 500),
            "batch never grew: {:?}",
            r.batch_history
        );
    }

    #[test]
    fn virtual_time_budget_stops_the_run() {
        let scene = cornell_box();
        let config = DistConfig {
            stop: StopRule::VirtualSeconds(3.0),
            batch: BatchMode::Fixed(200),
            ..base_config()
        };
        let r = run_distributed(&scene, &config);
        assert!(r.virtual_elapsed >= 3.0);
        // One batch of overshoot at most.
        assert!(r.virtual_elapsed < 10.0, "{}", r.virtual_elapsed);
        assert!(r.stats.emitted > 0);
    }

    #[test]
    fn more_ranks_mean_more_photons_per_virtual_second() {
        let scene = cornell_box();
        let rate_of = |nranks: usize| {
            let r = run_distributed(
                &scene,
                &DistConfig {
                    nranks,
                    stop: StopRule::Photons(8000),
                    batch: BatchMode::Fixed(500),
                    ..base_config()
                },
            );
            r.speed.steady_rate()
        };
        let r1 = rate_of(1);
        let r4 = rate_of(4);
        assert!(r4 > 2.0 * r1, "speedup too low: 1 rank {r1}, 4 ranks {r4}");
    }

    #[test]
    fn forwarded_bytes_are_multiple_of_record_size() {
        let scene = cornell_box();
        let r = run_distributed(&scene, &base_config());
        assert!(r.bytes_forwarded > 0);
        assert_eq!(r.bytes_forwarded % record::RECORD_BYTES as u64, 0);
    }

    #[test]
    fn engine_snapshots_refine_mid_solve() {
        use photon_core::SolverEngine;
        let mut e = DistEngine::new(cornell_box(), base_config());
        let r1 = e.step(2000);
        let early = e.snapshot();
        let r2 = e.step(2000);
        let late = e.snapshot();
        assert!(
            r2.elapsed_seconds > r1.elapsed_seconds,
            "virtual time moves"
        );
        assert!(late.emitted() > early.emitted());
        assert!(late.total_leaf_bins() >= early.total_leaf_bins());
        // Snapshot answers account every tally exactly once, mid-solve too.
        let tallies: u64 = (0..late.patch_count() as u32)
            .map(|p| late.tree(p).tallies())
            .sum();
        assert_eq!(tallies, e.stats().emitted + e.stats().reflections);
    }
}
