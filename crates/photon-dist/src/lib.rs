//! Distributed-memory Photon (dissertation ch. 5, Fig 5.3).
//!
//! The geometry is replicated on every rank; the *bin forest* — the large,
//! growing data structure — is distributed by patch. Each rank generates and
//! traces its leapfrogged share of every batch. Tallies for bins the rank
//! owns update locally; the rest are encoded as 32-byte
//! [`record::PhotonRecord`]s and queued per owner. A blocking all-to-all
//! exchange follows every batch; receivers run `DetermineBin` /
//! `UpdateBinCount` / `Split` on their own trees.
//!
//! On top of that loop sit the paper's two control mechanisms:
//! [`balance`] — Best-Fit bin packing of tree ownership from a pilot trace
//! (Table 5.2) — and [`batch`] — the adaptive batch-size controller
//! (Table 5.3). Time is virtual, supplied by [`simmpi`]'s platform models,
//! so the speedup traces of Figs 5.9–5.15 are deterministic.

#![deny(missing_docs)]

pub mod balance;
pub mod batch;
pub mod record;

pub use balance::Ownership;
pub use batch::{AdaptiveBatch, BatchController, BatchMode};
pub use record::PhotonRecord;

use photon_core::generate::PhotonGenerator;
use photon_core::sim::SimStats;
use photon_core::trace::{trace_photon, TallySink, Termination};
use photon_core::{Answer, BinForest, SpeedTrace};
use photon_geom::Scene;
use photon_hist::{BinPoint, SplitConfig};
use photon_math::Rgb;
use photon_rng::Lcg48;
use simmpi::{run_world, Comm, Platform};

/// Ownership assignment strategy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BalanceMode {
    /// Contiguous blocks of patch ids (no light knowledge).
    Naive,
    /// Pilot trace + Best-Fit bin packing (the paper's method).
    BinPacking {
        /// Photons in the redundant pilot phase (the paper's `k`).
        pilot_photons: u64,
    },
}

/// When to stop the main loop.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Stop after at least this many photons (global).
    Photons(u64),
    /// Stop at this much virtual time (the Fig 5.16 "2-minute run").
    VirtualSeconds(f64),
}

/// Configuration of a distributed run.
#[derive(Clone, Copy, Debug)]
pub struct DistConfig {
    /// Seed of the global random stream (leapfrogged across ranks).
    pub seed: u64,
    /// Bin splitting policy.
    pub split: SplitConfig,
    /// Number of ranks ("processors").
    pub nranks: usize,
    /// Virtual-time platform model.
    pub platform: Platform,
    /// Ownership strategy.
    pub balance: BalanceMode,
    /// Batch sizing.
    pub batch: BatchMode,
    /// Stop rule.
    pub stop: StopRule,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            seed: 0x5EED,
            split: SplitConfig::default(),
            nranks: 2,
            platform: Platform::power_onyx(),
            balance: BalanceMode::BinPacking {
                pilot_photons: 1000,
            },
            batch: BatchMode::Fixed(500),
            stop: StopRule::Photons(10_000),
        }
    }
}

/// Result of a distributed run.
pub struct DistRunResult {
    /// Aggregate photon counters (pilot photons included in `emitted`).
    pub stats: SimStats,
    /// Virtual-time speed trace (global rate per batch).
    pub speed: SpeedTrace,
    /// Photon interactions *processed* per rank (local + received) — the
    /// Table 5.2 metric.
    pub per_rank_tallies: Vec<u64>,
    /// Batch sizes used, in order (Table 5.3).
    pub batch_history: Vec<u64>,
    /// The merged answer (owner trees only, each patch exactly once).
    pub answer: Answer,
    /// Final synchronized virtual clock.
    pub virtual_elapsed: f64,
    /// The ownership map used.
    pub ownership: Ownership,
    /// Bytes shipped through the all-to-all, total.
    pub bytes_forwarded: u64,
}

/// The tally sink of Fig 5.3's inner loop: local tallies update the rank's
/// own trees; foreign tallies are queued for their owner.
struct DistSink<'a> {
    ownership: &'a Ownership,
    my_rank: usize,
    forest: &'a mut BinForest,
    queues: &'a mut [Vec<u8>],
    processed: &'a mut u64,
}

impl TallySink for DistSink<'_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        let owner = self.ownership.owner_of(patch_id);
        if owner == self.my_rank {
            self.forest.tally(patch_id, point, energy);
            *self.processed += 1;
        } else {
            PhotonRecord {
                patch_id,
                point: *point,
                energy,
            }
            .encode_into(&mut self.queues[owner]);
        }
    }
}

/// What each rank hands back at the end.
struct RankResult {
    stats: SimStats,
    owned_trees: Vec<(u32, photon_hist::BinTree)>,
    processed: u64,
    speed: SpeedTrace,
    batch_history: Vec<u64>,
    final_clock: f64,
    bytes_forwarded: u64,
    ownership: Ownership,
}

/// Runs the full distributed simulation; blocks until all ranks finish.
pub fn run_distributed(scene: &Scene, config: &DistConfig) -> DistRunResult {
    assert!(config.nranks >= 1);
    let npolys = scene.polygon_count();
    let pilot_photons = match config.balance {
        BalanceMode::BinPacking { pilot_photons } => pilot_photons,
        BalanceMode::Naive => 0,
    };

    let rank_results: Vec<RankResult> = run_world(config.nranks, config.platform, |comm| {
        run_rank(scene, config, comm)
    });

    // Merge: every patch's tree comes from its unique owner.
    let mut trees: Vec<Option<photon_hist::BinTree>> = (0..npolys).map(|_| None).collect();
    let mut stats = SimStats::default();
    let mut per_rank_tallies = Vec::with_capacity(config.nranks);
    let mut bytes_forwarded = 0;
    let mut speed = SpeedTrace::new();
    let mut batch_history = Vec::new();
    let mut virtual_elapsed = 0.0f64;
    let mut ownership = None;
    for (rank, r) in rank_results.into_iter().enumerate() {
        stats.emitted += r.stats.emitted;
        stats.absorbed += r.stats.absorbed;
        stats.escaped += r.stats.escaped;
        stats.capped += r.stats.capped;
        stats.reflections += r.stats.reflections;
        per_rank_tallies.push(r.processed);
        bytes_forwarded += r.bytes_forwarded;
        virtual_elapsed = virtual_elapsed.max(r.final_clock);
        for (pid, tree) in r.owned_trees {
            debug_assert!(trees[pid as usize].is_none(), "patch {pid} owned twice");
            trees[pid as usize] = Some(tree);
        }
        if rank == 0 {
            speed = r.speed;
            batch_history = r.batch_history;
            ownership = Some(r.ownership);
        }
    }
    // Pilot photons were emitted once, globally; rank 0 already accounted
    // for them (every rank traced the same ones redundantly; their tallies
    // exist exactly once in the merged forest because only owners merge).
    let _ = pilot_photons;
    let forest = BinForest::from_trees(
        trees
            .into_iter()
            .map(|t| t.expect("all patches owned"))
            .collect(),
    );
    let answer = Answer::from_forest(&forest, stats.emitted);
    DistRunResult {
        stats,
        speed,
        per_rank_tallies,
        batch_history,
        answer,
        virtual_elapsed,
        ownership: ownership.expect("at least one rank"),
        bytes_forwarded,
    }
}

/// The per-rank SPMD body.
fn run_rank(scene: &Scene, config: &DistConfig, comm: &mut Comm) -> RankResult {
    let npolys = scene.polygon_count();
    let nranks = comm.size();
    let my_rank = comm.rank();
    let generator = PhotonGenerator::new(scene);
    let mut stats = SimStats::default();

    // ---- Load-balancing phase (redundant pilot trace; ch. 5) ----
    let mut forest = BinForest::new(npolys, config.split);
    let ownership = match config.balance {
        BalanceMode::Naive => balance::naive(npolys, nranks),
        BalanceMode::BinPacking { pilot_photons } => {
            // Every rank traces the *same* photons with the same seed,
            // producing the same forest and hence the same packing. Only
            // rank 0 reports the pilot in its stats — the photons are
            // global, not per rank.
            let mut pilot_rng = Lcg48::new(config.seed ^ 0x9E3779B97F4A7C15);
            let mut segments = 0u64;
            for _ in 0..pilot_photons {
                let out = trace_photon(scene, &generator, &mut pilot_rng, &mut forest);
                segments += 1 + out.bounces as u64;
                if my_rank == 0 {
                    stats.emitted += 1;
                    stats.reflections += out.bounces as u64;
                    match out.termination {
                        Termination::Absorbed => stats.absorbed += 1,
                        Termination::Escaped => stats.escaped += 1,
                        Termination::BounceCapped => stats.capped += 1,
                    }
                }
            }
            comm.charge_compute(segments, npolys);
            let counts: Vec<u64> = forest.iter().map(|(_, t)| t.tallies()).collect();
            balance::best_fit(&counts, nranks)
        }
    };
    comm.barrier(); // end of the balancing phase; clocks sync

    // ---- Main loop (Fig 5.3) ----
    let mut rng = Lcg48::new(config.seed).leapfrog(my_rank, nranks);
    let mut processed = 0u64;
    let mut bytes_forwarded = 0u64;
    let mut speed = SpeedTrace::new();
    let mut controller = match config.batch {
        BatchMode::Adaptive(params) => Some(BatchController::new(params)),
        BatchMode::Fixed(_) => None,
    };
    let mut total_done = 0u64;
    let mut t_batch_start = sync_clock(comm);
    loop {
        match config.stop {
            StopRule::Photons(n) => {
                if total_done >= n {
                    break;
                }
            }
            StopRule::VirtualSeconds(t) => {
                if t_batch_start >= t {
                    break;
                }
            }
        }
        let per_rank = match (&controller, config.batch) {
            (Some(c), _) => c.size(),
            (None, BatchMode::Fixed(n)) => n,
            _ => unreachable!(),
        };

        // Trace this rank's share.
        let mut queues: Vec<Vec<u8>> = (0..nranks).map(|_| Vec::new()).collect();
        let mut segments = 0u64;
        {
            let mut sink = DistSink {
                ownership: &ownership,
                my_rank,
                forest: &mut forest,
                queues: &mut queues,
                processed: &mut processed,
            };
            for _ in 0..per_rank {
                let out = trace_photon(scene, &generator, &mut rng, &mut sink);
                stats.emitted += 1;
                stats.reflections += out.bounces as u64;
                match out.termination {
                    Termination::Absorbed => stats.absorbed += 1,
                    Termination::Escaped => stats.escaped += 1,
                    Termination::BounceCapped => stats.capped += 1,
                }
                segments += 1 + out.bounces as u64;
            }
        }
        comm.charge_compute(segments, npolys);
        // Fixed per-batch bookkeeping (queue setup, flush, rate sampling):
        // the cost the adaptive controller amortizes by growing batches.
        comm.advance(comm.platform().batch_overhead_s);
        bytes_forwarded += queues.iter().map(|q| q.len() as u64).sum::<u64>();

        // All-to-all exchange; receivers process foreign tallies.
        let incoming = comm.alltoallv(queues);
        let mut received = 0u64;
        for (src, buf) in incoming.iter().enumerate() {
            if src == my_rank {
                continue;
            }
            for rec in PhotonRecord::decode_all(buf) {
                debug_assert_eq!(ownership.owner_of(rec.patch_id), my_rank);
                forest.tally(rec.patch_id, &rec.point, rec.energy);
                received += 1;
            }
        }
        processed += received;
        comm.advance(comm.platform().tally_cost(received));

        // Batch accounting on the synchronized clock: identical on every
        // rank, so the adaptive controller stays in lockstep with zero
        // extra coordination.
        let t_batch_end = sync_clock(comm);
        let global_batch = per_rank * nranks as u64;
        total_done += global_batch;
        let batch_secs = (t_batch_end - t_batch_start).max(1e-12);
        let rate = global_batch as f64 / batch_secs;
        if my_rank == 0 {
            speed.push_batch(t_batch_end, global_batch, batch_secs);
        }
        if let Some(c) = controller.as_mut() {
            c.observe(rate);
        }
        t_batch_start = t_batch_end;
    }

    // Hand back the trees this rank owns.
    let final_clock = comm.clock();
    let all_trees = forest.into_trees();
    let mut owned_trees = Vec::new();
    for (pid, tree) in all_trees.into_iter().enumerate() {
        if ownership.owner_of(pid as u32) == my_rank {
            owned_trees.push((pid as u32, tree));
        }
    }
    RankResult {
        stats,
        owned_trees,
        processed,
        speed,
        batch_history: controller.map(|c| c.history().to_vec()).unwrap_or_default(),
        final_clock,
        bytes_forwarded,
        ownership,
    }
}

/// Synchronizes every rank's virtual clock to the global maximum and
/// returns it.
fn sync_clock(comm: &mut Comm) -> f64 {
    let t = comm.allreduce_max_f64(comm.clock());
    let dt = t - comm.clock();
    if dt > 0.0 {
        comm.advance(dt);
    }
    comm.clock()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_scenes::cornell_box;

    fn base_config() -> DistConfig {
        DistConfig {
            seed: 424242,
            nranks: 4,
            platform: Platform::power_onyx(),
            balance: BalanceMode::BinPacking { pilot_photons: 500 },
            batch: BatchMode::Fixed(250),
            stop: StopRule::Photons(6000),
            ..Default::default()
        }
    }

    #[test]
    fn photons_conserved_across_ranks() {
        let scene = cornell_box();
        let r = run_distributed(&scene, &base_config());
        // emitted = pilot + ceil-to-batch main photons.
        assert!(r.stats.emitted >= 6500, "{:?}", r.stats);
        assert!(r.stats.is_conserved(), "{:?}", r.stats);
    }

    #[test]
    fn merged_forest_has_every_tally_exactly_once() {
        // Every interaction — pilot and main, local and forwarded — lands
        // in exactly one owner tree: total tallies = emissions +
        // reflections, both of which include the pilot via rank 0's stats.
        let scene = cornell_box();
        let r = run_distributed(&scene, &base_config());
        let total_tallies: u64 = (0..r.answer.patch_count() as u32)
            .map(|pid| r.answer.tree(pid).tallies())
            .sum();
        assert_eq!(total_tallies, r.stats.emitted + r.stats.reflections);
    }

    #[test]
    fn single_rank_naive_matches_serial_exactly() {
        let scene = cornell_box();
        let config = DistConfig {
            seed: 777,
            nranks: 1,
            balance: BalanceMode::Naive,
            batch: BatchMode::Fixed(1000),
            stop: StopRule::Photons(5000),
            ..Default::default()
        };
        let dist = run_distributed(&scene, &config);
        let mut serial = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 777,
                ..Default::default()
            },
        );
        serial.run_photons(5000);
        assert_eq!(dist.stats.emitted, serial.stats().emitted);
        assert_eq!(dist.stats.reflections, serial.stats().reflections);
        assert_eq!(dist.stats.absorbed, serial.stats().absorbed);
        let dist_tallies: u64 = (0..dist.answer.patch_count() as u32)
            .map(|p| dist.answer.tree(p).tallies())
            .sum();
        assert_eq!(dist_tallies, serial.forest().total_tallies());
        assert_eq!(
            dist.answer.total_leaf_bins(),
            serial.forest().total_leaf_bins()
        );
    }

    #[test]
    fn bin_packing_balances_processed_tallies() {
        let scene = cornell_box();
        let naive = run_distributed(
            &scene,
            &DistConfig {
                balance: BalanceMode::Naive,
                ..base_config()
            },
        );
        let packed = run_distributed(&scene, &base_config());
        let imbalance = |v: &[u64]| {
            let total: u64 = v.iter().sum();
            let mean = total as f64 / v.len() as f64;
            v.iter().copied().max().unwrap() as f64 / mean
        };
        let ni = imbalance(&naive.per_rank_tallies);
        let bi = imbalance(&packed.per_rank_tallies);
        assert!(
            bi < ni,
            "bin packing {bi:.3} not better than naive {ni:.3}: {:?} vs {:?}",
            packed.per_rank_tallies,
            naive.per_rank_tallies
        );
    }

    #[test]
    fn adaptive_batches_grow_from_500() {
        let scene = cornell_box();
        let config = DistConfig {
            batch: BatchMode::Adaptive(AdaptiveBatch::default()),
            stop: StopRule::Photons(30_000),
            ..base_config()
        };
        let r = run_distributed(&scene, &config);
        assert_eq!(r.batch_history[0], 500);
        assert!(r.batch_history.len() > 2);
        assert!(
            r.batch_history.iter().any(|&b| b > 500),
            "batch never grew: {:?}",
            r.batch_history
        );
    }

    #[test]
    fn virtual_time_budget_stops_the_run() {
        let scene = cornell_box();
        let config = DistConfig {
            stop: StopRule::VirtualSeconds(3.0),
            batch: BatchMode::Fixed(200),
            ..base_config()
        };
        let r = run_distributed(&scene, &config);
        assert!(r.virtual_elapsed >= 3.0);
        // One batch of overshoot at most.
        assert!(r.virtual_elapsed < 10.0, "{}", r.virtual_elapsed);
        assert!(r.stats.emitted > 0);
    }

    #[test]
    fn more_ranks_mean_more_photons_per_virtual_second() {
        let scene = cornell_box();
        let rate_of = |nranks: usize| {
            let r = run_distributed(
                &scene,
                &DistConfig {
                    nranks,
                    stop: StopRule::Photons(8000),
                    batch: BatchMode::Fixed(500),
                    ..base_config()
                },
            );
            r.speed.steady_rate()
        };
        let r1 = rate_of(1);
        let r4 = rate_of(4);
        assert!(r4 > 2.0 * r1, "speedup too low: 1 rank {r1}, 4 ranks {r4}");
    }

    #[test]
    fn forwarded_bytes_are_multiple_of_record_size() {
        let scene = cornell_box();
        let r = run_distributed(&scene, &base_config());
        assert!(r.bytes_forwarded > 0);
        assert_eq!(r.bytes_forwarded % record::RECORD_BYTES as u64, 0);
    }
}
