//! Load balancing: assigning bin-tree ownership to ranks (ch. 5, Table 5.2).
//!
//! "Initially all processors are assigned ownership of the entire geometry.
//! During this load balancing phase, k photons are generated and traced
//! through the scene … each processor goes through the photons in the same
//! order, thus producing the same bin forest. At this point, we are able to
//! use the photon counts for each bin to determine an appropriate load
//! balance. Finding an optimal load balance is then reduced to the bin
//! packing problem … a good approximation can be reached using the Best-Fit
//! algorithm."
//!
//! [`naive`] assigns contiguous blocks of patch indices (what a scheduler
//! that knows nothing about the light distribution would do); [`best_fit`]
//! packs patches onto the least-loaded rank in decreasing order of observed
//! pilot-photon counts.

/// Patch-to-rank ownership map.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ownership {
    owner: Vec<u32>,
    nranks: usize,
}

impl Ownership {
    /// Owner rank of a patch.
    #[inline]
    pub fn owner_of(&self, patch_id: u32) -> usize {
        self.owner[patch_id as usize] as usize
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of patches.
    pub fn patch_count(&self) -> usize {
        self.owner.len()
    }

    /// Patch ids owned by `rank`.
    pub fn patches_of(&self, rank: usize) -> Vec<u32> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &o)| o as usize == rank)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Predicted per-rank load under a per-patch weight vector.
    pub fn loads(&self, weights: &[u64]) -> Vec<u64> {
        assert_eq!(weights.len(), self.owner.len());
        let mut loads = vec![0u64; self.nranks];
        for (i, &o) in self.owner.iter().enumerate() {
            loads[o as usize] += weights[i];
        }
        loads
    }

    /// Max/mean load imbalance under `weights` (1.0 = perfectly balanced).
    pub fn imbalance(&self, weights: &[u64]) -> f64 {
        let loads = self.loads(weights);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.nranks as f64;
        loads.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

/// Naive balance: contiguous blocks of patch indices, one block per rank.
pub fn naive(patch_count: usize, nranks: usize) -> Ownership {
    assert!(nranks >= 1);
    let per = patch_count.div_ceil(nranks);
    let owner = (0..patch_count)
        .map(|i| ((i / per.max(1)).min(nranks - 1)) as u32)
        .collect();
    Ownership { owner, nranks }
}

/// Best-Fit-Decreasing bin packing on observed pilot-photon counts:
/// heaviest patch first, each to the currently least-loaded rank.
pub fn best_fit(pilot_counts: &[u64], nranks: usize) -> Ownership {
    assert!(nranks >= 1);
    let mut order: Vec<usize> = (0..pilot_counts.len()).collect();
    // Decreasing by count; ties broken by index for determinism across
    // ranks (every rank computes the identical assignment).
    order.sort_by(|&a, &b| pilot_counts[b].cmp(&pilot_counts[a]).then(a.cmp(&b)));
    let mut owner = vec![0u32; pilot_counts.len()];
    let mut loads = vec![0u64; nranks];
    for i in order {
        let lightest = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)))
            .map(|(r, _)| r)
            .unwrap();
        owner[i] = lightest as u32;
        loads[lightest] += pilot_counts[i].max(1); // empty patches still cost a tree
    }
    Ownership { owner, nranks }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_blocks_are_contiguous_and_cover() {
        let o = naive(10, 3);
        assert_eq!(o.patch_count(), 10);
        let owners: Vec<usize> = (0..10).map(|i| o.owner_of(i)).collect();
        // Non-decreasing (contiguous blocks) and within range.
        assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        assert!(owners.iter().all(|&r| r < 3));
        // All ranks own something.
        for r in 0..3 {
            assert!(!o.patches_of(r).is_empty(), "rank {r} empty");
        }
    }

    #[test]
    fn best_fit_beats_naive_on_skewed_weights() {
        // One hot patch per block position — the paper's spotlight-on-the-
        // floor scenario.
        let weights: Vec<u64> = vec![47_900, 100, 50, 35_600, 80, 20, 25_600, 40];
        let nranks = 4;
        let naive_o = naive(weights.len(), nranks);
        let packed = best_fit(&weights, nranks);
        let ni = naive_o.imbalance(&weights);
        let bi = packed.imbalance(&weights);
        assert!(bi < ni, "best-fit {bi} not better than naive {ni}");
        // The indivisible 47.9k patch bounds achievable balance at
        // max/mean = 47900/27347 ≈ 1.752; best-fit must reach that bound.
        assert!(bi < 1.76, "best-fit imbalance too high: {bi}");
    }

    #[test]
    fn best_fit_never_worse_than_naive() {
        // Property-style sweep over deterministic pseudo-random weights.
        use photon_rng::{Lcg48, PhotonRng};
        let mut rng = Lcg48::new(77);
        for trial in 0..50 {
            let n = 4 + rng.index(60);
            let nranks = 1 + rng.index(8);
            let weights: Vec<u64> = (0..n).map(|_| (rng.next_f64() * 10_000.0) as u64).collect();
            let ni = naive(n, nranks).imbalance(&weights);
            let bi = best_fit(&weights, nranks).imbalance(&weights);
            assert!(
                bi <= ni + 1e-9,
                "trial {trial}: best-fit {bi} worse than naive {ni} (n={n}, ranks={nranks})"
            );
        }
    }

    #[test]
    fn single_rank_owns_everything() {
        let o = best_fit(&[5, 3, 9], 1);
        assert_eq!(o.patches_of(0).len(), 3);
        assert_eq!(o.imbalance(&[5, 3, 9]), 1.0);
    }

    #[test]
    fn loads_sum_to_total() {
        let weights = [10u64, 20, 30, 40, 50];
        let o = best_fit(&weights, 2);
        let loads = o.loads(&weights);
        assert_eq!(loads.iter().sum::<u64>(), 150);
    }

    #[test]
    fn determinism_of_best_fit() {
        let w = [7u64, 7, 7, 7, 100, 3];
        assert_eq!(best_fit(&w, 3), best_fit(&w, 3));
    }
}
