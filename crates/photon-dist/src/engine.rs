//! The resumable distributed solver engine.
//!
//! [`DistEngine`] wraps the Fig 5.3 message-passing world behind
//! [`photon_core::SolverEngine`]: the ranks live on their own threads
//! inside a background [`run_world`], hold their forest shards and virtual
//! clocks between batches, and advance only when the engine broadcasts a
//! command. Each [`step`](photon_core::SolverEngine::step) is one
//! trace→exchange→tally round; [`snapshot`](photon_core::SolverEngine::snapshot)
//! asks every rank for a clone of the trees it owns and merges them into an
//! [`Answer`] — so a progressive solve can publish refining answers while
//! the world keeps running. All reported times are **virtual** seconds from
//! the platform model, exactly as in the one-shot runs.
//!
//! Photon assignment leapfrogs ranks over global photon indices (rank `r`
//! of `R` takes every `R`-th index of each batch window), and each photon
//! draws from its own block substream ([`photon_core::photon_stream`]) — so
//! a 1-rank world traces exactly the serial simulator's photons.

use crate::balance::{self, Ownership};
use crate::batch::{BatchController, BatchMode};
use crate::record::PhotonRecord;
use crate::{DistConfig, DistSink};
use photon_core::generate::PhotonGenerator;
use photon_core::sim::SimStats;
use photon_core::trace::trace_photon;
use photon_core::{
    photon_stream, Answer, BatchReport, BinForest, EngineCheckpoint, ForestFootprint, RestoreError,
    SolverEngine, SpeedTrace,
};
use photon_geom::Scene;
use photon_hist::BinTree;
use photon_hist::SplitConfig;
use photon_rng::Lcg48;
use simmpi::{run_world, Comm};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Commands broadcast from the engine to every rank, processed in order.
enum RankCmd {
    /// Run one trace→exchange→tally round. Non-adaptive ranks emit
    /// `per_rank_hint` photons each; adaptive ranks use their controller.
    Step { per_rank_hint: u64 },
    /// Clone and send back the trees this rank owns.
    Snapshot,
    /// Overwrite the rank's owned trees from a checkpointed forest and
    /// move its photon cursor to `main_start` (the restore path; trees the
    /// rank does not own keep their deterministic pilot-phase state).
    Restore {
        /// The checkpoint's full forest, shared across ranks.
        trees: Arc<Vec<photon_hist::BinTree>>,
        /// Next main-loop photon index to trace.
        main_start: u64,
    },
    /// Leave the command loop and return the rank's final state.
    Finish,
}

/// Replies flowing back on the shared engine channel, tagged by rank.
enum RankReply {
    /// Sent once after the load-balancing phase.
    Ready {
        /// Pilot-phase counters (nonzero only on rank 0 — pilot photons
        /// are global, not per rank).
        stats: SimStats,
        /// Virtual clock after the balancing barrier.
        clock: f64,
        /// The ownership map (identical on every rank).
        ownership: Ownership,
    },
    /// One batch finished.
    Stepped {
        /// Counters for this batch on this rank.
        stats: SimStats,
        /// Synchronized virtual clock after the batch.
        clock: f64,
        /// Virtual seconds the batch took (identical on every rank).
        batch_seconds: f64,
        /// Bytes this rank queued through the all-to-all this batch.
        bytes: u64,
        /// Leaf bins across this rank's owned trees, absolute.
        leaf_bins_owned: u64,
        /// Arena footprint of this rank's owned trees (each patch counted
        /// on exactly one rank, so the engine's sum covers the answer).
        footprint_owned: ForestFootprint,
    },
    /// Snapshot payload: the rank's owned trees.
    Trees(Vec<(u32, BinTree)>),
    /// The rank adopted a restored checkpoint.
    Restored,
}

/// What a rank returns when the world winds down.
pub(crate) struct RankFinal {
    pub(crate) processed: u64,
    pub(crate) owned_trees: Vec<(u32, BinTree)>,
    pub(crate) batch_history: Vec<u64>,
    pub(crate) final_clock: f64,
}

/// The distributed engine: a persistent rank world driven batch-by-batch.
pub struct DistEngine {
    nranks: usize,
    npolys: usize,
    cmd_txs: Vec<Sender<RankCmd>>,
    reply_rx: Receiver<(usize, RankReply)>,
    world: Option<JoinHandle<Vec<RankFinal>>>,
    ownership: Ownership,
    seed: u64,
    split: SplitConfig,
    stats: SimStats,
    speed: SpeedTrace,
    main_emitted: u64,
    clock: f64,
    bytes_forwarded: u64,
}

impl DistEngine {
    /// Boots an `config.nranks`-rank world over `scene`, runs the
    /// load-balancing phase, and blocks until every rank is ready.
    pub fn new(scene: Scene, config: DistConfig) -> Self {
        assert!(config.nranks >= 1);
        let nranks = config.nranks;
        let npolys = scene.polygon_count();
        let (reply_tx, reply_rx) = channel::<(usize, RankReply)>();
        let mut cmd_txs = Vec::with_capacity(nranks);
        let mut endpoints = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = channel::<RankCmd>();
            cmd_txs.push(tx);
            endpoints.push(Some((rx, reply_tx.clone())));
        }
        let world = std::thread::Builder::new()
            .name("photon-dist-world".into())
            .spawn(move || {
                let endpoints = Mutex::new(endpoints);
                run_world(nranks, config.platform, |comm| {
                    let (cmd_rx, reply_tx) = endpoints.lock().unwrap()[comm.rank()]
                        .take()
                        .expect("endpoint taken once");
                    rank_loop(&scene, &config, comm, cmd_rx, reply_tx)
                })
            })
            .expect("spawn world");

        let mut stats = SimStats::default();
        let mut clock = 0.0f64;
        let mut ownership = None;
        for _ in 0..nranks {
            match reply_rx.recv().expect("world alive") {
                (
                    rank,
                    RankReply::Ready {
                        stats: s,
                        clock: c,
                        ownership: o,
                    },
                ) => {
                    stats.merge(&s);
                    clock = clock.max(c);
                    if rank == 0 {
                        ownership = Some(o);
                    }
                }
                _ => unreachable!("first reply is always Ready"),
            }
        }
        DistEngine {
            nranks,
            npolys,
            cmd_txs,
            reply_rx,
            world: Some(world),
            ownership: ownership.expect("rank 0 reported"),
            seed: config.seed,
            split: config.split,
            stats,
            speed: SpeedTrace::new(),
            main_emitted: 0,
            clock,
            bytes_forwarded: 0,
        }
    }

    /// Main-loop photons emitted so far (excludes the pilot phase).
    pub fn main_emitted(&self) -> u64 {
        self.main_emitted
    }

    /// Synchronized virtual clock, seconds.
    pub fn virtual_clock(&self) -> f64 {
        self.clock
    }

    /// The ownership map in force.
    pub fn ownership(&self) -> &Ownership {
        &self.ownership
    }

    /// Virtual-time speed trace, one sample per step.
    pub fn speed_trace(&self) -> &SpeedTrace {
        &self.speed
    }

    /// Bytes shipped through the all-to-all so far.
    pub fn bytes_forwarded(&self) -> u64 {
        self.bytes_forwarded
    }

    /// Asks every rank for a clone of its owned trees and merges them into
    /// one forest (each patch exactly once).
    fn collect_forest(&self) -> BinForest {
        self.broadcast(|| RankCmd::Snapshot);
        let mut trees: Vec<Option<BinTree>> = (0..self.npolys).map(|_| None).collect();
        for _ in 0..self.nranks {
            match self.reply_rx.recv().expect("world alive") {
                (_, RankReply::Trees(owned)) => {
                    for (pid, tree) in owned {
                        debug_assert!(trees[pid as usize].is_none(), "patch {pid} owned twice");
                        trees[pid as usize] = Some(tree);
                    }
                }
                _ => unreachable!("only Trees replies outstanding"),
            }
        }
        BinForest::from_trees(
            trees
                .into_iter()
                .map(|t| t.expect("all patches owned"))
                .collect(),
        )
    }

    fn broadcast(&self, make: impl Fn() -> RankCmd) {
        for tx in &self.cmd_txs {
            tx.send(make()).expect("rank alive");
        }
    }

    /// One trace→exchange→tally round with `per_rank_hint` photons per
    /// non-adaptive rank. Returns the batch report (virtual time).
    pub fn step_round(&mut self, per_rank_hint: u64) -> BatchReport {
        self.broadcast(|| RankCmd::Step { per_rank_hint });
        let mut batch_photons = 0;
        let mut batch_seconds = 0.0f64;
        let mut leaf_bins = 0;
        let mut footprint = ForestFootprint::default();
        for _ in 0..self.nranks {
            match self.reply_rx.recv().expect("world alive") {
                (
                    rank,
                    RankReply::Stepped {
                        stats,
                        clock,
                        batch_seconds: secs,
                        bytes,
                        leaf_bins_owned,
                        footprint_owned,
                    },
                ) => {
                    self.stats.merge(&stats);
                    batch_photons += stats.emitted;
                    self.clock = self.clock.max(clock);
                    self.bytes_forwarded += bytes;
                    leaf_bins += leaf_bins_owned;
                    footprint.merge(&footprint_owned);
                    if rank == 0 {
                        batch_seconds = secs;
                    }
                }
                _ => unreachable!("only Stepped replies outstanding"),
            }
        }
        self.main_emitted += batch_photons;
        self.speed
            .push_batch(self.clock, batch_photons, batch_seconds);
        BatchReport {
            batch_photons,
            emitted_total: self.stats.emitted,
            leaf_bins,
            batch_seconds,
            // Ranks tally inline while tracing (locally or via the
            // exchange), so the whole round counts as trace time.
            trace_seconds: batch_seconds,
            apply_seconds: 0.0,
            elapsed_seconds: self.clock,
            stats: self.stats,
            footprint,
        }
    }

    /// Winds the world down and returns every rank's final state.
    pub(crate) fn finish(mut self) -> (DistEngineSummary, Vec<RankFinal>) {
        self.broadcast(|| RankCmd::Finish);
        let world = self.world.take().expect("world not yet joined");
        let finals = world.join().expect("world panicked");
        let summary = DistEngineSummary {
            stats: self.stats,
            speed: std::mem::take(&mut self.speed),
            bytes_forwarded: self.bytes_forwarded,
            ownership: self.ownership.clone(),
        };
        (summary, finals)
    }
}

/// Aggregates the engine hands to [`crate::run_distributed`] at shutdown.
pub(crate) struct DistEngineSummary {
    pub(crate) stats: SimStats,
    pub(crate) speed: SpeedTrace,
    pub(crate) bytes_forwarded: u64,
    pub(crate) ownership: Ownership,
}

impl Drop for DistEngine {
    fn drop(&mut self) {
        // Hanging up the command channels pops every rank out of its loop.
        self.cmd_txs.clear();
        if let Some(world) = self.world.take() {
            let _ = world.join();
        }
    }
}

impl SolverEngine for DistEngine {
    fn step(&mut self, batch: u64) -> BatchReport {
        self.step_round(batch.div_ceil(self.nranks as u64).max(1))
    }

    fn snapshot(&self) -> Answer {
        Answer::from_forest(&self.collect_forest(), self.stats.emitted)
    }

    fn stats(&self) -> SimStats {
        self.stats
    }

    fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint::new(
            self.seed,
            // The stream cursor is the main-loop photon count: pilot-phase
            // photons (counted in `stats`) draw from a separate stream and
            // are regenerated deterministically when a world boots.
            self.main_emitted,
            self.stats,
            self.split,
            self.collect_forest().into_trees(),
        )
    }

    fn restore(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), RestoreError> {
        checkpoint.compatible_with(self.npolys, self.seed, self.split)?;
        let trees = Arc::new(checkpoint.forest().into_trees());
        let main_start = checkpoint.cursor();
        self.broadcast(|| RankCmd::Restore {
            trees: Arc::clone(&trees),
            main_start,
        });
        for _ in 0..self.nranks {
            match self.reply_rx.recv().expect("world alive") {
                (_, RankReply::Restored) => {}
                _ => unreachable!("only Restored replies outstanding"),
            }
        }
        self.stats = checkpoint.stats();
        self.main_emitted = main_start;
        // Rates after a resume describe the resumed solve only (the
        // virtual clock itself stays synchronized with the rank world).
        self.speed = SpeedTrace::new();
        Ok(())
    }

    fn backend(&self) -> &'static str {
        "distributed"
    }

    fn virtual_time(&self) -> bool {
        true
    }
}

/// The per-rank SPMD body: balancing phase, then the command loop.
fn rank_loop(
    scene: &Scene,
    config: &DistConfig,
    comm: &mut Comm,
    cmd_rx: Receiver<RankCmd>,
    reply_tx: Sender<(usize, RankReply)>,
) -> RankFinal {
    let npolys = scene.polygon_count();
    let nranks = comm.size();
    let my_rank = comm.rank();
    let generator = PhotonGenerator::new(scene);
    let mut pilot_stats = SimStats::default();

    // ---- Load-balancing phase (redundant pilot trace; ch. 5) ----
    let mut forest = BinForest::new(npolys, config.split);
    let ownership = match config.balance {
        crate::BalanceMode::Naive => balance::naive(npolys, nranks),
        crate::BalanceMode::BinPacking { pilot_photons } => {
            // Every rank traces the *same* photons with the same seed,
            // producing the same forest and hence the same packing. Only
            // rank 0 reports the pilot in its stats — the photons are
            // global, not per rank.
            let mut pilot_rng = Lcg48::new(config.seed ^ 0x9E3779B97F4A7C15);
            let mut segments = 0u64;
            for _ in 0..pilot_photons {
                let out = trace_photon(scene, &generator, &mut pilot_rng, &mut forest);
                segments += 1 + out.bounces as u64;
                if my_rank == 0 {
                    pilot_stats.record(&out);
                }
            }
            comm.charge_compute(segments, npolys);
            let counts: Vec<u64> = forest.iter().map(|(_, t)| t.tallies()).collect();
            balance::best_fit(&counts, nranks)
        }
    };
    comm.barrier(); // end of the balancing phase; clocks sync
    let owned_patches = ownership.patches_of(my_rank);
    let owned_leaf_bins = |forest: &BinForest| -> u64 {
        owned_patches
            .iter()
            .map(|&p| forest.tree(p).leaf_count() as u64)
            .sum()
    };
    let owned_footprint = |forest: &BinForest| -> ForestFootprint {
        let mut fp = ForestFootprint::default();
        for &p in &owned_patches {
            fp.add_tree(forest.tree(p));
        }
        fp
    };
    let _ = reply_tx.send((
        my_rank,
        RankReply::Ready {
            stats: pilot_stats,
            clock: comm.clock(),
            ownership: ownership.clone(),
        },
    ));

    // ---- Command loop (each Step is one Fig 5.3 round) ----
    let mut processed = 0u64;
    let mut controller = match config.batch {
        BatchMode::Adaptive(params) => Some(BatchController::new(params)),
        BatchMode::Fixed(_) => None,
    };
    let mut main_start = 0u64;
    let mut t_batch_start = crate::sync_clock(comm);
    loop {
        match cmd_rx.recv() {
            Ok(RankCmd::Step { per_rank_hint }) => {
                let per_rank = match &controller {
                    Some(c) => c.size(),
                    None => per_rank_hint.max(1),
                };
                let mut queues: Vec<Vec<u8>> = (0..nranks).map(|_| Vec::new()).collect();
                let mut segments = 0u64;
                let mut stats = SimStats::default();
                {
                    let mut sink = DistSink {
                        ownership: &ownership,
                        my_rank,
                        forest: &mut forest,
                        queues: &mut queues,
                        processed: &mut processed,
                    };
                    // Rank r leapfrogs over the batch window's photon
                    // indices; each photon's deviates come from its own
                    // block substream, so the union over ranks is exactly
                    // the serial photon set.
                    for i in 0..per_rank {
                        let j = main_start + my_rank as u64 + i * nranks as u64;
                        let mut rng = photon_stream(config.seed, j);
                        let out = trace_photon(scene, &generator, &mut rng, &mut sink);
                        stats.record(&out);
                        segments += 1 + out.bounces as u64;
                    }
                }
                comm.charge_compute(segments, npolys);
                // Fixed per-batch bookkeeping (queue setup, flush, rate
                // sampling): the cost the adaptive controller amortizes.
                comm.advance(comm.platform().batch_overhead_s);
                let bytes: u64 = queues.iter().map(|q| q.len() as u64).sum();

                // All-to-all exchange; receivers process foreign tallies.
                let incoming = comm.alltoallv(queues);
                let mut received = 0u64;
                for (src, buf) in incoming.iter().enumerate() {
                    if src == my_rank {
                        continue;
                    }
                    for rec in PhotonRecord::decode_all(buf) {
                        debug_assert_eq!(ownership.owner_of(rec.patch_id), my_rank);
                        forest.tally(rec.patch_id, &rec.point, rec.energy);
                        received += 1;
                    }
                }
                processed += received;
                comm.advance(comm.platform().tally_cost(received));

                // Batch accounting on the synchronized clock: identical on
                // every rank, so the adaptive controllers stay in lockstep.
                let t_batch_end = crate::sync_clock(comm);
                let global_batch = per_rank * nranks as u64;
                main_start += global_batch;
                let batch_seconds = (t_batch_end - t_batch_start).max(1e-12);
                let rate = global_batch as f64 / batch_seconds;
                if let Some(c) = controller.as_mut() {
                    c.observe(rate);
                }
                t_batch_start = t_batch_end;
                let _ = reply_tx.send((
                    my_rank,
                    RankReply::Stepped {
                        stats,
                        clock: t_batch_end,
                        batch_seconds,
                        bytes,
                        leaf_bins_owned: owned_leaf_bins(&forest),
                        footprint_owned: owned_footprint(&forest),
                    },
                ));
            }
            Ok(RankCmd::Snapshot) => {
                // A snapshot is a batch boundary for this rank, so compact
                // the owned arenas first: both the continuing solve and the
                // shipped clones come out subtree-clustered, and the
                // canonical export order keeps the bytes identical.
                for &p in &owned_patches {
                    forest.tree_mut(p).compact();
                }
                let trees: Vec<(u32, BinTree)> = owned_patches
                    .iter()
                    .map(|&p| (p, forest.tree(p).clone()))
                    .collect();
                let _ = reply_tx.send((my_rank, RankReply::Trees(trees)));
            }
            Ok(RankCmd::Restore {
                trees,
                main_start: at,
            }) => {
                // Adopt the checkpoint's state for the trees this rank
                // owns; unowned trees keep the pilot-phase state every
                // rank regenerated identically at boot, exactly as in an
                // uninterrupted run.
                for &p in &owned_patches {
                    *forest.tree_mut(p) = trees[p as usize].clone();
                }
                main_start = at;
                let _ = reply_tx.send((my_rank, RankReply::Restored));
            }
            // Finish — or the engine dropped its command channels.
            Ok(RankCmd::Finish) | Err(_) => break,
        }
    }

    let final_clock = comm.clock();
    let all_trees = forest.into_trees();
    let mut owned_trees = Vec::new();
    for (pid, tree) in all_trees.into_iter().enumerate() {
        if ownership.owner_of(pid as u32) == my_rank {
            owned_trees.push((pid as u32, tree));
        }
    }
    RankFinal {
        processed,
        owned_trees,
        batch_history: controller.map(|c| c.history().to_vec()).unwrap_or_default(),
        final_clock,
    }
}
