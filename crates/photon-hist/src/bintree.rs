//! Four-dimensional adaptive bin trees (dissertation ch. 4, Figs 4.5/4.6).
//!
//! Every scene polygon owns one `BinTree` recording the photons it reflected,
//! binned over four hierarchically subdividable parameters:
//!
//! | axis | meaning | range |
//! |------|---------|-------|
//! | `S` | bilinear position along the patch `s` edge | `[0, 1]` |
//! | `T` | bilinear position along the patch `t` edge | `[0, 1]` |
//! | `Theta` | cylindrical azimuth of the reflection direction | `[0, 2π)` |
//! | `RSq` | squared projected radius of the direction | `[0, 1]` |
//!
//! Color is a fifth, unsubdivided dimension: each leaf accumulates RGB
//! energy. The squared-radius axis is chosen because halving it halves a
//! Lambertian direction distribution (see `photon_math::angle`), so diffuse
//! surfaces refine spatially while mirrors refine angularly.
//!
//! **Speculative binning.** Each leaf tracks, for all four axes, how many of
//! its tallies fell into the lower half of its range on that axis. When any
//! axis rejects the uniform hypothesis at 3σ ([`crate::stats`]), the leaf
//! splits *on the most decisive axis*; the observed half-counts become the
//! daughters' (exact) totals on the split axis, and the daughters restart
//! their speculative statistics.
//!
//! The tree is stored as an index-linked arena for cache locality and cheap
//! whole-tree serialization.

use crate::stats::SplitRule;
use photon_math::Rgb;
use std::f64::consts::TAU;

/// The four subdividable histogram axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Axis {
    /// Bilinear `s` position on the patch.
    S = 0,
    /// Bilinear `t` position on the patch.
    T = 1,
    /// Cylindrical azimuth of the reflected direction.
    Theta = 2,
    /// Squared projected radius of the reflected direction.
    RSq = 3,
}

impl Axis {
    /// All axes in index order.
    pub const ALL: [Axis; 4] = [Axis::S, Axis::T, Axis::Theta, Axis::RSq];

    /// Axis from its index (0..4).
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        Axis::ALL[i]
    }
}

/// A photon interaction in bin coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinPoint {
    /// Bilinear `s` in `[0, 1]`.
    pub s: f64,
    /// Bilinear `t` in `[0, 1]`.
    pub t: f64,
    /// Azimuth in `[0, 2π)`.
    pub theta: f64,
    /// Squared projected radius in `[0, 1]`.
    pub r_sq: f64,
}

impl BinPoint {
    /// Creates a point, clamping tiny out-of-range rounding noise.
    pub fn new(s: f64, t: f64, theta: f64, r_sq: f64) -> Self {
        BinPoint {
            s: s.clamp(0.0, 1.0),
            t: t.clamp(0.0, 1.0),
            theta: theta.rem_euclid(TAU),
            r_sq: r_sq.clamp(0.0, 1.0),
        }
    }

    /// Coordinate along an axis.
    #[inline]
    pub fn coord(&self, axis: Axis) -> f64 {
        match axis {
            Axis::S => self.s,
            Axis::T => self.t,
            Axis::Theta => self.theta,
            Axis::RSq => self.r_sq,
        }
    }
}

/// The 4-D parameter box covered by a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinRange {
    /// Lower bounds, indexed by `Axis`.
    pub lo: [f64; 4],
    /// Upper bounds, indexed by `Axis`.
    pub hi: [f64; 4],
}

impl BinRange {
    /// The root range: full patch, full hemisphere.
    pub fn full() -> Self {
        BinRange {
            lo: [0.0; 4],
            hi: [1.0, 1.0, TAU, 1.0],
        }
    }

    /// Midpoint along an axis.
    #[inline]
    pub fn mid(&self, axis: Axis) -> f64 {
        0.5 * (self.lo[axis as usize] + self.hi[axis as usize])
    }

    /// Width along an axis.
    #[inline]
    pub fn width(&self, axis: Axis) -> f64 {
        self.hi[axis as usize] - self.lo[axis as usize]
    }

    /// True when the point is inside (half-open on every axis, closed at the
    /// global upper boundary which callers clamp to).
    pub fn contains(&self, p: &BinPoint) -> bool {
        Axis::ALL.iter().all(|&a| {
            let x = p.coord(a);
            x >= self.lo[a as usize] && x <= self.hi[a as usize]
        })
    }

    /// The lower/upper half along `axis`.
    pub fn split(&self, axis: Axis) -> (BinRange, BinRange) {
        let m = self.mid(axis);
        let mut lo_half = *self;
        let mut hi_half = *self;
        lo_half.hi[axis as usize] = m;
        hi_half.lo[axis as usize] = m;
        (lo_half, hi_half)
    }

    /// Fraction of the patch area covered: product of `S` and `T` widths
    /// (bilinear parameters; exact for parallelograms, the paper accepts the
    /// approximation for trapezoids).
    pub fn area_fraction(&self) -> f64 {
        self.width(Axis::S) * self.width(Axis::T)
    }

    /// Fraction of the *Lambertian* direction measure covered: the `θ`
    /// fraction of the circle times the `r²` width (projected-disc area —
    /// the reason the paper bins squared radius).
    pub fn solid_angle_fraction(&self) -> f64 {
        (self.width(Axis::Theta) / TAU) * self.width(Axis::RSq)
    }

    /// Center point of the range.
    pub fn center(&self) -> BinPoint {
        BinPoint {
            s: self.mid(Axis::S),
            t: self.mid(Axis::T),
            theta: self.mid(Axis::Theta),
            r_sq: self.mid(Axis::RSq),
        }
    }
}

/// Accumulated statistics of a leaf bin.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LeafStats {
    /// Total photons credited to this bin, including the share inherited
    /// from ancestors at split time (exact on the split axis — see module
    /// docs). Conserved: summing over leaves equals total tallies.
    pub n_total: u64,
    /// Accumulated RGB energy (inherited proportionally at splits).
    pub rgb: Rgb,
    /// Tallies since this leaf was created (basis of the split statistics).
    pub stat_n: u32,
    /// Of `stat_n`, how many fell in the lower half per axis.
    pub left: [u32; 4],
}

/// Split policy knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitConfig {
    /// The statistical rule (3σ by default).
    pub rule: SplitRule,
    /// Maximum tree depth (root = 0). Bounds memory under adversarial input.
    pub max_depth: u16,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            rule: SplitRule::default(),
            max_depth: 24,
        }
    }
}

/// Arena node: leaf statistics or an internal split.
#[derive(Clone, Debug)]
enum Node {
    Leaf(LeafStats),
    Internal {
        axis: Axis,
        /// Arena indices of the `(lower, upper)` children.
        children: [u32; 2],
    },
}

/// A four-dimensional adaptive histogram tree for one polygon.
#[derive(Clone, Debug)]
pub struct BinTree {
    nodes: Vec<Node>,
    config: SplitConfig,
    tallies: u64,
    leaves: u32,
}

impl BinTree {
    /// A fresh tree: one leaf covering the full range.
    pub fn new(config: SplitConfig) -> Self {
        BinTree {
            nodes: vec![Node::Leaf(LeafStats::default())],
            config,
            tallies: 0,
            leaves: 1,
        }
    }

    /// Total photons tallied into this tree.
    pub fn tallies(&self) -> u64 {
        self.tallies
    }

    /// Number of leaf bins. This is the paper's "view-dependent polygon"
    /// count for the owning patch (Table 5.1).
    pub fn leaf_count(&self) -> u32 {
        self.leaves
    }

    /// Number of arena nodes (leaves + internals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident bytes of this tree.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>() + std::mem::size_of::<Self>()
    }

    /// The split policy in force.
    pub fn config(&self) -> &SplitConfig {
        &self.config
    }

    /// Descends to the leaf containing `p`; returns `(arena index, range,
    /// depth)`.
    fn descend(&self, p: &BinPoint) -> (usize, BinRange, u16) {
        let mut idx = 0usize;
        let mut range = BinRange::full();
        let mut depth = 0u16;
        loop {
            match &self.nodes[idx] {
                Node::Leaf(_) => return (idx, range, depth),
                Node::Internal { axis, children } => {
                    let (lo_half, hi_half) = range.split(*axis);
                    if p.coord(*axis) < range.mid(*axis) {
                        idx = children[0] as usize;
                        range = lo_half;
                    } else {
                        idx = children[1] as usize;
                        range = hi_half;
                    }
                    depth += 1;
                }
            }
        }
    }

    /// Descend-equivalent containment: the set of points `descend` routes to
    /// a leaf with box `range` is half-open on every axis (`lo <= x < hi`)
    /// except at the global upper boundary, which is closed because
    /// [`BinPoint::new`] clamps onto it and `descend` compares with `<`.
    ///
    /// [`BinRange::contains`] is closed on *both* ends and must not be used
    /// here: a coordinate exactly on a cached leaf's upper edge belongs to
    /// the sibling, and treating it as a hit would diverge from `descend`
    /// (and therefore from the serial tally order).
    #[inline]
    fn leaf_admits(range: &BinRange, p: &BinPoint) -> bool {
        const FULL_HI: [f64; 4] = [1.0, 1.0, TAU, 1.0];
        Axis::ALL.iter().all(|&a| {
            let i = a as usize;
            let x = p.coord(a);
            x >= range.lo[i] && (x < range.hi[i] || range.hi[i] >= FULL_HI[i])
        })
    }

    /// Records a photon interaction with energy `rgb`. Returns `true` when
    /// the containing bin split as a result (the `NeedsSplit`/`Split` path of
    /// the paper's Fig 4.1 algorithm).
    pub fn tally(&mut self, p: &BinPoint, rgb: Rgb) -> bool {
        let (idx, range, depth) = self.descend(p);
        self.tally_at(idx, range, depth, p, rgb)
    }

    /// Records a photon interaction through a [`LeafCursor`], skipping the
    /// root descent when `p` lands in the same leaf as the cursor's previous
    /// tally. Behaviour (including split decisions and floating-point
    /// accumulation order) is bit-identical to [`BinTree::tally`]: a cache
    /// hit requires the cached node to still be a leaf *and* the point to
    /// pass a descend-equivalent containment test (`leaf_admits`), so the
    /// leaf reached is exactly the leaf `descend` would reach.
    pub fn tally_with(&mut self, p: &BinPoint, rgb: Rgb, cursor: &mut LeafCursor) -> bool {
        let (idx, range, depth) = match cursor.cached {
            Some((idx, range, depth))
                if matches!(self.nodes[idx as usize], Node::Leaf(_))
                    && Self::leaf_admits(&range, p) =>
            {
                (idx as usize, range, depth)
            }
            _ => self.descend(p),
        };
        let split = self.tally_at(idx, range, depth, p, rgb);
        // After a split the node at `idx` is internal; drop the cache so the
        // next tally re-descends into the fresh daughters.
        cursor.cached = if split {
            None
        } else {
            Some((idx as u32, range, depth))
        };
        split
    }

    /// Applies a run of tallies in order through one shared [`LeafCursor`].
    /// Equivalent to calling [`BinTree::tally`] per record, but consecutive
    /// records landing in the same leaf skip the root descent. Returns the
    /// number of splits triggered.
    pub fn tally_run<'a, I>(&mut self, records: I) -> u64
    where
        I: IntoIterator<Item = (&'a BinPoint, Rgb)>,
    {
        let mut cursor = LeafCursor::new();
        let mut splits = 0u64;
        for (p, rgb) in records {
            splits += u64::from(self.tally_with(p, rgb, &mut cursor));
        }
        splits
    }

    /// Tally into the leaf at `idx` (with box `range` at `depth`), then run
    /// the split check. Callers must pass exactly what `descend(p)` returns
    /// (or a [`LeafCursor`]-validated equivalent).
    fn tally_at(
        &mut self,
        idx: usize,
        range: BinRange,
        depth: u16,
        p: &BinPoint,
        rgb: Rgb,
    ) -> bool {
        self.tallies += 1;
        let Node::Leaf(stats) = &mut self.nodes[idx] else {
            unreachable!()
        };
        stats.n_total += 1;
        stats.rgb += rgb;
        stats.stat_n += 1;
        for (i, &axis) in Axis::ALL.iter().enumerate() {
            if p.coord(axis) < range.mid(axis) {
                stats.left[i] += 1;
            }
        }
        if depth >= self.config.max_depth {
            return false;
        }
        // NeedsSplit: most decisive axis beyond 3σ.
        let mut best_axis = None;
        let mut best_excess = 1.0f64;
        for (i, &axis) in Axis::ALL.iter().enumerate() {
            let l = stats.left[i];
            let r = stats.stat_n - l;
            let e = self.config.rule.excess(l, r);
            if e > best_excess {
                best_excess = e;
                best_axis = Some(axis);
            }
        }
        let Some(axis) = best_axis else { return false };
        self.split_leaf(idx, axis);
        true
    }

    /// Splits leaf `idx` along `axis`, distributing its tallies exactly on
    /// the split axis and proportionally in energy.
    fn split_leaf(&mut self, idx: usize, axis: Axis) {
        let Node::Leaf(stats) = self.nodes[idx].clone() else {
            panic!("split_leaf on internal node")
        };
        let ai = axis as usize;
        let l = stats.left[ai] as u64;
        let r = stats.stat_n as u64 - l;
        // The pre-statistics inheritance (n_total - stat_n) is distributed
        // by the same observed proportion; the observed counts themselves
        // are exact.
        let inherited = stats.n_total - stats.stat_n as u64;
        let frac_l = if stats.stat_n > 0 {
            l as f64 / stats.stat_n as f64
        } else {
            0.5
        };
        let inh_l = (inherited as f64 * frac_l).round() as u64;
        let n_lo = l + inh_l;
        let n_hi = r + (inherited - inh_l.min(inherited));
        let rgb_lo = stats.rgb * frac_l;
        let rgb_hi = stats.rgb * (1.0 - frac_l);
        let lo = Node::Leaf(LeafStats {
            n_total: n_lo,
            rgb: rgb_lo,
            stat_n: 0,
            left: [0; 4],
        });
        let hi = Node::Leaf(LeafStats {
            n_total: n_hi,
            rgb: rgb_hi,
            stat_n: 0,
            left: [0; 4],
        });
        let lo_idx = self.nodes.len() as u32;
        self.nodes.push(lo);
        let hi_idx = self.nodes.len() as u32;
        self.nodes.push(hi);
        self.nodes[idx] = Node::Internal {
            axis,
            children: [lo_idx, hi_idx],
        };
        self.leaves += 1;
    }

    /// Looks up the leaf containing `p` without modifying anything.
    /// Returns the leaf statistics and its range (for measure computations).
    pub fn lookup(&self, p: &BinPoint) -> (&LeafStats, BinRange) {
        let (idx, range, _) = self.descend(p);
        let Node::Leaf(stats) = &self.nodes[idx] else {
            unreachable!()
        };
        (stats, range)
    }

    /// Visits every leaf with its range, in depth-first order.
    pub fn for_each_leaf<F: FnMut(&BinRange, &LeafStats)>(&self, mut f: F) {
        self.walk(0, BinRange::full(), &mut f);
    }

    fn walk<F: FnMut(&BinRange, &LeafStats)>(&self, idx: usize, range: BinRange, f: &mut F) {
        match &self.nodes[idx] {
            Node::Leaf(stats) => f(&range, stats),
            Node::Internal { axis, children } => {
                let (lo, hi) = range.split(*axis);
                self.walk(children[0] as usize, lo, f);
                self.walk(children[1] as usize, hi, f);
            }
        }
    }

    /// Maximum leaf depth.
    pub fn max_depth(&self) -> u16 {
        fn depth_of(nodes: &[Node], idx: usize, d: u16) -> u16 {
            match &nodes[idx] {
                Node::Leaf(_) => d,
                Node::Internal { children, .. } => depth_of(nodes, children[0] as usize, d + 1)
                    .max(depth_of(nodes, children[1] as usize, d + 1)),
            }
        }
        depth_of(&self.nodes, 0, 0)
    }

    /// Flat snapshot of the tree for the answer-file codec:
    /// internal nodes as `(axis, child_lo, child_hi)`, leaves as stats,
    /// in arena order. See `photon-core::answer` for the byte format.
    pub fn export_nodes(&self) -> Vec<ExportNode> {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Leaf(s) => ExportNode::Leaf(*s),
                Node::Internal { axis, children } => ExportNode::Internal {
                    axis: *axis,
                    children: *children,
                },
            })
            .collect()
    }

    /// Rebuilds a tree from an export produced by [`BinTree::export_nodes`].
    /// Returns `None` if the node graph is malformed.
    pub fn from_export(nodes: Vec<ExportNode>, config: SplitConfig) -> Option<BinTree> {
        if nodes.is_empty() {
            return None;
        }
        let mut arena = Vec::with_capacity(nodes.len());
        let mut leaves = 0u32;
        let mut tallies = 0u64;
        for n in &nodes {
            match n {
                ExportNode::Leaf(s) => {
                    leaves += 1;
                    tallies += s.n_total;
                    arena.push(Node::Leaf(*s));
                }
                ExportNode::Internal { axis, children } => {
                    if children[0] as usize >= nodes.len() || children[1] as usize >= nodes.len() {
                        return None;
                    }
                    arena.push(Node::Internal {
                        axis: *axis,
                        children: *children,
                    });
                }
            }
        }
        Some(BinTree {
            nodes: arena,
            config,
            tallies,
            leaves,
        })
    }
}

/// Cache of the last leaf a run of tallies landed in, used by
/// [`BinTree::tally_with`]/[`BinTree::tally_run`] to skip the root descent
/// for coherent runs. A cursor is only meaningful against the tree that
/// populated it; feeding it to another tree is safe (the leaf check and
/// containment test reject stale entries) but useless.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeafCursor {
    /// `(arena index, leaf box, depth)` of the previous tally's leaf, or
    /// `None` right after that leaf split.
    cached: Option<(u32, BinRange, u16)>,
}

impl LeafCursor {
    /// A cursor with no cached leaf: the first tally descends from the root.
    pub fn new() -> Self {
        LeafCursor::default()
    }
}

/// Serializable node snapshot (see [`BinTree::export_nodes`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExportNode {
    /// A leaf with its statistics.
    Leaf(LeafStats),
    /// An internal split node.
    Internal {
        /// Split axis.
        axis: Axis,
        /// Arena indices of the two children.
        children: [u32; 2],
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_rng::{Lcg48, PhotonRng};

    fn uniform_point(rng: &mut Lcg48) -> BinPoint {
        BinPoint::new(
            rng.next_f64(),
            rng.next_f64(),
            rng.next_f64() * TAU,
            rng.next_f64(),
        )
    }

    #[test]
    fn root_range_measures() {
        let r = BinRange::full();
        assert!((r.area_fraction() - 1.0).abs() < 1e-12);
        assert!((r.solid_angle_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_split_halves_measure() {
        let r = BinRange::full();
        for axis in Axis::ALL {
            let (a, b) = r.split(axis);
            let total = a.area_fraction() * a.solid_angle_fraction()
                + b.area_fraction() * b.solid_angle_fraction();
            assert!((total - 1.0).abs() < 1e-12, "axis {axis:?}");
        }
    }

    #[test]
    fn uniform_data_rarely_splits() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(21);
        for _ in 0..20_000 {
            tree.tally(&uniform_point(&mut rng), Rgb::WHITE);
        }
        // 4 axes tested per tally; a few false splits are expected but the
        // tree must stay tiny.
        assert!(tree.leaf_count() < 32, "leaves = {}", tree.leaf_count());
    }

    #[test]
    fn concentrated_data_splits_on_the_right_axis() {
        // All photons in s < 0.1: the tree must split on S, repeatedly.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(22);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.s *= 0.1;
            tree.tally(&p, Rgb::WHITE);
        }
        assert!(tree.leaf_count() > 3);
        // The populated fine leaves must lie at small s.
        let mut hot_leaves = 0;
        tree.for_each_leaf(|range, stats| {
            if stats.n_total > 1000 {
                hot_leaves += 1;
                assert!(range.lo[0] < 0.1, "hot leaf outside gradient: {range:?}");
            }
        });
        assert!(hot_leaves >= 1);
    }

    #[test]
    fn angular_concentration_splits_angular_axes() {
        // Mirror-like surface: all directions near r_sq = 1 (grazing) in a
        // narrow theta band. Position is uniform. Expect theta/r_sq splits.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(23);
        for _ in 0..20_000 {
            let p = BinPoint::new(
                rng.next_f64(),
                rng.next_f64(),
                0.1 + 0.05 * rng.next_f64(),
                0.9 + 0.1 * rng.next_f64(),
            );
            tree.tally(&p, Rgb::WHITE);
        }
        let mut angular_splits = 0;
        let mut spatial_splits = 0;
        for n in tree.export_nodes() {
            if let ExportNode::Internal { axis, .. } = n {
                match axis {
                    Axis::Theta | Axis::RSq => angular_splits += 1,
                    _ => spatial_splits += 1,
                }
            }
        }
        assert!(
            angular_splits > spatial_splits,
            "angular {angular_splits} vs spatial {spatial_splits}"
        );
    }

    #[test]
    fn tally_conservation_across_splits() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(24);
        let n = 30_000u64;
        for _ in 0..n {
            let mut p = uniform_point(&mut rng);
            p.t = p.t * p.t; // gradient in t
            tree.tally(&p, Rgb::new(0.5, 0.25, 0.125));
        }
        assert_eq!(tree.tallies(), n);
        let mut sum = 0u64;
        let mut rgb_sum = Rgb::BLACK;
        let mut leaf_count = 0;
        tree.for_each_leaf(|_, s| {
            sum += s.n_total;
            rgb_sum += s.rgb;
            leaf_count += 1;
        });
        assert_eq!(leaf_count, tree.leaf_count());
        // Exact count conservation; proportional rounding can drift by at
        // most one photon per split.
        let drift = sum.abs_diff(n);
        assert!(drift <= tree.node_count() as u64 / 2, "drift {drift}");
        assert!((rgb_sum.r - 0.5 * n as f64).abs() / (0.5 * n as f64) < 1e-9);
    }

    #[test]
    fn lookup_finds_populated_leaf() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(25);
        for _ in 0..10_000 {
            let mut p = uniform_point(&mut rng);
            p.s *= 0.25;
            tree.tally(&p, Rgb::WHITE);
        }
        let (stats, range) = tree.lookup(&BinPoint::new(0.1, 0.5, 1.0, 0.5));
        assert!(range.contains(&BinPoint::new(0.1, 0.5, 1.0, 0.5)));
        assert!(stats.n_total > 0);
    }

    #[test]
    fn max_depth_is_respected() {
        let cfg = SplitConfig {
            max_depth: 3,
            ..SplitConfig::default()
        };
        let mut tree = BinTree::new(cfg);
        let mut rng = Lcg48::new(26);
        for _ in 0..100_000 {
            // Pathological: everything at nearly the same point.
            let p = BinPoint::new(
                0.001 * rng.next_f64(),
                0.001 * rng.next_f64(),
                0.001 * rng.next_f64(),
                0.001 * rng.next_f64(),
            );
            tree.tally(&p, Rgb::WHITE);
        }
        assert!(tree.max_depth() <= 3);
        assert!(tree.leaf_count() <= 16);
    }

    #[test]
    fn export_round_trip() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(27);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.r_sq = p.r_sq.powi(3);
            tree.tally(&p, Rgb::new(1.0, 0.5, 0.2));
        }
        let export = tree.export_nodes();
        let rebuilt = BinTree::from_export(export, SplitConfig::default()).unwrap();
        assert_eq!(rebuilt.leaf_count(), tree.leaf_count());
        assert_eq!(rebuilt.tallies(), {
            let mut s = 0;
            tree.for_each_leaf(|_, l| s += l.n_total);
            s
        });
        // Lookups agree everywhere.
        for _ in 0..100 {
            let p = uniform_point(&mut rng);
            let (a, ra) = tree.lookup(&p);
            let (b, rb) = rebuilt.lookup(&p);
            assert_eq!(a.n_total, b.n_total);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn from_export_rejects_bad_children() {
        let bad = vec![ExportNode::Internal {
            axis: Axis::S,
            children: [5, 6],
        }];
        assert!(BinTree::from_export(bad, SplitConfig::default()).is_none());
        assert!(BinTree::from_export(vec![], SplitConfig::default()).is_none());
    }

    #[test]
    fn cursor_tallies_match_plain_tallies_bit_for_bit() {
        // Same stream through tally() and tally_with() must build identical
        // trees — including on adversarial streams with long same-leaf runs
        // and points exactly on bin boundaries.
        let mut rng = Lcg48::new(29);
        let mut points = Vec::new();
        for i in 0..30_000u32 {
            let p = match i % 5 {
                // Clustered: long same-leaf runs exercise the cache-hit path.
                0 | 1 => BinPoint::new(
                    0.01 * rng.next_f64(),
                    0.01 * rng.next_f64(),
                    rng.next_f64(),
                    rng.next_f64(),
                ),
                // Exact mid/edge coordinates exercise the half-open test.
                2 => BinPoint::new(0.5, 0.25, 0.0, 1.0),
                _ => uniform_point(&mut rng),
            };
            points.push(p);
        }
        let mut plain = BinTree::new(SplitConfig::default());
        let mut cursed = BinTree::new(SplitConfig::default());
        let mut cursor = LeafCursor::new();
        for p in &points {
            let a = plain.tally(p, Rgb::new(0.9, 0.5, 0.1));
            let b = cursed.tally_with(p, Rgb::new(0.9, 0.5, 0.1), &mut cursor);
            assert_eq!(a, b, "split decisions diverged");
        }
        assert_eq!(plain.export_nodes(), cursed.export_nodes());
    }

    #[test]
    fn tally_run_matches_sequential_tallies() {
        let mut rng = Lcg48::new(30);
        let recs: Vec<(BinPoint, Rgb)> = (0..20_000)
            .map(|_| {
                let mut p = uniform_point(&mut rng);
                p.s = p.s.powi(3);
                (p, Rgb::new(rng.next_f64(), 0.5, 0.25))
            })
            .collect();
        let mut one_by_one = BinTree::new(SplitConfig::default());
        let mut splits_seq = 0u64;
        for (p, rgb) in &recs {
            splits_seq += u64::from(one_by_one.tally(p, *rgb));
        }
        let mut run = BinTree::new(SplitConfig::default());
        let splits_run = run.tally_run(recs.iter().map(|(p, rgb)| (p, *rgb)));
        assert_eq!(splits_seq, splits_run);
        assert_eq!(one_by_one.export_nodes(), run.export_nodes());
        assert_eq!(one_by_one.tallies(), run.tallies());
    }

    #[test]
    fn memory_grows_sublinearly_once_refined() {
        // Fig 5.4's qualitative claim: after initial buildup the forest grows
        // much more slowly than the photon count.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(28);
        let tally_n = |tree: &mut BinTree, rng: &mut Lcg48, n: u64| {
            for _ in 0..n {
                let mut p = uniform_point(rng);
                p.s = p.s.powi(2);
                p.t = p.t.powi(2);
                tree.tally(&p, Rgb::WHITE);
            }
        };
        tally_n(&mut tree, &mut rng, 20_000);
        let leaves_early = tree.leaf_count() as f64;
        tally_n(&mut tree, &mut rng, 180_000); // 10x total photons
        let leaves_late = tree.leaf_count() as f64;
        // Sublinear: 10x the photons must grow the forest by strictly less
        // than 10x (bins per photon falls as refinement converges).
        assert!(
            leaves_late / leaves_early < 8.0,
            "10x photons grew bins {leaves_early} -> {leaves_late}"
        );
    }
}
