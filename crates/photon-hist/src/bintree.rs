//! Four-dimensional adaptive bin trees (dissertation ch. 4, Figs 4.5/4.6).
//!
//! Every scene polygon owns one `BinTree` recording the photons it reflected,
//! binned over four hierarchically subdividable parameters:
//!
//! | axis | meaning | range |
//! |------|---------|-------|
//! | `S` | bilinear position along the patch `s` edge | `[0, 1]` |
//! | `T` | bilinear position along the patch `t` edge | `[0, 1]` |
//! | `Theta` | cylindrical azimuth of the reflection direction | `[0, 2π)` |
//! | `RSq` | squared projected radius of the direction | `[0, 1]` |
//!
//! Color is a fifth, unsubdivided dimension: each leaf accumulates RGB
//! energy. The squared-radius axis is chosen because halving it halves a
//! Lambertian direction distribution (see `photon_math::angle`), so diffuse
//! surfaces refine spatially while mirrors refine angularly.
//!
//! **Speculative binning.** Each leaf tracks, for all four axes, how many of
//! its tallies fell into the lower half of its range on that axis. When any
//! axis rejects the uniform hypothesis at 3σ ([`crate::stats`]), the leaf
//! splits *on the most decisive axis*; the observed half-counts become the
//! daughters' (exact) totals on the split axis, and the daughters restart
//! their speculative statistics.
//!
//! **Storage: hot/cold SoA split.** The traversal-hot data — one packed
//! node word (`PackedNode`) per tree node, 8 bytes — lives in a flat arena the descent
//! strides over; the tally-cold per-leaf statistics (48-byte [`LeafStats`])
//! live in a separate arena addressed by leaf slot. An internal node stores
//! only its split axis and the index of its child *pair* (children are
//! always allocated adjacently), so a descent touches one cache line per
//! ~8 levels instead of one per level. When a leaf splits, its cold slot is
//! reused for the lower daughter and one fresh slot is appended for the
//! upper, keeping the cold arena exactly leaf-count long. [`BinTree::compact`]
//! rebuilds both arenas into the canonical subtree-clustered order (the
//! order [`BinTree::export_nodes`] serializes), so steady-state traversal
//! after a snapshot or checkpoint walks memory nearly sequentially.

use crate::stats::SplitRule;
use photon_math::Rgb;
use std::f64::consts::TAU;

/// The four subdividable histogram axes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Axis {
    /// Bilinear `s` position on the patch.
    S = 0,
    /// Bilinear `t` position on the patch.
    T = 1,
    /// Cylindrical azimuth of the reflected direction.
    Theta = 2,
    /// Squared projected radius of the reflected direction.
    RSq = 3,
}

impl Axis {
    /// All axes in index order.
    pub const ALL: [Axis; 4] = [Axis::S, Axis::T, Axis::Theta, Axis::RSq];

    /// Axis from its index (0..4).
    #[inline]
    pub fn from_index(i: usize) -> Axis {
        Axis::ALL[i]
    }
}

/// A photon interaction in bin coordinates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinPoint {
    /// Bilinear `s` in `[0, 1]`.
    pub s: f64,
    /// Bilinear `t` in `[0, 1]`.
    pub t: f64,
    /// Azimuth in `[0, 2π)`.
    pub theta: f64,
    /// Squared projected radius in `[0, 1]`.
    pub r_sq: f64,
}

impl BinPoint {
    /// Creates a point, clamping tiny out-of-range rounding noise.
    pub fn new(s: f64, t: f64, theta: f64, r_sq: f64) -> Self {
        BinPoint {
            s: s.clamp(0.0, 1.0),
            t: t.clamp(0.0, 1.0),
            theta: theta.rem_euclid(TAU),
            r_sq: r_sq.clamp(0.0, 1.0),
        }
    }

    /// Coordinate along an axis.
    #[inline]
    pub fn coord(&self, axis: Axis) -> f64 {
        match axis {
            Axis::S => self.s,
            Axis::T => self.t,
            Axis::Theta => self.theta,
            Axis::RSq => self.r_sq,
        }
    }
}

/// The 4-D parameter box covered by a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BinRange {
    /// Lower bounds, indexed by `Axis`.
    pub lo: [f64; 4],
    /// Upper bounds, indexed by `Axis`.
    pub hi: [f64; 4],
}

impl BinRange {
    /// The root range: full patch, full hemisphere.
    pub fn full() -> Self {
        BinRange {
            lo: [0.0; 4],
            hi: [1.0, 1.0, TAU, 1.0],
        }
    }

    /// Midpoint along an axis.
    #[inline]
    pub fn mid(&self, axis: Axis) -> f64 {
        0.5 * (self.lo[axis as usize] + self.hi[axis as usize])
    }

    /// Width along an axis.
    #[inline]
    pub fn width(&self, axis: Axis) -> f64 {
        self.hi[axis as usize] - self.lo[axis as usize]
    }

    /// True when the point is inside (half-open on every axis, closed at the
    /// global upper boundary which callers clamp to).
    pub fn contains(&self, p: &BinPoint) -> bool {
        Axis::ALL.iter().all(|&a| {
            let x = p.coord(a);
            x >= self.lo[a as usize] && x <= self.hi[a as usize]
        })
    }

    /// The lower/upper half along `axis`.
    pub fn split(&self, axis: Axis) -> (BinRange, BinRange) {
        let m = self.mid(axis);
        let mut lo_half = *self;
        let mut hi_half = *self;
        lo_half.hi[axis as usize] = m;
        hi_half.lo[axis as usize] = m;
        (lo_half, hi_half)
    }

    /// Fraction of the patch area covered: product of `S` and `T` widths
    /// (bilinear parameters; exact for parallelograms, the paper accepts the
    /// approximation for trapezoids).
    pub fn area_fraction(&self) -> f64 {
        self.width(Axis::S) * self.width(Axis::T)
    }

    /// Fraction of the *Lambertian* direction measure covered: the `θ`
    /// fraction of the circle times the `r²` width (projected-disc area —
    /// the reason the paper bins squared radius).
    pub fn solid_angle_fraction(&self) -> f64 {
        (self.width(Axis::Theta) / TAU) * self.width(Axis::RSq)
    }

    /// Center point of the range.
    pub fn center(&self) -> BinPoint {
        BinPoint {
            s: self.mid(Axis::S),
            t: self.mid(Axis::T),
            theta: self.mid(Axis::Theta),
            r_sq: self.mid(Axis::RSq),
        }
    }
}

/// Accumulated statistics of a leaf bin.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LeafStats {
    /// Total photons credited to this bin, including the share inherited
    /// from ancestors at split time (exact on the split axis — see module
    /// docs). Conserved: summing over leaves equals total tallies.
    pub n_total: u64,
    /// Accumulated RGB energy (inherited proportionally at splits).
    pub rgb: Rgb,
    /// Tallies since this leaf was created (basis of the split statistics).
    pub stat_n: u32,
    /// Of `stat_n`, how many fell in the lower half per axis.
    pub left: [u32; 4],
}

/// Split policy knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitConfig {
    /// The statistical rule (3σ by default).
    pub rule: SplitRule,
    /// Maximum tree depth (root = 0). Bounds memory under adversarial input.
    pub max_depth: u16,
}

impl Default for SplitConfig {
    fn default() -> Self {
        SplitConfig {
            rule: SplitRule::default(),
            max_depth: 24,
        }
    }
}

/// Hot-arena node, packed into 8 bytes.
///
/// Bit layout: bit 63 flags an internal node; bits 33..=32 carry the split
/// axis (internal only); bits 31..=0 carry the payload — the cold-arena leaf
/// slot for a leaf, or the arena index of the `(lower, upper)` child *pair*
/// for an internal node. Children are always allocated adjacently, so one
/// `u32` names both: the lower daughter at `first_child`, the upper at
/// `first_child + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(transparent)]
struct PackedNode(u64);

// The whole point of the hot/cold split: an internal-node entry must stay
// within 8 bytes so a descent touches ~8x fewer cache lines than the old
// enum arena.
const _: () = assert!(std::mem::size_of::<PackedNode>() <= 8);

impl PackedNode {
    const INTERNAL: u64 = 1 << 63;
    const AXIS_SHIFT: u32 = 32;

    #[inline]
    fn leaf(slot: u32) -> Self {
        PackedNode(slot as u64)
    }

    #[inline]
    fn internal(axis: Axis, first_child: u32) -> Self {
        PackedNode(Self::INTERNAL | ((axis as u64) << Self::AXIS_SHIFT) | first_child as u64)
    }

    #[inline]
    fn is_leaf(self) -> bool {
        self.0 & Self::INTERNAL == 0
    }

    /// Leaf slot for leaves, first-child index for internals.
    #[inline]
    fn payload(self) -> u32 {
        self.0 as u32
    }

    #[inline]
    fn axis(self) -> Axis {
        Axis::from_index(((self.0 >> Self::AXIS_SHIFT) & 0b11) as usize)
    }
}

/// A four-dimensional adaptive histogram tree for one polygon.
///
/// Stored as a hot/cold SoA pair of flat arenas (see the module docs): a
/// packed node arena the descent strides over, and a leaf-stats arena only
/// the final tally touches.
#[derive(Clone, Debug)]
pub struct BinTree {
    /// Hot arena: one [`PackedNode`] per tree node, root at index 0.
    nodes: Vec<PackedNode>,
    /// Cold arena: leaf statistics addressed by the slot a packed leaf
    /// names. Slot reuse at split time keeps this exactly leaf-count long.
    leaves: Vec<LeafStats>,
    config: SplitConfig,
    tallies: u64,
}

impl BinTree {
    /// A fresh tree: one leaf covering the full range.
    pub fn new(config: SplitConfig) -> Self {
        BinTree {
            nodes: vec![PackedNode::leaf(0)],
            leaves: vec![LeafStats::default()],
            config,
            tallies: 0,
        }
    }

    /// Total photons tallied into this tree.
    pub fn tallies(&self) -> u64 {
        self.tallies
    }

    /// Number of leaf bins. This is the paper's "view-dependent polygon"
    /// count for the owning patch (Table 5.1).
    pub fn leaf_count(&self) -> u32 {
        self.leaves.len() as u32
    }

    /// Number of arena nodes (leaves + internals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Resident bytes of the hot (packed node) arena.
    pub fn node_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<PackedNode>()
    }

    /// Resident bytes of the cold (leaf statistics) arena.
    pub fn leaf_bytes(&self) -> usize {
        self.leaves.capacity() * std::mem::size_of::<LeafStats>()
    }

    /// Approximate resident bytes of this tree: both arenas plus the
    /// header.
    pub fn memory_bytes(&self) -> usize {
        self.node_bytes() + self.leaf_bytes() + std::mem::size_of::<Self>()
    }

    /// The split policy in force.
    pub fn config(&self) -> &SplitConfig {
        &self.config
    }

    /// Descends to the leaf containing `p`; returns `(arena index, range,
    /// depth)`.
    fn descend(&self, p: &BinPoint) -> (usize, BinRange, u16) {
        let mut idx = 0usize;
        let mut range = BinRange::full();
        let mut depth = 0u16;
        loop {
            let node = self.nodes[idx];
            if node.is_leaf() {
                return (idx, range, depth);
            }
            let axis = node.axis();
            let (lo_half, hi_half) = range.split(axis);
            if p.coord(axis) < range.mid(axis) {
                idx = node.payload() as usize;
                range = lo_half;
            } else {
                idx = node.payload() as usize + 1;
                range = hi_half;
            }
            depth += 1;
        }
    }

    /// Descend-equivalent containment: the set of points `descend` routes to
    /// a leaf with box `range` is half-open on every axis (`lo <= x < hi`)
    /// except at the global upper boundary, which is closed because
    /// [`BinPoint::new`] clamps onto it and `descend` compares with `<`.
    ///
    /// [`BinRange::contains`] is closed on *both* ends and must not be used
    /// here: a coordinate exactly on a cached leaf's upper edge belongs to
    /// the sibling, and treating it as a hit would diverge from `descend`
    /// (and therefore from the serial tally order).
    #[inline]
    fn leaf_admits(range: &BinRange, p: &BinPoint) -> bool {
        const FULL_HI: [f64; 4] = [1.0, 1.0, TAU, 1.0];
        Axis::ALL.iter().all(|&a| {
            let i = a as usize;
            let x = p.coord(a);
            x >= range.lo[i] && (x < range.hi[i] || range.hi[i] >= FULL_HI[i])
        })
    }

    /// Records a photon interaction with energy `rgb`. Returns `true` when
    /// the containing bin split as a result (the `NeedsSplit`/`Split` path of
    /// the paper's Fig 4.1 algorithm).
    pub fn tally(&mut self, p: &BinPoint, rgb: Rgb) -> bool {
        let (idx, range, depth) = self.descend(p);
        self.tally_at(idx, range, depth, p, rgb)
    }

    /// Records a photon interaction through a [`LeafCursor`], skipping the
    /// root descent when `p` lands in the same leaf as the cursor's previous
    /// tally. Behaviour (including split decisions and floating-point
    /// accumulation order) is bit-identical to [`BinTree::tally`]: a cache
    /// hit requires the cached node to still be a leaf *and* the point to
    /// pass a descend-equivalent containment test (`leaf_admits`), so the
    /// leaf reached is exactly the leaf `descend` would reach.
    pub fn tally_with(&mut self, p: &BinPoint, rgb: Rgb, cursor: &mut LeafCursor) -> bool {
        let (idx, range, depth) = match cursor.cached {
            Some((idx, range, depth))
                if self.nodes[idx as usize].is_leaf() && Self::leaf_admits(&range, p) =>
            {
                (idx as usize, range, depth)
            }
            _ => self.descend(p),
        };
        let split = self.tally_at(idx, range, depth, p, rgb);
        // After a split the node at `idx` is internal; drop the cache so the
        // next tally re-descends into the fresh daughters.
        cursor.cached = if split {
            None
        } else {
            Some((idx as u32, range, depth))
        };
        split
    }

    /// Applies a run of tallies in order through one shared [`LeafCursor`].
    /// Equivalent to calling [`BinTree::tally`] per record, but consecutive
    /// records landing in the same leaf skip the root descent. Returns the
    /// number of splits triggered.
    pub fn tally_run<'a, I>(&mut self, records: I) -> u64
    where
        I: IntoIterator<Item = (&'a BinPoint, Rgb)>,
    {
        let mut cursor = LeafCursor::new();
        let mut splits = 0u64;
        for (p, rgb) in records {
            splits += u64::from(self.tally_with(p, rgb, &mut cursor));
        }
        splits
    }

    /// Tally into the leaf at `idx` (with box `range` at `depth`), then run
    /// the split check. Callers must pass exactly what `descend(p)` returns
    /// (or a [`LeafCursor`]-validated equivalent).
    fn tally_at(
        &mut self,
        idx: usize,
        range: BinRange,
        depth: u16,
        p: &BinPoint,
        rgb: Rgb,
    ) -> bool {
        self.tallies += 1;
        let node = self.nodes[idx];
        debug_assert!(node.is_leaf(), "tally_at on internal node");
        let stats = &mut self.leaves[node.payload() as usize];
        stats.n_total += 1;
        stats.rgb += rgb;
        stats.stat_n += 1;
        for (i, &axis) in Axis::ALL.iter().enumerate() {
            if p.coord(axis) < range.mid(axis) {
                stats.left[i] += 1;
            }
        }
        if depth >= self.config.max_depth {
            return false;
        }
        // NeedsSplit: most decisive axis beyond 3σ.
        let mut best_axis = None;
        let mut best_excess = 1.0f64;
        for (i, &axis) in Axis::ALL.iter().enumerate() {
            let l = stats.left[i];
            let r = stats.stat_n - l;
            let e = self.config.rule.excess(l, r);
            if e > best_excess {
                best_excess = e;
                best_axis = Some(axis);
            }
        }
        let Some(axis) = best_axis else { return false };
        self.split_leaf(idx, axis);
        true
    }

    /// Splits leaf `idx` along `axis`, distributing its tallies exactly on
    /// the split axis and proportionally in energy. The split leaf's cold
    /// slot is reused for the lower daughter; the upper daughter takes a
    /// fresh slot, so the cold arena never develops orphan entries.
    fn split_leaf(&mut self, idx: usize, axis: Axis) {
        let node = self.nodes[idx];
        assert!(node.is_leaf(), "split_leaf on internal node");
        let slot = node.payload() as usize;
        let stats = self.leaves[slot];
        let ai = axis as usize;
        let l = stats.left[ai] as u64;
        let r = stats.stat_n as u64 - l;
        // The pre-statistics inheritance (n_total - stat_n) is distributed
        // by the same observed proportion; the observed counts themselves
        // are exact.
        let inherited = stats.n_total - stats.stat_n as u64;
        let frac_l = if stats.stat_n > 0 {
            l as f64 / stats.stat_n as f64
        } else {
            0.5
        };
        let inh_l = (inherited as f64 * frac_l).round() as u64;
        let n_lo = l + inh_l;
        let n_hi = r + (inherited - inh_l.min(inherited));
        let rgb_lo = stats.rgb * frac_l;
        let rgb_hi = stats.rgb * (1.0 - frac_l);
        self.leaves[slot] = LeafStats {
            n_total: n_lo,
            rgb: rgb_lo,
            stat_n: 0,
            left: [0; 4],
        };
        let hi_slot = self.leaves.len() as u32;
        self.leaves.push(LeafStats {
            n_total: n_hi,
            rgb: rgb_hi,
            stat_n: 0,
            left: [0; 4],
        });
        let first = self.nodes.len() as u32;
        self.nodes.push(PackedNode::leaf(slot as u32));
        self.nodes.push(PackedNode::leaf(hi_slot));
        self.nodes[idx] = PackedNode::internal(axis, first);
        #[cfg(debug_assertions)]
        if let Err(e) = self.validate() {
            panic!("BinTree invariant violated after split: {e}");
        }
    }

    /// Looks up the leaf containing `p` without modifying anything.
    /// Returns the leaf statistics and its range (for measure computations).
    pub fn lookup(&self, p: &BinPoint) -> (&LeafStats, BinRange) {
        let (idx, range, _) = self.descend(p);
        let node = self.nodes[idx];
        debug_assert!(node.is_leaf(), "descend ended on internal node");
        (&self.leaves[node.payload() as usize], range)
    }

    /// Visits every leaf with its range, in depth-first order.
    pub fn for_each_leaf<F: FnMut(&BinRange, &LeafStats)>(&self, mut f: F) {
        self.walk(0, BinRange::full(), &mut f);
    }

    fn walk<F: FnMut(&BinRange, &LeafStats)>(&self, idx: usize, range: BinRange, f: &mut F) {
        let node = self.nodes[idx];
        if node.is_leaf() {
            f(&range, &self.leaves[node.payload() as usize]);
        } else {
            let (lo, hi) = range.split(node.axis());
            let first = node.payload() as usize;
            self.walk(first, lo, f);
            self.walk(first + 1, hi, f);
        }
    }

    /// Maximum leaf depth.
    pub fn max_depth(&self) -> u16 {
        fn depth_of(nodes: &[PackedNode], idx: usize, d: u16) -> u16 {
            let node = nodes[idx];
            if node.is_leaf() {
                d
            } else {
                let first = node.payload() as usize;
                depth_of(nodes, first, d + 1).max(depth_of(nodes, first + 1, d + 1))
            }
        }
        depth_of(&self.nodes, 0, 0)
    }

    /// Checks the arena invariants the SoA layout relies on: the nodes form
    /// one binary tree rooted at index 0 (every node reachable exactly
    /// once), every internal child pair is adjacent (structural — the
    /// encoding names only the first child), the cold arena has no orphan
    /// or doubly-referenced slots, leaf counts agree, and the per-leaf
    /// photon totals conserve the tally count (up to one photon of
    /// proportional-rounding slack per split).
    ///
    /// Debug builds run this after every split; release builds only pay for
    /// it when a test or tool calls it explicitly.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.nodes.len();
        if n == 0 {
            return Err("empty node arena".into());
        }
        let mut seen_node = vec![false; n];
        let mut seen_slot = vec![false; self.leaves.len()];
        let mut internals = 0u64;
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            if idx >= n {
                return Err(format!("child index {idx} out of range ({n} nodes)"));
            }
            if seen_node[idx] {
                return Err(format!("node {idx} reached twice (shared child or cycle)"));
            }
            seen_node[idx] = true;
            let node = self.nodes[idx];
            if node.is_leaf() {
                let slot = node.payload() as usize;
                if slot >= self.leaves.len() {
                    return Err(format!(
                        "leaf slot {slot} out of range ({} slots)",
                        self.leaves.len()
                    ));
                }
                if seen_slot[slot] {
                    return Err(format!("leaf slot {slot} referenced twice"));
                }
                seen_slot[slot] = true;
            } else {
                internals += 1;
                let first = node.payload() as usize;
                stack.push(first + 1);
                stack.push(first);
            }
        }
        if let Some(orphan) = seen_node.iter().position(|&v| !v) {
            return Err(format!("node {orphan} unreachable from the root"));
        }
        if let Some(orphan) = seen_slot.iter().position(|&v| !v) {
            return Err(format!("leaf slot {orphan} is an orphan"));
        }
        let leaf_nodes = n as u64 - internals;
        if leaf_nodes != internals + 1 {
            return Err(format!(
                "not a binary tree: {leaf_nodes} leaves vs {internals} internals"
            ));
        }
        let sum: u64 = self.leaves.iter().map(|s| s.n_total).sum();
        if sum.abs_diff(self.tallies) > internals {
            return Err(format!(
                "tally conservation violated: leaves sum to {sum}, tree recorded {} \
                 ({internals} splits of rounding slack allowed)",
                self.tallies
            ));
        }
        Ok(())
    }

    /// A deep copy with both arenas rebuilt in the canonical
    /// subtree-clustered order (see [`BinTree::compact`]).
    pub fn compacted_clone(&self) -> BinTree {
        let mut nodes = vec![PackedNode::leaf(0); self.nodes.len()];
        let mut leaves = Vec::with_capacity(self.leaves.len());
        let mut next = 1usize;
        let mut stack = vec![(0u32, 0usize)];
        while let Some((src, dst)) = stack.pop() {
            let node = self.nodes[src as usize];
            if node.is_leaf() {
                nodes[dst] = PackedNode::leaf(leaves.len() as u32);
                leaves.push(self.leaves[node.payload() as usize]);
            } else {
                let first = node.payload();
                let pair = next;
                next += 2;
                nodes[dst] = PackedNode::internal(node.axis(), pair as u32);
                stack.push((first + 1, pair + 1));
                stack.push((first, pair));
            }
        }
        BinTree {
            nodes,
            leaves,
            config: self.config,
            tallies: self.tallies,
        }
    }

    /// Rebuilds both arenas in the canonical subtree-clustered order: child
    /// pairs are laid out in depth-first discovery order, so every subtree
    /// occupies a contiguous arena span and a coherent run of lookups walks
    /// memory nearly sequentially. Cold slots are re-numbered into the same
    /// traversal order.
    ///
    /// Purely a layout operation: lookups, tallies, splits and exports are
    /// unaffected ([`BinTree::export_nodes`] already serializes in this
    /// canonical order regardless of arena history). Any outstanding
    /// [`LeafCursor`] into this tree is invalidated — engines only compact
    /// at batch boundaries, where cursors are reset anyway.
    pub fn compact(&mut self) {
        *self = self.compacted_clone();
    }

    /// Flat snapshot of the tree for the answer-file codec: internal nodes
    /// as `(axis, child_lo, child_hi)`, leaves as stats, in the *canonical*
    /// subtree-clustered order — a pure function of the logical tree, so two
    /// trees with the same tally history export identically regardless of
    /// their arena histories (in-place growth, decode, or compaction). That
    /// purity is what keeps resumed solves byte-identical to uninterrupted
    /// ones. See `photon-core::answer` for the byte format.
    pub fn export_nodes(&self) -> Vec<ExportNode> {
        let mut out = vec![ExportNode::Leaf(LeafStats::default()); self.nodes.len()];
        let mut next = 1usize;
        let mut stack = vec![(0u32, 0usize)];
        while let Some((src, dst)) = stack.pop() {
            let node = self.nodes[src as usize];
            if node.is_leaf() {
                out[dst] = ExportNode::Leaf(self.leaves[node.payload() as usize]);
            } else {
                let first = node.payload();
                let pair = next;
                next += 2;
                out[dst] = ExportNode::Internal {
                    axis: node.axis(),
                    children: [pair as u32, pair as u32 + 1],
                };
                stack.push((first + 1, pair + 1));
                stack.push((first, pair));
            }
        }
        out
    }

    /// Rebuilds a tree from an export produced by [`BinTree::export_nodes`]
    /// (the nodes are re-numbered into the canonical arena order, whatever
    /// order they arrive in). Returns `None` if the node graph is malformed:
    /// a child index out of range, a node referenced twice (shared child or
    /// cycle), or a node unreachable from the root.
    pub fn from_export(nodes: Vec<ExportNode>, config: SplitConfig) -> Option<BinTree> {
        if nodes.is_empty() {
            return None;
        }
        let n = nodes.len();
        let mut packed = vec![PackedNode::leaf(0); n];
        let mut leaves = Vec::with_capacity(n / 2 + 1);
        let mut tallies = 0u64;
        let mut visited = vec![false; n];
        let mut next = 1usize;
        let mut stack = vec![(0usize, 0usize)];
        while let Some((src, dst)) = stack.pop() {
            if visited[src] {
                return None;
            }
            visited[src] = true;
            match nodes[src] {
                ExportNode::Leaf(s) => {
                    packed[dst] = PackedNode::leaf(leaves.len() as u32);
                    tallies += s.n_total;
                    leaves.push(s);
                }
                ExportNode::Internal { axis, children } => {
                    if children[0] as usize >= n || children[1] as usize >= n {
                        return None;
                    }
                    let pair = next;
                    next += 2;
                    packed[dst] = PackedNode::internal(axis, pair as u32);
                    stack.push((children[1] as usize, pair + 1));
                    stack.push((children[0] as usize, pair));
                }
            }
        }
        if visited.iter().any(|&v| !v) {
            return None;
        }
        Some(BinTree {
            nodes: packed,
            leaves,
            config,
            tallies,
        })
    }
}

/// Cache of the last leaf a run of tallies landed in, used by
/// [`BinTree::tally_with`]/[`BinTree::tally_run`] to skip the root descent
/// for coherent runs. A cursor is only meaningful against the tree that
/// populated it, *in the arena layout that populated it*: a split or a
/// [`BinTree::compact`] invalidates it, which is why engines reset cursors
/// at batch boundaries and only compact there.
#[derive(Clone, Copy, Debug, Default)]
pub struct LeafCursor {
    /// `(arena index, leaf box, depth)` of the previous tally's leaf, or
    /// `None` right after that leaf split.
    cached: Option<(u32, BinRange, u16)>,
}

impl LeafCursor {
    /// A cursor with no cached leaf: the first tally descends from the root.
    pub fn new() -> Self {
        LeafCursor::default()
    }
}

/// Serializable node snapshot (see [`BinTree::export_nodes`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ExportNode {
    /// A leaf with its statistics.
    Leaf(LeafStats),
    /// An internal split node.
    Internal {
        /// Split axis.
        axis: Axis,
        /// Arena indices of the two children.
        children: [u32; 2],
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_rng::{Lcg48, PhotonRng};

    fn uniform_point(rng: &mut Lcg48) -> BinPoint {
        BinPoint::new(
            rng.next_f64(),
            rng.next_f64(),
            rng.next_f64() * TAU,
            rng.next_f64(),
        )
    }

    #[test]
    fn packed_node_is_at_most_eight_bytes() {
        // The compile-time assert above enforces this too; keep a runtime
        // witness so the constraint shows up in test listings.
        assert!(std::mem::size_of::<PackedNode>() <= 8);
        let internal = PackedNode::internal(Axis::RSq, 0xDEAD_BEEF);
        assert!(!internal.is_leaf());
        assert_eq!(internal.axis(), Axis::RSq);
        assert_eq!(internal.payload(), 0xDEAD_BEEF);
        let leaf = PackedNode::leaf(u32::MAX);
        assert!(leaf.is_leaf());
        assert_eq!(leaf.payload(), u32::MAX);
    }

    #[test]
    fn root_range_measures() {
        let r = BinRange::full();
        assert!((r.area_fraction() - 1.0).abs() < 1e-12);
        assert!((r.solid_angle_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn range_split_halves_measure() {
        let r = BinRange::full();
        for axis in Axis::ALL {
            let (a, b) = r.split(axis);
            let total = a.area_fraction() * a.solid_angle_fraction()
                + b.area_fraction() * b.solid_angle_fraction();
            assert!((total - 1.0).abs() < 1e-12, "axis {axis:?}");
        }
    }

    #[test]
    fn uniform_data_rarely_splits() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(21);
        for _ in 0..20_000 {
            tree.tally(&uniform_point(&mut rng), Rgb::WHITE);
        }
        // 4 axes tested per tally; a few false splits are expected but the
        // tree must stay tiny.
        assert!(tree.leaf_count() < 32, "leaves = {}", tree.leaf_count());
    }

    #[test]
    fn concentrated_data_splits_on_the_right_axis() {
        // All photons in s < 0.1: the tree must split on S, repeatedly.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(22);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.s *= 0.1;
            tree.tally(&p, Rgb::WHITE);
        }
        assert!(tree.leaf_count() > 3);
        // The populated fine leaves must lie at small s.
        let mut hot_leaves = 0;
        tree.for_each_leaf(|range, stats| {
            if stats.n_total > 1000 {
                hot_leaves += 1;
                assert!(range.lo[0] < 0.1, "hot leaf outside gradient: {range:?}");
            }
        });
        assert!(hot_leaves >= 1);
    }

    #[test]
    fn angular_concentration_splits_angular_axes() {
        // Mirror-like surface: all directions near r_sq = 1 (grazing) in a
        // narrow theta band. Position is uniform. Expect theta/r_sq splits.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(23);
        for _ in 0..20_000 {
            let p = BinPoint::new(
                rng.next_f64(),
                rng.next_f64(),
                0.1 + 0.05 * rng.next_f64(),
                0.9 + 0.1 * rng.next_f64(),
            );
            tree.tally(&p, Rgb::WHITE);
        }
        let mut angular_splits = 0;
        let mut spatial_splits = 0;
        for n in tree.export_nodes() {
            if let ExportNode::Internal { axis, .. } = n {
                match axis {
                    Axis::Theta | Axis::RSq => angular_splits += 1,
                    _ => spatial_splits += 1,
                }
            }
        }
        assert!(
            angular_splits > spatial_splits,
            "angular {angular_splits} vs spatial {spatial_splits}"
        );
    }

    #[test]
    fn tally_conservation_across_splits() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(24);
        let n = 30_000u64;
        for _ in 0..n {
            let mut p = uniform_point(&mut rng);
            p.t = p.t * p.t; // gradient in t
            tree.tally(&p, Rgb::new(0.5, 0.25, 0.125));
        }
        assert_eq!(tree.tallies(), n);
        let mut sum = 0u64;
        let mut rgb_sum = Rgb::BLACK;
        let mut leaf_count = 0;
        tree.for_each_leaf(|_, s| {
            sum += s.n_total;
            rgb_sum += s.rgb;
            leaf_count += 1;
        });
        assert_eq!(leaf_count, tree.leaf_count());
        // Exact count conservation; proportional rounding can drift by at
        // most one photon per split.
        let drift = sum.abs_diff(n);
        assert!(drift <= tree.node_count() as u64 / 2, "drift {drift}");
        assert!((rgb_sum.r - 0.5 * n as f64).abs() / (0.5 * n as f64) < 1e-9);
    }

    #[test]
    fn lookup_finds_populated_leaf() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(25);
        for _ in 0..10_000 {
            let mut p = uniform_point(&mut rng);
            p.s *= 0.25;
            tree.tally(&p, Rgb::WHITE);
        }
        let (stats, range) = tree.lookup(&BinPoint::new(0.1, 0.5, 1.0, 0.5));
        assert!(range.contains(&BinPoint::new(0.1, 0.5, 1.0, 0.5)));
        assert!(stats.n_total > 0);
    }

    #[test]
    fn max_depth_is_respected() {
        let cfg = SplitConfig {
            max_depth: 3,
            ..SplitConfig::default()
        };
        let mut tree = BinTree::new(cfg);
        let mut rng = Lcg48::new(26);
        for _ in 0..100_000 {
            // Pathological: everything at nearly the same point.
            let p = BinPoint::new(
                0.001 * rng.next_f64(),
                0.001 * rng.next_f64(),
                0.001 * rng.next_f64(),
                0.001 * rng.next_f64(),
            );
            tree.tally(&p, Rgb::WHITE);
        }
        assert!(tree.max_depth() <= 3);
        assert!(tree.leaf_count() <= 16);
    }

    #[test]
    fn export_round_trip() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(27);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.r_sq = p.r_sq.powi(3);
            tree.tally(&p, Rgb::new(1.0, 0.5, 0.2));
        }
        let export = tree.export_nodes();
        let rebuilt = BinTree::from_export(export, SplitConfig::default()).unwrap();
        assert_eq!(rebuilt.leaf_count(), tree.leaf_count());
        assert_eq!(rebuilt.tallies(), {
            let mut s = 0;
            tree.for_each_leaf(|_, l| s += l.n_total);
            s
        });
        // Lookups agree everywhere.
        for _ in 0..100 {
            let p = uniform_point(&mut rng);
            let (a, ra) = tree.lookup(&p);
            let (b, rb) = rebuilt.lookup(&p);
            assert_eq!(a.n_total, b.n_total);
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn export_is_a_pure_function_of_the_logical_tree() {
        // The canonical export order must not depend on arena history:
        // a rebuilt tree (canonical layout) and the original (in-place
        // growth layout) export the identical vector — the property that
        // keeps resumed solves byte-identical to uninterrupted ones.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(31);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.s = p.s.powi(2);
            tree.tally(&p, Rgb::new(0.3, 0.6, 0.9));
        }
        let export = tree.export_nodes();
        let rebuilt = BinTree::from_export(export.clone(), SplitConfig::default()).unwrap();
        assert_eq!(rebuilt.export_nodes(), export);
    }

    #[test]
    fn compact_is_invisible_to_exports_and_lookups() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(32);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.t = p.t.powi(3);
            tree.tally(&p, Rgb::new(0.7, 0.2, 0.4));
        }
        let export_before = tree.export_nodes();
        let mut compacted = tree.clone();
        compacted.compact();
        compacted.validate().unwrap();
        assert_eq!(compacted.export_nodes(), export_before);
        assert_eq!(compacted.leaf_count(), tree.leaf_count());
        assert_eq!(compacted.tallies(), tree.tallies());
        assert_eq!(compacted.max_depth(), tree.max_depth());
        for _ in 0..200 {
            let p = uniform_point(&mut rng);
            let (a, ra) = tree.lookup(&p);
            let (b, rb) = compacted.lookup(&p);
            assert_eq!(a, b);
            assert_eq!(ra, rb);
        }
        // Tallying after a compaction continues bit-identically.
        for _ in 0..5_000 {
            let mut p = uniform_point(&mut rng);
            p.t = p.t.powi(3);
            let rgb = Rgb::new(rng.next_f64(), 0.5, 0.25);
            assert_eq!(tree.tally(&p, rgb), compacted.tally(&p, rgb));
        }
        assert_eq!(tree.export_nodes(), compacted.export_nodes());
    }

    #[test]
    fn compact_clusters_subtrees_contiguously() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(33);
        for _ in 0..30_000 {
            let mut p = uniform_point(&mut rng);
            p.s = p.s.powi(3);
            p.r_sq = p.r_sq.powi(2);
            tree.tally(&p, Rgb::WHITE);
        }
        tree.compact();
        // After compaction the arena equals the canonical export order, in
        // which every internal's two child subtrees together occupy one
        // contiguous index span starting at the (adjacent) child pair.
        let export = tree.export_nodes();
        fn span(export: &[ExportNode], idx: usize) -> (usize, usize, usize) {
            match export[idx] {
                ExportNode::Leaf(_) => (idx, idx, 1),
                ExportNode::Internal { children, .. } => {
                    assert_eq!(children[1], children[0] + 1, "pair not adjacent");
                    let a = span(export, children[0] as usize);
                    let b = span(export, children[1] as usize);
                    let (min, max, count) = (a.0.min(b.0), a.1.max(b.1), a.2 + b.2);
                    assert_eq!(min, children[0] as usize, "pair region starts late");
                    assert_eq!(max - min + 1, count, "pair region not contiguous");
                    // The full subtree adds this node's own (earlier) slot.
                    (idx.min(min), max, count + 1)
                }
            }
        }
        let (min, max, count) = span(&export, 0);
        assert_eq!((min, max, count), (0, export.len() - 1, export.len()));
    }

    #[test]
    fn validate_rejects_corrupt_arenas() {
        // Hand-build broken trees (test-only: the module can reach the
        // private arenas) and check each invariant trips.
        let good = BinTree::new(SplitConfig::default());
        good.validate().unwrap();

        // Two packed leaves naming the same cold slot.
        let mut shared_slot = BinTree::new(SplitConfig::default());
        shared_slot.nodes = vec![
            PackedNode::internal(Axis::S, 1),
            PackedNode::leaf(0),
            PackedNode::leaf(0),
        ];
        shared_slot.leaves = vec![LeafStats::default()];
        let err = shared_slot.validate().unwrap_err();
        assert!(err.contains("referenced twice") || err.contains("not a binary tree"));

        // An orphan cold slot nothing references.
        let mut orphan = BinTree::new(SplitConfig::default());
        orphan.leaves.push(LeafStats::default());
        assert!(orphan.validate().unwrap_err().contains("orphan"));

        // A child pair pointing past the arena.
        let mut oob = BinTree::new(SplitConfig::default());
        oob.nodes = vec![PackedNode::internal(Axis::T, 7)];
        oob.leaves = vec![];
        assert!(oob.validate().unwrap_err().contains("out of range"));

        // Tally conservation: counter disagrees with the leaf totals.
        let mut skewed = BinTree::new(SplitConfig::default());
        skewed.tallies = 100;
        assert!(skewed.validate().unwrap_err().contains("conservation"));
    }

    #[test]
    fn memory_bytes_counts_both_arenas() {
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(34);
        for _ in 0..20_000 {
            let mut p = uniform_point(&mut rng);
            p.s *= 0.05;
            tree.tally(&p, Rgb::WHITE);
        }
        assert!(tree.leaf_count() > 1, "need a refined tree");
        let nodes = tree.node_bytes();
        let leaves = tree.leaf_bytes();
        assert!(nodes >= tree.node_count() * 8);
        assert!(leaves >= tree.leaf_count() as usize * std::mem::size_of::<LeafStats>());
        assert_eq!(
            tree.memory_bytes(),
            nodes + leaves + std::mem::size_of::<BinTree>()
        );
    }

    #[test]
    fn from_export_rejects_bad_children() {
        let bad = vec![ExportNode::Internal {
            axis: Axis::S,
            children: [5, 6],
        }];
        assert!(BinTree::from_export(bad, SplitConfig::default()).is_none());
        assert!(BinTree::from_export(vec![], SplitConfig::default()).is_none());
        // A shared child (diamond) is not a tree.
        let diamond = vec![
            ExportNode::Internal {
                axis: Axis::S,
                children: [1, 1],
            },
            ExportNode::Leaf(LeafStats::default()),
        ];
        assert!(BinTree::from_export(diamond, SplitConfig::default()).is_none());
        // An unreachable node is rejected rather than silently dropped (it
        // would change the re-encoded byte stream).
        let unreachable = vec![
            ExportNode::Leaf(LeafStats::default()),
            ExportNode::Leaf(LeafStats::default()),
        ];
        assert!(BinTree::from_export(unreachable, SplitConfig::default()).is_none());
    }

    #[test]
    fn cursor_tallies_match_plain_tallies_bit_for_bit() {
        // Same stream through tally() and tally_with() must build identical
        // trees — including on adversarial streams with long same-leaf runs
        // and points exactly on bin boundaries.
        let mut rng = Lcg48::new(29);
        let mut points = Vec::new();
        for i in 0..30_000u32 {
            let p = match i % 5 {
                // Clustered: long same-leaf runs exercise the cache-hit path.
                0 | 1 => BinPoint::new(
                    0.01 * rng.next_f64(),
                    0.01 * rng.next_f64(),
                    rng.next_f64(),
                    rng.next_f64(),
                ),
                // Exact mid/edge coordinates exercise the half-open test.
                2 => BinPoint::new(0.5, 0.25, 0.0, 1.0),
                _ => uniform_point(&mut rng),
            };
            points.push(p);
        }
        let mut plain = BinTree::new(SplitConfig::default());
        let mut cursed = BinTree::new(SplitConfig::default());
        let mut cursor = LeafCursor::new();
        for p in &points {
            let a = plain.tally(p, Rgb::new(0.9, 0.5, 0.1));
            let b = cursed.tally_with(p, Rgb::new(0.9, 0.5, 0.1), &mut cursor);
            assert_eq!(a, b, "split decisions diverged");
        }
        assert_eq!(plain.export_nodes(), cursed.export_nodes());
    }

    #[test]
    fn tally_run_matches_sequential_tallies() {
        let mut rng = Lcg48::new(30);
        let recs: Vec<(BinPoint, Rgb)> = (0..20_000)
            .map(|_| {
                let mut p = uniform_point(&mut rng);
                p.s = p.s.powi(3);
                (p, Rgb::new(rng.next_f64(), 0.5, 0.25))
            })
            .collect();
        let mut one_by_one = BinTree::new(SplitConfig::default());
        let mut splits_seq = 0u64;
        for (p, rgb) in &recs {
            splits_seq += u64::from(one_by_one.tally(p, *rgb));
        }
        let mut run = BinTree::new(SplitConfig::default());
        let splits_run = run.tally_run(recs.iter().map(|(p, rgb)| (p, *rgb)));
        assert_eq!(splits_seq, splits_run);
        assert_eq!(one_by_one.export_nodes(), run.export_nodes());
        assert_eq!(one_by_one.tallies(), run.tallies());
    }

    #[test]
    fn memory_grows_sublinearly_once_refined() {
        // Fig 5.4's qualitative claim: after initial buildup the forest grows
        // much more slowly than the photon count.
        let mut tree = BinTree::new(SplitConfig::default());
        let mut rng = Lcg48::new(28);
        let tally_n = |tree: &mut BinTree, rng: &mut Lcg48, n: u64| {
            for _ in 0..n {
                let mut p = uniform_point(rng);
                p.s = p.s.powi(2);
                p.t = p.t.powi(2);
                tree.tally(&p, Rgb::WHITE);
            }
        };
        tally_n(&mut tree, &mut rng, 20_000);
        let leaves_early = tree.leaf_count() as f64;
        tally_n(&mut tree, &mut rng, 180_000); // 10x total photons
        let leaves_late = tree.leaf_count() as f64;
        // Sublinear: 10x the photons must grow the forest by strictly less
        // than 10x (bins per photon falls as refinement converges).
        assert!(
            leaves_late / leaves_early < 8.0,
            "10x photons grew bins {leaves_early} -> {leaves_late}"
        );
    }
}
