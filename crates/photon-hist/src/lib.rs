//! Adaptive histogramming for Monte Carlo light transport.
//!
//! This crate implements the statistical heart of Snell's *Photon* algorithm:
//!
//! * [`stats`] — the splitting criterion (dissertation ch. 3, Fig 3.5): a bin
//!   is hypothesized to be uniform; each tallied point also records which
//!   *half* of the bin it fell in; when the halves differ by more than 3σ of
//!   the binomial null distribution, the hypothesis is rejected and the bin
//!   splits. 3σ gives 99.7 % confidence, trading a few unnecessary bins for
//!   refinement that tracks the intensity gradient.
//! * [`adaptive1d`] — the one-dimensional adaptive histogram used to discover
//!   an unknown curve (ch. 3, Figs 3.2–3.4), plus a fixed-width histogram for
//!   comparison.
//! * [`bintree`] — the four-dimensional bin trees of ch. 4 (Figs 4.5/4.6):
//!   each scene polygon carries a tree over `(s, t, θ, r²)` — bilinear
//!   position on the patch, cylindrical azimuth, and squared projected radius
//!   of the reflection direction. Color rides along as an unsubdivided fifth
//!   dimension. Leaves keep speculative per-axis half-counts so the split
//!   chooses the axis with the steepest gradient.

#![deny(missing_docs)]

pub mod adaptive1d;
pub mod bintree;
pub mod stats;

pub use adaptive1d::{AdaptiveHistogram1D, FixedHistogram1D};
pub use bintree::{
    Axis, BinPoint, BinRange, BinTree, ExportNode, LeafCursor, LeafStats, SplitConfig,
};
pub use stats::{split_excess, SplitRule};
