//! One-dimensional histograms: fixed-width and adaptive (splitting).
//!
//! These are the pedagogical structures of dissertation ch. 3 (Figs 3.2–3.5)
//! and the reference implementation of Gustafson's splitting scheme, which
//! the 4-D bin trees generalize. The adaptive histogram starts with a single
//! interval and, as points arrive, splits any bin whose two halves are
//! statistically different (3σ binomial test), concentrating resolution where
//! the sampled density has steep gradients.

use crate::stats::SplitRule;

/// Fixed-width histogram over `[lo, hi)` — the strawman of Fig 3.2.
#[derive(Clone, Debug)]
pub struct FixedHistogram1D {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl FixedHistogram1D {
    /// Creates a histogram with `nbins` equal bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0);
        FixedHistogram1D {
            lo,
            hi,
            counts: vec![0; nbins],
            total: 0,
        }
    }

    /// Tallies a sample; out-of-range samples are ignored.
    pub fn tally(&mut self, x: f64) {
        if x < self.lo || x >= self.hi {
            return;
        }
        let f = (x - self.lo) / (self.hi - self.lo);
        let i = ((f * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
        self.counts[i] += 1;
        self.total += 1;
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total tallied samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Estimated probability density at bin centers: `(center, density)`.
    pub fn density(&self) -> Vec<(f64, f64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let center = self.lo + (i as f64 + 0.5) * w;
                let d = if self.total == 0 {
                    0.0
                } else {
                    c as f64 / (self.total as f64 * w)
                };
                (center, d)
            })
            .collect()
    }
}

/// One bin of the adaptive histogram.
#[derive(Clone, Debug)]
struct Bin1D {
    lo: f64,
    hi: f64,
    /// Count in the lower half `[lo, mid)`.
    left: u32,
    /// Count in the upper half `[mid, hi)`.
    right: u32,
}

impl Bin1D {
    fn count(&self) -> u64 {
        (self.left + self.right) as u64
    }
    fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Adaptive (splitting) histogram over `[lo, hi)` — Figs 3.4/3.5.
///
/// Bins are kept in a sorted `Vec`; splits insert in place. The structure is
/// intentionally simple — the 4-D production version lives in
/// [`crate::bintree`].
#[derive(Clone, Debug)]
pub struct AdaptiveHistogram1D {
    bins: Vec<Bin1D>,
    rule: SplitRule,
    min_width: f64,
    total: u64,
    splits: u64,
}

impl AdaptiveHistogram1D {
    /// Creates the histogram as a single bin over `[lo, hi)`.
    ///
    /// `min_width` bounds refinement so adversarial point streams cannot
    /// split forever.
    pub fn new(lo: f64, hi: f64, rule: SplitRule, min_width: f64) -> Self {
        assert!(hi > lo);
        AdaptiveHistogram1D {
            bins: vec![Bin1D {
                lo,
                hi,
                left: 0,
                right: 0,
            }],
            rule,
            min_width,
            total: 0,
            splits: 0,
        }
    }

    /// Index of the bin containing `x` (bins are sorted and contiguous).
    fn find(&self, x: f64) -> Option<usize> {
        if x < self.bins[0].lo || x >= self.bins[self.bins.len() - 1].hi {
            return None;
        }
        // Binary search on bin lower bounds.
        let mut lo = 0usize;
        let mut hi = self.bins.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bins[mid].lo <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(lo)
    }

    /// Tallies a sample, splitting the containing bin if its halves are
    /// statistically different. Out-of-range samples are ignored.
    pub fn tally(&mut self, x: f64) {
        let Some(i) = self.find(x) else { return };
        self.total += 1;
        {
            let bin = &mut self.bins[i];
            if x < bin.mid() {
                bin.left += 1;
            } else {
                bin.right += 1;
            }
        }
        let bin = &self.bins[i];
        if bin.hi - bin.lo > 2.0 * self.min_width && self.rule.should_split(bin.left, bin.right) {
            let (lo, hi, mid) = (bin.lo, bin.hi, bin.mid());
            let (l, r) = (bin.left, bin.right);
            // Daughters restart their half-statistics; the observed
            // half-counts become their (exact) totals, recorded by seeding
            // both halves evenly — the uniform hypothesis *within* each
            // daughter is what the next round of statistics will test.
            let left_bin = Bin1D {
                lo,
                hi: mid,
                left: l / 2,
                right: l - l / 2,
            };
            let right_bin = Bin1D {
                lo: mid,
                hi,
                left: r / 2,
                right: r - r / 2,
            };
            self.bins[i] = left_bin;
            self.bins.insert(i + 1, right_bin);
            self.splits += 1;
        }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// True when the histogram still has its single initial bin.
    pub fn is_empty(&self) -> bool {
        self.bins.len() == 1 && self.total == 0
    }

    /// Total tallied samples (conserved across splits).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of splits performed.
    pub fn splits(&self) -> u64 {
        self.splits
    }

    /// Bin edges and counts: `(lo, hi, count)`.
    pub fn bins(&self) -> Vec<(f64, f64, u64)> {
        self.bins.iter().map(|b| (b.lo, b.hi, b.count())).collect()
    }

    /// Estimated density at bin centers: `(center, width, density)`.
    pub fn density(&self) -> Vec<(f64, f64, f64)> {
        self.bins
            .iter()
            .map(|b| {
                let w = b.hi - b.lo;
                let d = if self.total == 0 {
                    0.0
                } else {
                    b.count() as f64 / (self.total as f64 * w)
                };
                (b.mid(), w, d)
            })
            .collect()
    }

    /// Smallest bin width — resolution achieved where the gradient was
    /// steepest.
    pub fn min_bin_width(&self) -> f64 {
        self.bins
            .iter()
            .map(|b| b.hi - b.lo)
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_rng::{Lcg48, PhotonRng};

    #[test]
    fn fixed_histogram_density_integrates_to_one() {
        let mut h = FixedHistogram1D::new(0.0, 1.0, 16);
        let mut rng = Lcg48::new(3);
        for _ in 0..10_000 {
            h.tally(rng.next_f64());
        }
        let w = 1.0 / 16.0;
        let integral: f64 = h.density().iter().map(|(_, d)| d * w).sum();
        assert!((integral - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_histogram_ignores_out_of_range() {
        let mut h = FixedHistogram1D::new(0.0, 1.0, 4);
        h.tally(-0.1);
        h.tally(1.0);
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn adaptive_keeps_one_bin_for_uniform_data() {
        let mut h = AdaptiveHistogram1D::new(0.0, 1.0, SplitRule::default(), 1e-6);
        let mut rng = Lcg48::new(11);
        for _ in 0..20_000 {
            h.tally(rng.next_f64());
        }
        // Uniform data should almost never split (3σ, <1% per test);
        // allow a couple of unlucky splits.
        assert!(h.len() <= 4, "bins = {}", h.len());
    }

    #[test]
    fn adaptive_refines_at_steep_gradient() {
        // Density concentrated in [0, 0.1]: bins should pile up there.
        let mut h = AdaptiveHistogram1D::new(0.0, 1.0, SplitRule::default(), 1e-4);
        let mut rng = Lcg48::new(12);
        for _ in 0..50_000 {
            let x = rng.next_f64();
            // 90% of mass in the first decile.
            let v = if rng.next_f64() < 0.9 { x * 0.1 } else { x };
            h.tally(v);
        }
        assert!(h.len() > 8, "expected refinement, got {} bins", h.len());
        // Finest bins should be inside the high-gradient region.
        let finest = h
            .bins()
            .iter()
            .min_by(|a, b| (a.1 - a.0).partial_cmp(&(b.1 - b.0)).unwrap())
            .cloned()
            .unwrap();
        assert!(finest.0 < 0.2, "finest bin at {:?}", finest);
    }

    #[test]
    fn total_is_conserved_across_splits() {
        let mut h = AdaptiveHistogram1D::new(0.0, 1.0, SplitRule::default(), 1e-6);
        let mut rng = Lcg48::new(13);
        let n = 30_000;
        for _ in 0..n {
            let x = rng.next_f64();
            h.tally(x * x); // quadratic warp -> gradient near 0
        }
        assert_eq!(h.total(), n);
        let sum: u64 = h.bins().iter().map(|b| b.2).sum();
        assert_eq!(sum, n);
        assert!(h.splits() > 0);
    }

    #[test]
    fn bins_remain_sorted_and_contiguous() {
        let mut h = AdaptiveHistogram1D::new(-2.0, 2.0, SplitRule::default(), 1e-6);
        let mut rng = Lcg48::new(14);
        for _ in 0..40_000 {
            // Gaussian-ish via sum of uniforms, clamped into range.
            let g: f64 = (0..4).map(|_| rng.next_f64()).sum::<f64>() - 2.0;
            h.tally(g);
        }
        let bins = h.bins();
        for w in bins.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-12, "bins out of order: {w:?}");
            assert!((w[0].1 - w[1].0).abs() < 1e-12, "gap between bins");
        }
        assert_eq!(bins.first().unwrap().0, -2.0);
        assert_eq!(bins.last().unwrap().1, 2.0);
    }

    #[test]
    fn min_width_bounds_refinement() {
        let mut h = AdaptiveHistogram1D::new(0.0, 1.0, SplitRule::default(), 0.1);
        let mut rng = Lcg48::new(15);
        for _ in 0..100_000 {
            h.tally(rng.next_f64() * 0.01); // everything in one sliver
        }
        assert!(h.min_bin_width() >= 0.1 - 1e-12);
    }

    #[test]
    fn adaptive_density_tracks_known_curve() {
        // Sample from density f(x) = 2x on [0,1] (via inverse CDF sqrt(u));
        // the adaptive estimate at bin centers should approximate 2x.
        let mut h = AdaptiveHistogram1D::new(0.0, 1.0, SplitRule::default(), 1e-4);
        let mut rng = Lcg48::new(16);
        for _ in 0..200_000 {
            h.tally(rng.next_f64().sqrt());
        }
        let mut worst: f64 = 0.0;
        for (center, _w, d) in h.density() {
            if center > 0.2 {
                worst = worst.max((d - 2.0 * center).abs());
            }
        }
        assert!(worst < 0.4, "worst density error {worst}");
    }
}
