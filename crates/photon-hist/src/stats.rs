//! The binomial 3σ split criterion (dissertation ch. 3, Fig 3.5; ch. 4).
//!
//! A bin hypothesized to be uniform receives `n` points, `l` of which land in
//! its left half. Under the null hypothesis the split is binomial with
//! `p = q = 1/2`; for large `n` it is approximated as normal with
//! `σ = sqrt(n·p·q)`. Following the dissertation, `p` is estimated from the
//! *larger* proposed daughter (`p = max(l, n−l)/n`), which widens σ slightly
//! and makes the test more conservative near extreme imbalance. The bin is
//! split when `|l − (n−l)| > k·σ` with `k = 3` by default (99.7 % confidence
//! of a real gradient).

/// Split rule parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SplitRule {
    /// Number of standard deviations the halves must differ by (paper: 3).
    pub sigmas: f64,
    /// Minimum tallies in a bin before the normal approximation (and hence
    /// the test) is trusted.
    pub min_count: u32,
}

impl Default for SplitRule {
    fn default() -> Self {
        // The paper's choices: 3σ, and "a significant number of points";
        // 32 keeps the normal approximation honest without hoarding storage.
        SplitRule {
            sigmas: 3.0,
            min_count: 32,
        }
    }
}

impl SplitRule {
    /// Returns how decisively the `(left, right)` half-counts reject the
    /// uniform hypothesis, as a multiple of the allowed threshold:
    /// values `> 1` mean *split*. Returns 0 when below `min_count`.
    pub fn excess(&self, left: u32, right: u32) -> f64 {
        split_excess(left, right, self.sigmas, self.min_count)
    }

    /// True when the halves are statistically different.
    pub fn should_split(&self, left: u32, right: u32) -> bool {
        self.excess(left, right) > 1.0
    }
}

/// Core of the criterion; see [`SplitRule::excess`].
///
/// The test statistic is the deviation of one half's count from its null
/// mean: `|l − n/2| / σ` with `σ = sqrt(n·p·q)`, `p = max(l,r)/n`. A split
/// fires when the statistic exceeds `k` (= `sigmas`). At `k = 3` a uniform
/// bin is split spuriously with probability ≈ 0.27 % per test — the 99.74 %
/// confidence the dissertation quotes. (Reading the paper's "halves differ
/// by more than 3σ" as `|l − r| > 3σ` instead would reject ~13 % of uniform
/// bins, contradicting its own stated confidence, so the deviation form is
/// the intended one; the two coincide up to the factor `|l − r| = 2·|l − n/2|`.)
///
/// When one half is empty σ is 0; any imbalance with `n ≥ min_count` is then
/// treated as infinitely decisive (the steepest possible gradient).
pub fn split_excess(left: u32, right: u32, sigmas: f64, min_count: u32) -> f64 {
    let n = left + right;
    if n < min_count.max(1) {
        return 0.0;
    }
    let half_dev = left.abs_diff(right) as f64 * 0.5;
    if half_dev == 0.0 {
        return 0.0;
    }
    let nf = n as f64;
    let p = left.max(right) as f64 / nf;
    let q = 1.0 - p;
    let sigma = (nf * p * q).sqrt();
    if sigma == 0.0 {
        // All points in one half: maximal evidence.
        return f64::INFINITY;
    }
    half_dev / (sigmas * sigma)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_halves_never_split() {
        let rule = SplitRule::default();
        assert!(!rule.should_split(500, 500));
        assert!(!rule.should_split(0, 0));
    }

    #[test]
    fn below_min_count_never_splits() {
        let rule = SplitRule::default();
        // Wildly imbalanced but too few samples.
        assert!(!rule.should_split(31, 0));
        assert_eq!(rule.excess(31, 0), 0.0);
    }

    #[test]
    fn extreme_imbalance_splits_at_min_count() {
        let rule = SplitRule::default();
        assert!(rule.should_split(32, 0));
        assert!(rule.excess(32, 0).is_infinite());
    }

    #[test]
    fn paper_figure_3_5_example() {
        // Fig 3.5's spirit: with n = 100 points, a ~1σ imbalance must not
        // split, a >3σ imbalance must.
        // (55, 45): half-deviation 5, sigma = sqrt(100*.55*.45) = 4.97 -> 1.0σ.
        let rule = SplitRule::default();
        assert!(!rule.should_split(55, 45));
        // (66, 34): half-deviation 16, sigma = 4.74 -> 3.4σ.
        assert!(rule.should_split(66, 34));
    }

    #[test]
    fn threshold_scales_with_sigmas() {
        let loose = SplitRule {
            sigmas: 1.0,
            min_count: 32,
        };
        let strict = SplitRule {
            sigmas: 6.0,
            min_count: 32,
        };
        // (60, 40): half-deviation 10, sigma ~ 4.9 -> ~2.0σ.
        assert!(loose.should_split(60, 40));
        assert!(!strict.should_split(60, 40));
    }

    #[test]
    fn excess_is_monotonic_in_imbalance() {
        let rule = SplitRule::default();
        let mut last = 0.0;
        for l in 50..100u32 {
            let e = rule.excess(l, 100 - l);
            assert!(e >= last, "excess should grow with imbalance");
            last = e;
        }
    }

    #[test]
    fn false_positive_rate_is_small_under_uniform_null() {
        // Simulate uniform bins; the 3σ rule should fire rarely (< 1%).
        use photon_rng::{Lcg48, PhotonRng};
        let rule = SplitRule::default();
        let mut rng = Lcg48::new(7);
        let trials = 2000;
        let mut fired = 0;
        for _ in 0..trials {
            let mut l = 0u32;
            let n = 256u32;
            for _ in 0..n {
                if rng.next_f64() < 0.5 {
                    l += 1;
                }
            }
            if rule.should_split(l, n - l) {
                fired += 1;
            }
        }
        let rate = fired as f64 / trials as f64;
        assert!(rate < 0.01, "false positive rate {rate}");
    }

    #[test]
    fn real_gradient_is_detected() {
        // 70/30 split probability is a real gradient; with enough samples
        // the rule must fire.
        use photon_rng::{Lcg48, PhotonRng};
        let rule = SplitRule::default();
        let mut rng = Lcg48::new(8);
        let n = 1024u32;
        let mut l = 0u32;
        for _ in 0..n {
            if rng.next_f64() < 0.7 {
                l += 1;
            }
        }
        assert!(rule.should_split(l, n - l), "l={l}");
    }
}
