//! Property tests on the 4-D bin tree invariants.

use photon_hist::{BinPoint, BinRange, BinTree, SplitConfig};
use photon_math::Rgb;
use proptest::prelude::*;
use std::f64::consts::TAU;

fn arb_point() -> impl Strategy<Value = BinPoint> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..TAU, 0.0f64..1.0)
        .prop_map(|(s, t, th, r)| BinPoint::new(s, t, th, r))
}

/// Point streams with a random warp so some runs have steep gradients.
fn arb_stream() -> impl Strategy<Value = Vec<BinPoint>> {
    (proptest::collection::vec(arb_point(), 100..2000), 1u32..4).prop_map(|(mut pts, warp)| {
        for p in &mut pts {
            p.s = p.s.powi(warp as i32);
            p.r_sq = p.r_sq.powi(warp as i32);
        }
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Total tallies are conserved and leaf measures partition the domain.
    #[test]
    fn tallies_and_measure_conserved(stream in arb_stream()) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::WHITE);
        }
        prop_assert_eq!(tree.tallies(), stream.len() as u64);
        let mut count = 0u64;
        let mut measure = 0.0;
        let mut leaves = 0u32;
        tree.for_each_leaf(|range, stats| {
            count += stats.n_total;
            measure += range.area_fraction() * range.solid_angle_fraction();
            leaves += 1;
        });
        prop_assert_eq!(leaves, tree.leaf_count());
        // Count drift bounded by one photon per split (rounding of the
        // inherited share).
        let drift = count.abs_diff(stream.len() as u64);
        prop_assert!(drift <= tree.node_count() as u64, "drift {}", drift);
        // Leaf 4-D measures tile the unit measure exactly.
        prop_assert!((measure - 1.0).abs() < 1e-9, "measure {}", measure);
    }

    /// Every lookup lands in a leaf whose range contains the query.
    #[test]
    fn lookup_is_consistent(stream in arb_stream(), probe in arb_point()) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::WHITE);
        }
        let (_, range) = tree.lookup(&probe);
        prop_assert!(range.contains(&probe), "{:?} not in {:?}", probe, range);
    }

    /// Export/import round-trips arbitrary trees.
    #[test]
    fn export_round_trip(stream in arb_stream()) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::new(0.3, 0.5, 0.7));
        }
        let rebuilt = BinTree::from_export(tree.export_nodes(), SplitConfig::default())
            .expect("valid export");
        prop_assert_eq!(rebuilt.leaf_count(), tree.leaf_count());
        prop_assert_eq!(rebuilt.max_depth(), tree.max_depth());
    }

    /// Ranges produced by splitting always nest inside their parent.
    #[test]
    fn range_split_nests(axis_idx in 0usize..4) {
        let root = BinRange::full();
        let axis = photon_hist::Axis::from_index(axis_idx);
        let (lo, hi) = root.split(axis);
        for child in [lo, hi] {
            for a in photon_hist::Axis::ALL {
                prop_assert!(child.lo[a as usize] >= root.lo[a as usize] - 1e-12);
                prop_assert!(child.hi[a as usize] <= root.hi[a as usize] + 1e-12);
            }
        }
        prop_assert!((lo.width(axis) - hi.width(axis)).abs() < 1e-12);
    }
}
