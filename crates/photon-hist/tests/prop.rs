//! Property tests on the 4-D bin tree invariants.

use photon_hist::{Axis, BinPoint, BinRange, BinTree, ExportNode, LeafStats, SplitConfig};
use photon_math::Rgb;
use proptest::prelude::*;
use std::collections::VecDeque;
use std::f64::consts::TAU;

fn arb_point() -> impl Strategy<Value = BinPoint> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..TAU, 0.0f64..1.0)
        .prop_map(|(s, t, th, r)| BinPoint::new(s, t, th, r))
}

/// An arbitrary logical tree shape with a distinguishing marker per leaf.
#[derive(Clone, Debug)]
enum Shape {
    Leaf(u32),
    Split(usize, Box<Shape>, Box<Shape>),
}

/// Builds a shape by consuming one `(axis, marker, coin)` token per node:
/// the coin decides split-vs-leaf (biased to split, capped at depth 6), and
/// an exhausted stream forces a leaf — so the token count bounds the tree.
fn build_shape<I: Iterator<Item = (usize, u32, u32)>>(tokens: &mut I, depth: u32) -> Shape {
    match tokens.next() {
        None => Shape::Leaf(depth),
        Some((axis, marker, coin)) => {
            if depth < 6 && coin % 100 < 60 {
                let lo = build_shape(tokens, depth + 1);
                let hi = build_shape(tokens, depth + 1);
                Shape::Split(axis, Box::new(lo), Box::new(hi))
            } else {
                Shape::Leaf(marker)
            }
        }
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    proptest::collection::vec((0usize..4, 0u32..1_000_000, 0u32..100), 1..64)
        .prop_map(|tokens| build_shape(&mut tokens.into_iter(), 0))
}

/// Recognizable, per-marker-unique leaf statistics.
fn marked_stats(marker: u32) -> LeafStats {
    LeafStats {
        n_total: marker as u64,
        rgb: Rgb::new(marker as f64, (marker / 3) as f64, 0.25),
        stat_n: marker % 97,
        left: [marker % 7, marker % 11, marker % 13, marker % 17],
    }
}

/// Serializes a shape in *breadth-first* arena order — a valid layout that
/// (past depth one) differs from the canonical DFS-pair order, so importing
/// it exercises the renumbering path, not the identity.
fn bfs_layout(shape: &Shape) -> Vec<ExportNode> {
    let placeholder = ExportNode::Leaf(LeafStats::default());
    let mut nodes = vec![placeholder];
    let mut queue: VecDeque<(&Shape, usize)> = VecDeque::from([(shape, 0)]);
    while let Some((s, at)) = queue.pop_front() {
        match s {
            Shape::Leaf(marker) => nodes[at] = ExportNode::Leaf(marked_stats(*marker)),
            Shape::Split(axis, lo, hi) => {
                let lo_at = nodes.len();
                nodes.push(placeholder);
                let hi_at = nodes.len();
                nodes.push(placeholder);
                nodes[at] = ExportNode::Internal {
                    axis: Axis::from_index(*axis),
                    children: [lo_at as u32, hi_at as u32],
                };
                queue.push_back((lo, lo_at));
                queue.push_back((hi, hi_at));
            }
        }
    }
    nodes
}

/// Leaf markers in depth-first (lower-child-first) order — the order
/// [`BinTree::for_each_leaf`] visits.
fn dfs_leaves(shape: &Shape, out: &mut Vec<u32>) {
    match shape {
        Shape::Leaf(marker) => out.push(*marker),
        Shape::Split(_, lo, hi) => {
            dfs_leaves(lo, out);
            dfs_leaves(hi, out);
        }
    }
}

/// Reference lookup: descend the raw [`ExportNode`] vec with the same
/// midpoint rule the tree documents, independent of the SoA arenas.
fn naive_lookup(nodes: &[ExportNode], p: &BinPoint) -> (LeafStats, BinRange) {
    let mut idx = 0usize;
    let mut range = BinRange::full();
    loop {
        match nodes[idx] {
            ExportNode::Leaf(stats) => return (stats, range),
            ExportNode::Internal { axis, children } => {
                let (lo, hi) = range.split(axis);
                if p.coord(axis) < range.mid(axis) {
                    idx = children[0] as usize;
                    range = lo;
                } else {
                    idx = children[1] as usize;
                    range = hi;
                }
            }
        }
    }
}

/// Point streams with a random warp so some runs have steep gradients.
fn arb_stream() -> impl Strategy<Value = Vec<BinPoint>> {
    (proptest::collection::vec(arb_point(), 100..2000), 1u32..4).prop_map(|(mut pts, warp)| {
        for p in &mut pts {
            p.s = p.s.powi(warp as i32);
            p.r_sq = p.r_sq.powi(warp as i32);
        }
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Total tallies are conserved and leaf measures partition the domain.
    #[test]
    fn tallies_and_measure_conserved(stream in arb_stream()) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::WHITE);
        }
        prop_assert_eq!(tree.tallies(), stream.len() as u64);
        let mut count = 0u64;
        let mut measure = 0.0;
        let mut leaves = 0u32;
        tree.for_each_leaf(|range, stats| {
            count += stats.n_total;
            measure += range.area_fraction() * range.solid_angle_fraction();
            leaves += 1;
        });
        prop_assert_eq!(leaves, tree.leaf_count());
        // Count drift bounded by one photon per split (rounding of the
        // inherited share).
        let drift = count.abs_diff(stream.len() as u64);
        prop_assert!(drift <= tree.node_count() as u64, "drift {}", drift);
        // Leaf 4-D measures tile the unit measure exactly.
        prop_assert!((measure - 1.0).abs() < 1e-9, "measure {}", measure);
    }

    /// Every lookup lands in a leaf whose range contains the query.
    #[test]
    fn lookup_is_consistent(stream in arb_stream(), probe in arb_point()) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::WHITE);
        }
        let (_, range) = tree.lookup(&probe);
        prop_assert!(range.contains(&probe), "{:?} not in {:?}", probe, range);
    }

    /// Export/import round-trips arbitrary trees.
    #[test]
    fn export_round_trip(stream in arb_stream()) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::new(0.3, 0.5, 0.7));
        }
        let rebuilt = BinTree::from_export(tree.export_nodes(), SplitConfig::default())
            .expect("valid export");
        prop_assert_eq!(rebuilt.leaf_count(), tree.leaf_count());
        prop_assert_eq!(rebuilt.max_depth(), tree.max_depth());
    }

    /// Any valid node layout — here breadth-first, which disagrees with the
    /// canonical arena order past depth one — imports into the SoA arenas
    /// with the logical tree intact, and re-exporting is idempotent (the
    /// export is the canonical form).
    #[test]
    fn arbitrary_layouts_roundtrip_through_the_soa_arenas(shape in arb_shape()) {
        let tree = BinTree::from_export(bfs_layout(&shape), SplitConfig::default())
            .expect("BFS layout is a valid tree");
        let mut want = Vec::new();
        dfs_leaves(&shape, &mut want);
        let mut got = Vec::new();
        tree.for_each_leaf(|_, stats| got.push(*stats));
        prop_assert_eq!(got.len(), want.len());
        for (g, marker) in got.iter().zip(&want) {
            prop_assert_eq!(*g, marked_stats(*marker));
        }
        // Canonical-form idempotence: importing the export reproduces it.
        let canon = tree.export_nodes();
        let again = BinTree::from_export(canon.clone(), SplitConfig::default())
            .expect("canonical export is valid");
        prop_assert_eq!(again.export_nodes(), canon);
    }

    /// The packed-arena descent agrees with a naive reference descend over
    /// the exported nodes — for uniform probes, the tallied points
    /// themselves, and the closed global upper corner.
    #[test]
    fn lookup_matches_a_naive_reference_descend(
        stream in arb_stream(),
        probes in proptest::collection::vec(arb_point(), 8..33),
    ) {
        let mut tree = BinTree::new(SplitConfig::default());
        for p in &stream {
            tree.tally(p, Rgb::new(0.2, 0.4, 0.8));
        }
        let nodes = tree.export_nodes();
        let corner = BinPoint::new(1.0, 1.0, TAU, 1.0);
        for p in probes.iter().chain(stream.iter().take(16)).chain([&corner]) {
            let (stats, range) = tree.lookup(p);
            let (want_stats, want_range) = naive_lookup(&nodes, p);
            prop_assert_eq!(*stats, want_stats);
            prop_assert_eq!(range, want_range);
        }
    }

    /// Ranges produced by splitting always nest inside their parent.
    #[test]
    fn range_split_nests(axis_idx in 0usize..4) {
        let root = BinRange::full();
        let axis = photon_hist::Axis::from_index(axis_idx);
        let (lo, hi) = root.split(axis);
        for child in [lo, hi] {
            for a in photon_hist::Axis::ALL {
                prop_assert!(child.lo[a as usize] >= root.lo[a as usize] - 1e-12);
                prop_assert!(child.hi[a as usize] <= root.hi[a as usize] + 1e-12);
            }
        }
        prop_assert!((lo.width(axis) - hi.width(axis)).abs() < 1e-12);
    }
}
