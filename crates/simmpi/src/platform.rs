//! Virtual-time cost models of the paper's three platforms.
//!
//! Parameters are calibrated to the *relative* characteristics the
//! dissertation describes, not to absolute 1997 microseconds (EXPERIMENTS.md
//! records the resulting shapes):
//!
//! * **SGI Power Onyx** — shared-memory multiprocessor: negligible latency,
//!   very high bandwidth, fastest per-processor compute.
//! * **SGI Indy cluster** — workstations on 10 Mb/s Ethernet: large
//!   per-message latency, low bandwidth, slower processors. "Communication
//!   overhead and slower processors force the initial time to the right and
//!   reduce performance … although performance is lost, scalability is
//!   increased."
//! * **IBM SP-2** — fast switch but *buffered asynchronous messaging*: each
//!   message costs an extra memory copy + buffer management that can only be
//!   hidden while a rank sends ≤ 1 message per batch (the 2-processor case),
//!   producing the characteristic performance dip from 2 to 4 processors
//!   before clean scaling resumes (Figs 5.12–5.14).

/// Deterministic communication/computation cost model for one platform.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Photon transport-segment rate per processor (segments/second of
    /// virtual time). A segment is one emission or reflection step.
    pub segment_rate: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
    /// Per-byte transfer cost in seconds.
    pub per_byte_s: f64,
    /// Per-message buffer-management + memory-copy cost (SP-2 style
    /// buffered async messaging).
    pub buffer_copy_s: f64,
    /// When true, a rank sending at most one message per exchange overlaps
    /// its communication with computation (cost mostly hidden).
    pub overlap_single_msg: bool,
    /// Fraction of the communication cost that still shows when overlapped.
    pub overlap_residual: f64,
    /// Fixed per-batch bookkeeping cost (queue management, synchronization,
    /// rate measurement). Amortizing this is what drives the adaptive
    /// batch-size controller to grow batches — fastest on the platform with
    /// the cheapest per-photon communication (the paper's Power Onyx column
    /// of Table 5.3 grows past 11k photons/processor).
    pub batch_overhead_s: f64,
}

impl Platform {
    /// SGI Power Onyx (shared-memory) model.
    pub fn power_onyx() -> Platform {
        Platform {
            name: "SGI Power Onyx",
            segment_rate: 30_000.0,
            latency_s: 4e-6,
            per_byte_s: 6e-9, // ~160 MB/s shared bus
            buffer_copy_s: 0.0,
            overlap_single_msg: false,
            overlap_residual: 1.0,
            batch_overhead_s: 12e-3,
        }
    }

    /// SGI Indy cluster (10 Mb/s Ethernet) model.
    pub fn indy_cluster() -> Platform {
        Platform {
            name: "SGI Indy Cluster",
            segment_rate: 18_000.0, // slower workstations
            latency_s: 1.2e-3,      // ~1 ms TCP/Ethernet
            per_byte_s: 9e-7,       // ~1.1 MB/s
            buffer_copy_s: 0.0,
            overlap_single_msg: false,
            overlap_residual: 1.0,
            batch_overhead_s: 6e-3,
        }
    }

    /// IBM SP-2 model (buffered asynchronous messaging).
    pub fn sp2() -> Platform {
        Platform {
            name: "IBM SP-2",
            segment_rate: 26_000.0,
            latency_s: 6e-5,
            per_byte_s: 3e-8, // ~33 MB/s switch
            buffer_copy_s: 7e-4,
            overlap_single_msg: true,
            overlap_residual: 0.08,
            batch_overhead_s: 3e-3,
        }
    }

    /// All three paper platforms.
    pub fn all() -> [Platform; 3] {
        [
            Platform::power_onyx(),
            Platform::indy_cluster(),
            Platform::sp2(),
        ]
    }

    /// Virtual cost for *sending* a set of messages in one exchange:
    /// `sizes` holds the byte length of each (nonempty) outgoing message.
    pub fn send_cost(&self, sizes: &[usize]) -> f64 {
        if sizes.is_empty() {
            return 0.0;
        }
        let raw: f64 = sizes
            .iter()
            .map(|&b| self.latency_s + b as f64 * self.per_byte_s + self.buffer_copy_s)
            .sum();
        if self.overlap_single_msg && sizes.len() <= 1 {
            raw * self.overlap_residual
        } else {
            raw
        }
    }

    /// Virtual cost for *receiving* messages totalling `bytes` in `count`
    /// messages (drain copies; latency was paid by the sender).
    pub fn recv_cost(&self, count: usize, bytes: usize) -> f64 {
        count as f64 * self.buffer_copy_s * 0.5 + bytes as f64 * self.per_byte_s * 0.5
    }

    /// Virtual seconds to trace `segments` photon transport segments on one
    /// processor of this platform, in a scene of `polygons` defining
    /// polygons. The logarithmic factor models octree descent depth; it
    /// reproduces the paper's observation that absolute performance drops
    /// with scene complexity while scalability improves.
    pub fn compute_cost(&self, segments: u64, polygons: usize) -> f64 {
        let depth_factor = 1.0 + 0.35 * ((polygons.max(2) as f64) / 30.0).log2().max(0.0);
        segments as f64 * depth_factor / self.segment_rate
    }

    /// Virtual seconds to process `records` received photon records
    /// (`DetermineBin` + `UpdateBinCount` on the owner): a bin-tree descent
    /// costs about an eighth of a transport segment.
    pub fn tally_cost(&self, records: u64) -> f64 {
        records as f64 / (self.segment_rate * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_is_much_slower_than_onyx() {
        let onyx = Platform::power_onyx();
        let indy = Platform::indy_cluster();
        let msg = [1000usize];
        assert!(indy.send_cost(&msg) > 50.0 * onyx.send_cost(&msg));
        assert!(indy.segment_rate < onyx.segment_rate);
    }

    #[test]
    fn sp2_overlap_hides_single_message_cost() {
        let sp2 = Platform::sp2();
        let one = sp2.send_cost(&[1000]);
        let two = sp2.send_cost(&[1000, 1000]);
        // Two messages cost far more than double one overlapped message:
        // the buffered-async copy can no longer be hidden.
        assert!(two > 5.0 * one, "one {one} two {two}");
    }

    #[test]
    fn onyx_has_no_overlap_cliff() {
        let onyx = Platform::power_onyx();
        let one = onyx.send_cost(&[1000]);
        let two = onyx.send_cost(&[1000, 1000]);
        assert!((two - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn empty_send_is_free() {
        for p in Platform::all() {
            assert_eq!(p.send_cost(&[]), 0.0);
            assert_eq!(p.recv_cost(0, 0), 0.0);
        }
    }

    #[test]
    fn compute_cost_grows_with_scene_complexity() {
        let p = Platform::sp2();
        let small = p.compute_cost(1000, 30);
        let large = p.compute_cost(1000, 2000);
        assert!(large > small * 1.5, "small {small} large {large}");
    }

    #[test]
    fn compute_cost_is_linear_in_segments() {
        let p = Platform::indy_cluster();
        let one = p.compute_cost(1000, 100);
        let ten = p.compute_cost(10_000, 100);
        assert!((ten / one - 10.0).abs() < 1e-9);
    }
}
