//! An in-process message-passing substrate (MPI subset) with virtual-time
//! models of the paper's 1997 platforms.
//!
//! The dissertation runs distributed Photon over MPI on an SGI Power Onyx,
//! a cluster of SGI Indy workstations (Ethernet), and an IBM SP-2 (≤ 64
//! nodes). None of those machines exist anymore, and the repro brief flags
//! MPI bindings as thin — so this crate supplies the substrate
//! (DESIGN.md, substitution #1):
//!
//! * **Real message passing.** Each rank is an OS thread; ranks exchange
//!   real byte buffers over a channel mesh ([`Comm::alltoallv`],
//!   reductions, barriers). The distributed algorithm above runs
//!   unmodified, queues and all.
//! * **Virtual time.** Each rank carries a clock advanced by a deterministic
//!   cost model: compute via [`Comm::advance`], communication inside the
//!   collectives using the [`Platform`] parameters (per-message latency,
//!   per-byte cost, and the SP-2's per-message *buffer copy* that cannot be
//!   overlapped once a rank sends more than one message per batch — the
//!   paper's explanation for the 2→4 processor performance dip). Blocking
//!   collectives synchronize clocks to the maximum, exactly as wall clocks
//!   synchronize at a real barrier.
//!
//! Speedup *shapes* measured on the virtual clock are therefore
//! deterministic and host-independent, while every byte still crosses a real
//! channel (bugs in the messaging layer fail tests, not just models).

#![deny(missing_docs)]

pub mod comm;
pub mod platform;

pub use comm::{run_world, Comm};
pub use platform::Platform;
