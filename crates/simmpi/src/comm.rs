//! The rank runtime: threads, channel mesh, collectives, virtual clocks.

use crate::platform::Platform;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A message on the mesh.
struct Msg {
    src: usize,
    /// Collective sequence number. Ranks advance through collectives in
    /// program order, but a fast rank's collective `k+1` message can arrive
    /// before a slow rank's collective `k` message — receivers stash early
    /// messages instead of treating them as errors.
    seq: u64,
    /// Sender's virtual clock at send time (after send costs).
    t_ready: f64,
    payload: Vec<u8>,
}

/// Per-rank communicator handle (the `MPI_COMM_WORLD` of a run).
pub struct Comm {
    rank: usize,
    size: usize,
    platform: Platform,
    clock: f64,
    seq: u64,
    /// `senders[d]` delivers into rank `d`'s inbox.
    senders: Vec<Sender<Msg>>,
    inbox: Receiver<Msg>,
    /// Messages that arrived ahead of the current collective.
    stash: Vec<Msg>,
    /// Set when any rank panics, so peers fail fast instead of blocking
    /// forever on a message that will never come.
    poisoned: Arc<AtomicBool>,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The platform cost model in force.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Current virtual time of this rank, seconds.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Advances this rank's virtual clock by `seconds` of computation.
    pub fn advance(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock += seconds;
    }

    /// Charges the platform's compute cost for `segments` transport
    /// segments in a `polygons`-polygon scene.
    pub fn charge_compute(&mut self, segments: u64, polygons: usize) {
        self.clock += self.platform.compute_cost(segments, polygons);
    }

    /// The all-to-all personalized exchange at the heart of distributed
    /// Photon (Fig 5.3): `outgoing[d]` goes to rank `d`; returns
    /// `incoming[s]` from every rank `s` (own payload passed through).
    ///
    /// Blocking and clock-synchronizing: afterwards every rank's clock is
    /// `max_over_ranks(clock + send cost) + its own receive cost`.
    pub fn alltoallv(&mut self, outgoing: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        assert_eq!(outgoing.len(), self.size, "one payload per rank required");
        // Send cost covers remote, nonempty messages.
        let remote_sizes: Vec<usize> = outgoing
            .iter()
            .enumerate()
            .filter(|(d, m)| *d != self.rank && !m.is_empty())
            .map(|(_, m)| m.len())
            .collect();
        let t_ready = self.clock + self.platform.send_cost(&remote_sizes);
        let (incoming, max_ready) = self.exchange_raw(outgoing, t_ready);
        let (mut recv_msgs, mut recv_bytes) = (0usize, 0usize);
        for (s, m) in incoming.iter().enumerate() {
            if s != self.rank && !m.is_empty() {
                recv_msgs += 1;
                recv_bytes += m.len();
            }
        }
        self.clock = max_ready + self.platform.recv_cost(recv_msgs, recv_bytes);
        incoming
    }

    /// Data movement + sequence matching + ready-time max, with *no* cost
    /// policy: callers decide how to charge their clock.
    fn exchange_raw(&mut self, mut outgoing: Vec<Vec<u8>>, t_ready: f64) -> (Vec<Vec<u8>>, f64) {
        self.seq += 1;
        let mut incoming: Vec<Vec<u8>> = (0..self.size).map(|_| Vec::new()).collect();
        // Self-delivery is a local move.
        incoming[self.rank] = std::mem::take(&mut outgoing[self.rank]);
        for (d, payload) in outgoing.into_iter().enumerate() {
            if d == self.rank {
                continue;
            }
            self.senders[d]
                .send(Msg {
                    src: self.rank,
                    seq: self.seq,
                    t_ready,
                    payload,
                })
                .expect("rank hung up");
        }
        let mut max_ready = t_ready;
        let mut pending = self.size - 1;
        // Drain previously stashed early arrivals that belong to this
        // collective.
        let mut i = 0;
        while i < self.stash.len() {
            if self.stash[i].seq == self.seq {
                let m = self.stash.swap_remove(i);
                max_ready = max_ready.max(m.t_ready);
                incoming[m.src] = m.payload;
                pending -= 1;
            } else {
                i += 1;
            }
        }
        while pending > 0 {
            let m = match self.inbox.recv_timeout(Duration::from_millis(100)) {
                Ok(m) => m,
                Err(RecvTimeoutError::Timeout) => {
                    assert!(
                        !self.poisoned.load(Ordering::SeqCst),
                        "rank {}: a peer rank panicked mid-collective",
                        self.rank
                    );
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    panic!("world shut down mid-collective")
                }
            };
            if m.seq == self.seq {
                max_ready = max_ready.max(m.t_ready);
                incoming[m.src] = m.payload;
                pending -= 1;
            } else {
                // A fast peer already reached a later collective; hold its
                // message until we get there. Earlier sequences would mean
                // we somehow skipped a collective — a real bug.
                assert!(
                    m.seq > self.seq,
                    "rank {}: stale collective message (got {}, at {})",
                    self.rank,
                    m.seq,
                    self.seq
                );
                self.stash.push(m);
            }
        }
        (incoming, max_ready)
    }

    /// Barrier: synchronizes control flow *and* virtual clocks (to the max).
    pub fn barrier(&mut self) {
        let empty: Vec<Vec<u8>> = (0..self.size).map(|_| Vec::new()).collect();
        self.alltoallv(empty);
    }

    /// Sum-reduction of one `f64` across ranks, result on every rank.
    ///
    /// Charged as a tree reduction: `2·ceil(log2 P)` latency+copy steps.
    pub fn allreduce_sum_f64(&mut self, x: f64) -> f64 {
        self.reduce_f64(x, |a, b| a + b)
    }

    /// Max-reduction of one `f64` across ranks.
    pub fn allreduce_max_f64(&mut self, x: f64) -> f64 {
        self.reduce_f64(x, f64::max)
    }

    /// Sum-reduction of one `u64` across ranks.
    pub fn allreduce_sum_u64(&mut self, x: u64) -> u64 {
        self.reduce_f64(x as f64, |a, b| a + b).round() as u64
    }

    fn reduce_f64(&mut self, x: f64, op: impl Fn(f64, f64) -> f64) -> f64 {
        if self.size == 1 {
            return x;
        }
        let payload = x.to_le_bytes().to_vec();
        let outgoing: Vec<Vec<u8>> = (0..self.size)
            .map(|d| {
                if d == self.rank {
                    Vec::new()
                } else {
                    payload.clone()
                }
            })
            .collect();
        // Physically a mesh exchange; virtually charged as a tree reduction
        // of `2·ceil(log2 P)` latency+copy steps, split across both sides of
        // the ready-time synchronization.
        let steps = 2.0 * (self.size as f64).log2().ceil();
        let tree_cost = steps * (self.platform.latency_s + self.platform.buffer_copy_s);
        let t_ready = self.clock + 0.5 * tree_cost;
        let (incoming, max_ready) = self.exchange_raw(outgoing, t_ready);
        self.clock = max_ready + 0.5 * tree_cost;
        let mut acc = x;
        for (s, m) in incoming.iter().enumerate() {
            if s == self.rank || m.is_empty() {
                continue;
            }
            let v = f64::from_le_bytes(m[..8].try_into().expect("8-byte reduce payload"));
            acc = op(acc, v);
        }
        acc
    }
}

/// Spawns `nranks` threads running `body`; returns each rank's result in
/// rank order. The closure receives the rank's [`Comm`].
pub fn run_world<T, F>(nranks: usize, platform: Platform, body: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut Comm) -> T + Sync,
{
    assert!(nranks >= 1, "need at least one rank");
    let mut senders: Vec<Sender<Msg>> = Vec::with_capacity(nranks);
    let mut inboxes: Vec<Option<Receiver<Msg>>> = Vec::with_capacity(nranks);
    for _ in 0..nranks {
        let (tx, rx) = unbounded();
        senders.push(tx);
        inboxes.push(Some(rx));
    }
    let body = &body;
    let poisoned = Arc::new(AtomicBool::new(false));
    let mut results: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(nranks);
        for (rank, inbox) in inboxes.iter_mut().enumerate() {
            let senders = senders.clone();
            let inbox = inbox.take().expect("inbox taken once");
            let poisoned = Arc::clone(&poisoned);
            handles.push(scope.spawn(move || {
                let mut comm = Comm {
                    rank,
                    size: nranks,
                    platform,
                    clock: 0.0,
                    seq: 0,
                    senders,
                    inbox,
                    stash: Vec::new(),
                    poisoned: Arc::clone(&poisoned),
                };
                // If this rank panics, poison the world so peers blocked in
                // collectives fail fast instead of waiting forever.
                let out =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut comm)));
                match out {
                    Ok(v) => v,
                    Err(e) => {
                        poisoned.store(true, Ordering::SeqCst);
                        std::panic::resume_unwind(e);
                    }
                }
            }));
        }
        for (rank, h) in handles.into_iter().enumerate() {
            results[rank] = Some(h.join().expect("rank panicked"));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all ranks joined"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onyx() -> Platform {
        Platform::power_onyx()
    }

    #[test]
    fn single_rank_world_runs() {
        let out = run_world(1, onyx(), |c| {
            assert_eq!(c.size(), 1);
            let got = c.alltoallv(vec![b"self".to_vec()]);
            assert_eq!(got[0], b"self");
            c.rank()
        });
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn alltoallv_delivers_personalized_payloads() {
        let out = run_world(4, onyx(), |c| {
            let outgoing: Vec<Vec<u8>> = (0..4)
                .map(|d| vec![c.rank() as u8 * 16 + d as u8])
                .collect();
            let incoming = c.alltoallv(outgoing);
            // incoming[s] must be what s addressed to me.
            (0..4).all(|s| incoming[s] == vec![s as u8 * 16 + c.rank() as u8])
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn repeated_collectives_stay_matched() {
        let out = run_world(3, onyx(), |c| {
            let mut acc = 0u64;
            for round in 0..50u64 {
                let outgoing: Vec<Vec<u8>> = (0..3).map(|_| round.to_le_bytes().to_vec()).collect();
                let incoming = c.alltoallv(outgoing);
                for m in incoming {
                    acc += u64::from_le_bytes(m[..8].try_into().unwrap());
                }
            }
            acc
        });
        // Every rank accumulated sum over rounds * 3 payloads.
        let expect: u64 = (0..50u64).map(|r| r * 3).sum();
        assert!(out.iter().all(|&a| a == expect));
    }

    #[test]
    fn clocks_synchronize_to_slowest_rank() {
        let clocks = run_world(4, onyx(), |c| {
            // Rank 2 is slow.
            if c.rank() == 2 {
                c.advance(5.0);
            }
            c.barrier();
            c.clock()
        });
        for (r, t) in clocks.iter().enumerate() {
            assert!(*t >= 5.0, "rank {r} clock {t} below slowest");
            assert!(*t < 5.1, "rank {r} clock {t} inflated");
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let sums = run_world(4, onyx(), |c| c.allreduce_sum_f64(c.rank() as f64 + 1.0));
        assert!(sums.iter().all(|&s| (s - 10.0).abs() < 1e-12), "{sums:?}");
        let maxes = run_world(4, onyx(), |c| c.allreduce_max_f64(c.rank() as f64));
        assert!(maxes.iter().all(|&m| m == 3.0));
        let usums = run_world(3, onyx(), |c| c.allreduce_sum_u64(100 << c.rank()));
        assert!(usums.iter().all(|&s| s == 700));
    }

    #[test]
    fn communication_advances_virtual_time() {
        let clocks = run_world(2, Platform::indy_cluster(), |c| {
            let big = vec![0u8; 100_000];
            let outgoing: Vec<Vec<u8>> = (0..2)
                .map(|d| {
                    if d == c.rank() {
                        Vec::new()
                    } else {
                        big.clone()
                    }
                })
                .collect();
            c.alltoallv(outgoing);
            c.clock()
        });
        // 100 kB over ~1 MB/s Ethernet ≈ 0.1 s.
        assert!(clocks[0] > 0.05, "{clocks:?}");
        assert_eq!(clocks[0], clocks[1] /* symmetric exchange */);
    }

    #[test]
    fn empty_exchange_is_nearly_free() {
        let clocks = run_world(4, onyx(), |c| {
            c.barrier();
            c.clock()
        });
        assert!(clocks.iter().all(|&t| t < 1e-3), "{clocks:?}");
    }

    #[test]
    fn compute_charge_uses_platform_model() {
        let clocks = run_world(1, Platform::sp2(), |c| {
            c.charge_compute(26_000, 30);
            c.clock()
        });
        assert!((clocks[0] - 1.0).abs() < 1e-9, "{clocks:?}");
    }

    #[test]
    #[should_panic]
    fn wrong_payload_count_panics() {
        run_world(2, onyx(), |c| {
            let _ = c.alltoallv(vec![Vec::new()]); // needs 2 entries
        });
    }

    #[test]
    fn results_come_back_in_rank_order() {
        let out = run_world(6, onyx(), |c| c.rank() * 7);
        assert_eq!(out, vec![0, 7, 14, 21, 28, 35]);
    }

    /// Failure injection: a rank that dies mid-collective must poison the
    /// world so its peers fail fast instead of blocking forever on a
    /// message that will never arrive.
    #[test]
    #[should_panic]
    fn panicking_rank_fails_the_world_quickly() {
        let start = std::time::Instant::now();
        let result = std::panic::catch_unwind(|| {
            run_world(3, onyx(), |c| {
                if c.rank() == 1 {
                    panic!("injected rank failure");
                }
                // Ranks 0 and 2 enter a collective rank 1 never joins.
                c.barrier();
            })
        });
        // The world must fail (poison propagation), and within seconds,
        // not hang until an external timeout.
        assert!(result.is_err());
        assert!(start.elapsed().as_secs() < 10, "peers hung on a dead rank");
        std::panic::resume_unwind(result.unwrap_err());
    }

    /// Regression test for the early-message bug: a rank preempted between
    /// the sends of its fan-out lets a fast peer race one collective ahead,
    /// so messages for collective k+1 can arrive before all of collective
    /// k's. Heavy oversubscription plus jittered busy-work makes the
    /// reordering likely; payload checks prove the stash reassembles rounds
    /// correctly.
    #[test]
    fn out_of_order_arrivals_are_stashed_not_fatal() {
        let nranks = 4;
        let rounds = 300u64;
        let ok = run_world(nranks, onyx(), |c| {
            let mut jitter = 12345u64 ^ (c.rank() as u64);
            for round in 0..rounds {
                // Deterministic per-rank jitter: spin a variable amount so
                // ranks drift through the collective schedule.
                jitter = jitter.wrapping_mul(6364136223846793005).wrapping_add(round);
                let spins = (jitter >> 33) % 2000;
                let mut x = 0u64;
                for i in 0..spins {
                    x = x.wrapping_add(i * i);
                }
                std::hint::black_box(x);
                let outgoing: Vec<Vec<u8>> = (0..c.size())
                    .map(|d| {
                        let token = round * 1000 + (c.rank() * 10 + d) as u64;
                        token.to_le_bytes().to_vec()
                    })
                    .collect();
                let incoming = c.alltoallv(outgoing);
                for (s, m) in incoming.iter().enumerate() {
                    let expect = round * 1000 + (s * 10 + c.rank()) as u64;
                    let got = u64::from_le_bytes(m[..8].try_into().unwrap());
                    if got != expect {
                        return false;
                    }
                }
                // Mix in reductions so both collective kinds interleave.
                if round % 7 == 0 {
                    let s = c.allreduce_sum_u64(round);
                    if s != round * nranks as u64 {
                        return false;
                    }
                }
            }
            true
        });
        assert!(ok.iter().all(|&b| b));
    }
}
