//! Criterion bench: octree vs brute-force nearest-hit queries on the three
//! paper scenes (ch. 4: "increasing the speed of intersection determination
//! holds the most promise for decreasing solution time").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use photon_math::{Ray, Vec3};
use photon_rng::{Lcg48, PhotonRng};
use photon_scenes::TestScene;
use std::hint::black_box;

fn rays(scene: &photon_geom::Scene, n: usize) -> Vec<Ray> {
    let mut rng = Lcg48::new(9);
    let b = scene.bounds();
    let e = b.extent();
    (0..n)
        .map(|_| {
            let origin = b.min
                + Vec3::new(
                    e.x * rng.next_f64(),
                    e.y * rng.next_f64(),
                    e.z * rng.next_f64(),
                );
            let dir = Vec3::new(
                rng.next_f64() * 2.0 - 1.0,
                rng.next_f64() * 2.0 - 1.0,
                rng.next_f64() * 2.0 - 1.0,
            )
            .normalized();
            Ray::new(origin, dir)
        })
        .collect()
}

fn bench_intersect(c: &mut Criterion) {
    let mut g = c.benchmark_group("intersection");
    for kind in TestScene::ALL {
        let scene = kind.build();
        let batch = rays(&scene, 256);
        g.bench_with_input(
            BenchmarkId::new("octree", kind.name()),
            &batch,
            |b, batch| {
                b.iter(|| {
                    for r in batch {
                        black_box(scene.intersect(r, f64::INFINITY));
                    }
                })
            },
        );
        // Brute force only on the small scenes; the lab would dominate the
        // suite runtime.
        if scene.polygon_count() <= 100 {
            g.bench_with_input(
                BenchmarkId::new("brute_force", kind.name()),
                &batch,
                |b, batch| {
                    b.iter(|| {
                        for r in batch {
                            black_box(scene.intersect_brute_force(r, f64::INFINITY));
                        }
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_intersect);
criterion_main!(benches);
