//! Criterion bench: end-to-end photon throughput per scene (the quantity on
//! every speedup figure's y axis), serial and 2-thread shared-memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use photon_core::{SimConfig, Simulator};
use photon_par::{run, ParConfig};
use photon_scenes::TestScene;
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("photons_per_second");
    g.sample_size(10);
    let photons = 5_000u64;
    g.throughput(Throughput::Elements(photons));
    for kind in TestScene::ALL {
        g.bench_with_input(
            BenchmarkId::new("serial", kind.name()),
            &kind,
            |b, &kind| {
                let scene = kind.build();
                b.iter(|| {
                    let mut sim = Simulator::new(
                        scene.clone(),
                        SimConfig {
                            seed: 1,
                            ..Default::default()
                        },
                    );
                    sim.run_photons(photons);
                    black_box(sim.stats().reflections)
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("threads2", kind.name()),
            &kind,
            |b, &kind| {
                let scene = kind.build();
                let config = ParConfig {
                    seed: 1,
                    threads: 2,
                    batch_size: photons,
                    // Measure real two-thread behavior on any host.
                    oversubscribe: true,
                    ..Default::default()
                };
                b.iter(|| black_box(run(&scene, &config, photons).stats.reflections))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
