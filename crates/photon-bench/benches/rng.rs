//! Criterion bench: LCG draws and O(log n) jump-ahead / leapfrog setup
//! (ch. 5 random number generation).

use criterion::{criterion_group, criterion_main, Criterion};
use photon_rng::{Lcg48, PhotonRng};
use std::hint::black_box;

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("rng");
    g.bench_function("next_f64", |b| {
        let mut rng = Lcg48::new(1);
        b.iter(|| black_box(rng.next_f64()));
    });
    g.bench_function("jump_ahead_2^40", |b| {
        b.iter(|| {
            let mut rng = Lcg48::new(1);
            rng.jump_ahead(1 << 40);
            black_box(rng.state())
        })
    });
    g.bench_function("leapfrog_split_64_ranks", |b| {
        let base = Lcg48::new(1);
        b.iter(|| {
            for r in 0..64 {
                black_box(base.leapfrog(r, 64));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);
