//! Criterion bench for E8: the paper's rejection kernel vs the
//! Shirley/Sillion closed form (ch. 4 claims ~2x).

use criterion::{criterion_group, criterion_main, Criterion};
use photon_core::generate::{sample_direct, sample_rejection};
use photon_rng::Lcg48;
use std::hint::black_box;

fn bench_photon_gen(c: &mut Criterion) {
    let mut g = c.benchmark_group("photon_generation");
    g.bench_function("rejection_kernel", |b| {
        let mut rng = Lcg48::new(1);
        b.iter(|| black_box(sample_rejection(&mut rng, 1.0)));
    });
    g.bench_function("direct_formula", |b| {
        let mut rng = Lcg48::new(1);
        b.iter(|| black_box(sample_direct(&mut rng)));
    });
    g.bench_function("rejection_collimated_sun", |b| {
        let mut rng = Lcg48::new(1);
        b.iter(|| black_box(sample_rejection(&mut rng, 0.005)));
    });
    g.finish();
}

criterion_group!(benches, bench_photon_gen);
criterion_main!(benches);
