//! Criterion bench: the simmpi all-to-all exchange (real wall time of the
//! substrate itself, independent of the virtual-time models).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simmpi::{run_world, Platform};
use std::hint::black_box;

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("simmpi_alltoall");
    g.sample_size(10);
    for &nranks in &[2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("rounds100_4KB", nranks),
            &nranks,
            |b, &nranks| {
                b.iter(|| {
                    let out = run_world(nranks, Platform::power_onyx(), |comm| {
                        let payload = vec![7u8; 4096];
                        let mut bytes = 0usize;
                        for _ in 0..100 {
                            let outgoing: Vec<Vec<u8>> =
                                (0..comm.size()).map(|_| payload.clone()).collect();
                            let incoming = comm.alltoallv(outgoing);
                            bytes += incoming.iter().map(Vec::len).sum::<usize>();
                        }
                        bytes
                    });
                    black_box(out)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_alltoall);
criterion_main!(benches);
