//! Criterion bench: 4-D bin tree tallies and lookups (the `DetermineBin` +
//! `UpdateBinCount` hot path of Fig 4.1).

use criterion::{criterion_group, criterion_main, Criterion};
use photon_hist::{BinPoint, BinTree, SplitConfig};
use photon_math::Rgb;
use photon_rng::{Lcg48, PhotonRng};
use std::f64::consts::TAU;
use std::hint::black_box;

fn points(n: usize, gradient: bool) -> Vec<BinPoint> {
    let mut rng = Lcg48::new(3);
    (0..n)
        .map(|_| {
            let mut s = rng.next_f64();
            if gradient {
                s = s * s * s; // concentrate near 0
            }
            BinPoint::new(s, rng.next_f64(), rng.next_f64() * TAU, rng.next_f64())
        })
        .collect()
}

fn bench_bintree(c: &mut Criterion) {
    let mut g = c.benchmark_group("bintree");
    let uniform = points(10_000, false);
    let skewed = points(10_000, true);

    g.bench_function("tally_uniform_10k", |b| {
        b.iter(|| {
            let mut tree = BinTree::new(SplitConfig::default());
            for p in &uniform {
                black_box(tree.tally(p, Rgb::WHITE));
            }
            tree.leaf_count()
        })
    });
    g.bench_function("tally_gradient_10k", |b| {
        b.iter(|| {
            let mut tree = BinTree::new(SplitConfig::default());
            for p in &skewed {
                black_box(tree.tally(p, Rgb::WHITE));
            }
            tree.leaf_count()
        })
    });

    // Lookup against a refined tree.
    let mut tree = BinTree::new(SplitConfig::default());
    for p in points(200_000, true) {
        tree.tally(&p, Rgb::WHITE);
    }
    g.bench_function("lookup_refined", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % uniform.len();
            black_box(tree.lookup(&uniform[i]))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_bintree);
criterion_main!(benches);
