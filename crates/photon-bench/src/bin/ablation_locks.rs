//! **Ablation — tally pipeline in the shared-memory simulator.**
//!
//! The paper's shared-memory design serializes tally application per bin
//! tree (Fig 5.2's multiple-reader/single-writer protocol). Our batched
//! pipeline goes further: workers trace lock-free into record buffers, a
//! counting-sort partitions records by patch, and each patch's run is
//! applied under one lock acquisition in serial order. This ablation
//! quantifies each ingredient on real threads:
//!
//! - `inline`   — the old path: every tally takes the patch lock (oracle).
//! - `batched`  — trace → partition → apply, plain leaf descent.
//! - `+cache`   — batched apply with the per-run leaf-descent cursor.
//!
//! Expected shape: batching wins by replacing per-tally locking with one
//! lock per patch run; the leaf cursor adds on top because a run's records
//! hit the same tree and mostly the same leaves. All three produce the same
//! photon statistics; `batched` and `+cache` are bit-identical to serial.

use photon_bench::{fmt, heading, json_mode, md_table, JsonReport};
use photon_par::{run, ParConfig, PipelineMode};
use photon_scenes::TestScene;

fn main() {
    heading("Ablation — inline-tally vs batched-apply vs batched-apply + leaf cache");
    let photons = 40_000u64;
    let mut rows = Vec::new();
    let mut report = JsonReport::new("ablation_pipeline");
    for scene_kind in [TestScene::CornellBox, TestScene::ComputerLab] {
        let scene = scene_kind.build();
        for &threads in &[1usize, 2, 4] {
            let rate_with = |pipeline: PipelineMode| {
                let config = ParConfig {
                    seed: 1997,
                    threads,
                    batch_size: 4_000,
                    pipeline,
                    // The ablation sweeps real thread counts.
                    oversubscribe: true,
                    ..Default::default()
                };
                run(&scene, &config, photons).speed.steady_rate()
            };
            let inline = rate_with(PipelineMode::InlineTally);
            let batched = rate_with(PipelineMode::BatchedNoCache);
            let cached = rate_with(PipelineMode::Batched);
            report.raw(
                &format!(
                    "{}_t{threads}",
                    scene_kind.name().replace(' ', "_").to_lowercase()
                ),
                format!(
                    "{{\"inline\":{inline:.1},\"batched\":{batched:.1},\"batched_cache\":{cached:.1}}}"
                ),
            );
            rows.push(vec![
                scene_kind.name().to_string(),
                threads.to_string(),
                fmt(inline),
                fmt(batched),
                fmt(cached),
                fmt(cached / inline.max(1e-9)),
            ]);
        }
    }
    if json_mode() {
        report.int("photons", photons);
        report.print();
        return;
    }
    println!(
        "{}",
        md_table(
            &[
                "scene",
                "threads",
                "inline rate (photons/s)",
                "batched rate",
                "batched+cache rate",
                "cache/inline ratio"
            ],
            &rows
        )
    );
    println!("batching replaces a lock per tally with a lock per patch run;");
    println!("the leaf cursor then skips re-descending the tree for clustered hits.");
}
