//! **Ablation — tally pipeline in the shared-memory simulator.**
//!
//! The paper's shared-memory design serializes tally application per bin
//! tree (Fig 5.2's multiple-reader/single-writer protocol). Our batched
//! pipeline goes further: workers trace lock-free into record buffers, a
//! counting-sort partitions records by patch, and each patch's run is
//! applied under one lock acquisition in serial order. This ablation
//! quantifies each ingredient on real threads:
//!
//! - `inline`   — the old path: every tally takes the patch lock (oracle).
//! - `batched`  — trace → partition → apply, plain leaf descent.
//! - `+cache`   — batched apply with the per-run leaf-descent cursor.
//!
//! Expected shape: batching wins by replacing per-tally locking with one
//! lock per patch run; the leaf cursor adds on top because a run's records
//! hit the same tree and mostly the same leaves. All three produce the same
//! photon statistics; `batched` and `+cache` are bit-identical to serial.
//!
//! A second section ablates the **node layout**: descending the same
//! logical tree stored as the old array-of-structs enum arena (one
//! [`ExportNode`] per node) versus the current hot/cold SoA arenas (8-byte
//! packed nodes, leaf stats in a separate cold array). Same trees, same
//! probe stream, answers asserted equal — only the memory layout differs.

use photon_bench::{fmt, heading, json_mode, md_table, JsonReport};
use photon_hist::{BinPoint, BinRange, BinTree, ExportNode, SplitConfig};
use photon_math::Rgb;
use photon_par::{run, ParConfig, PipelineMode};
use photon_rng::{Lcg48, PhotonRng};
use photon_scenes::TestScene;
use std::f64::consts::TAU;
use std::time::Instant;

/// Reference descend over the AoS enum arena — the pre-SoA hot loop: each
/// hop loads a full [`ExportNode`] (leaf stats and all), not 8 bytes.
fn aos_lookup(nodes: &[ExportNode], p: &BinPoint) -> u64 {
    let mut idx = 0usize;
    let mut range = BinRange::full();
    loop {
        match &nodes[idx] {
            ExportNode::Leaf(stats) => return stats.n_total,
            ExportNode::Internal { axis, children } => {
                let (lo, hi) = range.split(*axis);
                if p.coord(*axis) < range.mid(*axis) {
                    idx = children[0] as usize;
                    range = lo;
                } else {
                    idx = children[1] as usize;
                    range = hi;
                }
            }
        }
    }
}

/// AoS-vs-SoA lookup throughput over identical trees and probes. Returns
/// `(aos_rate, soa_rate, leaf_bins)` with rates in lookups/second.
///
/// Probes round-robin across a forest of refined trees — the serve-time
/// access pattern, where consecutive lookups land on different patches and
/// the working set far exceeds one tree.
fn layout_rates() -> (f64, f64, u32) {
    const TREES: usize = 64;
    let mut rng = Lcg48::new(1997);
    let concentrated = |rng: &mut Lcg48| {
        BinPoint::new(
            rng.next_f64().powi(2),
            rng.next_f64(),
            rng.next_f64() * TAU,
            rng.next_f64().powi(2),
        )
    };
    let forest: Vec<BinTree> = (0..TREES)
        .map(|_| {
            let mut tree = BinTree::new(SplitConfig::default());
            for _ in 0..20_000 {
                tree.tally(&concentrated(&mut rng), Rgb::WHITE);
            }
            // Canonical subtree-clustered order, as after a snapshot.
            tree.compact();
            tree
        })
        .collect();
    let aos: Vec<Vec<ExportNode>> = forest.iter().map(|t| t.export_nodes()).collect();
    let leaf_bins = forest.iter().map(|t| t.leaf_count()).sum();
    let probes: Vec<BinPoint> = (0..1 << 18)
        .map(|_| {
            BinPoint::new(
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64() * TAU,
                rng.next_f64(),
            )
        })
        .collect();
    let passes = 4u32;
    fn time(
        probes: &[BinPoint],
        passes: u32,
        mut lookup: impl FnMut(usize, &BinPoint) -> u64,
    ) -> (u64, f64) {
        let t0 = Instant::now();
        let mut acc = 0u64;
        for _ in 0..passes {
            for (i, p) in probes.iter().enumerate() {
                acc = acc.wrapping_add(lookup(i % TREES, p));
            }
        }
        (acc, t0.elapsed().as_secs_f64())
    }
    let (aos_acc, aos_secs) = time(&probes, passes, |t, p| aos_lookup(&aos[t], p));
    let (soa_acc, soa_secs) = time(&probes, passes, |t, p| forest[t].lookup(p).0.n_total);
    assert_eq!(aos_acc, soa_acc, "layouts disagree on lookup answers");
    let lookups = (passes as u64 * probes.len() as u64) as f64;
    (
        lookups / aos_secs.max(1e-9),
        lookups / soa_secs.max(1e-9),
        leaf_bins,
    )
}

fn main() {
    heading("Ablation — inline-tally vs batched-apply vs batched-apply + leaf cache");
    let photons = 40_000u64;
    let mut rows = Vec::new();
    let mut report = JsonReport::new("ablation_pipeline");
    for scene_kind in [TestScene::CornellBox, TestScene::ComputerLab] {
        let scene = scene_kind.build();
        for &threads in &[1usize, 2, 4] {
            let rate_with = |pipeline: PipelineMode| {
                let config = ParConfig {
                    seed: 1997,
                    threads,
                    batch_size: 4_000,
                    pipeline,
                    // The ablation sweeps real thread counts.
                    oversubscribe: true,
                    ..Default::default()
                };
                run(&scene, &config, photons).speed.steady_rate()
            };
            let inline = rate_with(PipelineMode::InlineTally);
            let batched = rate_with(PipelineMode::BatchedNoCache);
            let cached = rate_with(PipelineMode::Batched);
            report.raw(
                &format!(
                    "{}_t{threads}",
                    scene_kind.name().replace(' ', "_").to_lowercase()
                ),
                format!(
                    "{{\"inline\":{inline:.1},\"batched\":{batched:.1},\"batched_cache\":{cached:.1}}}"
                ),
            );
            rows.push(vec![
                scene_kind.name().to_string(),
                threads.to_string(),
                fmt(inline),
                fmt(batched),
                fmt(cached),
                fmt(cached / inline.max(1e-9)),
            ]);
        }
    }
    let (aos_rate, soa_rate, leaf_bins) = layout_rates();
    let aos_node = std::mem::size_of::<ExportNode>();
    if json_mode() {
        report.int("photons", photons);
        report.raw(
            "layout",
            format!(
                "{{\"aos_node_bytes\":{aos_node},\"soa_node_bytes\":8,\
                 \"leaf_bins\":{leaf_bins},\
                 \"aos_lookups_per_sec\":{aos_rate:.1},\
                 \"soa_lookups_per_sec\":{soa_rate:.1},\
                 \"soa_over_aos\":{:.3}}}",
                soa_rate / aos_rate.max(1e-9)
            ),
        );
        report.print();
        return;
    }
    println!(
        "{}",
        md_table(
            &[
                "scene",
                "threads",
                "inline rate (photons/s)",
                "batched rate",
                "batched+cache rate",
                "cache/inline ratio"
            ],
            &rows
        )
    );
    println!("batching replaces a lock per tally with a lock per patch run;");
    println!("the leaf cursor then skips re-descending the tree for clustered hits.");
    println!();
    heading("Ablation — node layout: AoS enum arena vs hot/cold SoA");
    println!("round-robin probes across a {leaf_bins}-bin forest of 64 trees");
    println!(
        "{}",
        md_table(
            &["layout", "node bytes", "lookups/s", "vs AoS",],
            &[
                vec![
                    "AoS enum arena".to_string(),
                    aos_node.to_string(),
                    fmt(aos_rate),
                    "1.00x".to_string(),
                ],
                vec![
                    "hot/cold SoA".to_string(),
                    "8".to_string(),
                    fmt(soa_rate),
                    format!("{:.2}x", soa_rate / aos_rate.max(1e-9)),
                ],
            ]
        )
    );
    println!("same logical trees and probe stream; the SoA descent touches 8-byte");
    println!("packed nodes only, deferring leaf statistics to the cold arena.");
}
