//! **Ablation — locking granularity in the shared-memory simulator.**
//!
//! The paper's shared-memory design locks at bin granularity with a
//! multiple-reader/single-writer protocol (Fig 5.2) precisely because a
//! single global lock would serialize the forest. This ablation quantifies
//! that choice on real threads: per-tree reader/writer locks versus one
//! global lock, across thread counts and scenes.
//!
//! Expected shape: identical at 1 thread (no contention), diverging as
//! threads increase — most on the small Cornell Box, whose 30 trees give
//! the least lock spreading (the paper: "for small geometries, using more
//! than two processors is a waste" — memory contention).

use photon_bench::{fmt, heading, md_table};
use photon_par::{run, LockMode, ParConfig};
use photon_scenes::TestScene;

fn main() {
    heading("Ablation — per-tree RwLocks vs one global lock (real threads)");
    let photons = 40_000u64;
    let mut rows = Vec::new();
    for scene_kind in [TestScene::CornellBox, TestScene::ComputerLab] {
        let scene = scene_kind.build();
        for &threads in &[1usize, 2, 4] {
            let rate_with = |lock: LockMode| {
                let config = ParConfig {
                    seed: 1997,
                    threads,
                    batch_size: photons,
                    lock,
                    ..Default::default()
                };
                run(&scene, &config, photons).speed.steady_rate()
            };
            let per_tree = rate_with(LockMode::PerTree);
            let global = rate_with(LockMode::Global);
            rows.push(vec![
                scene_kind.name().to_string(),
                threads.to_string(),
                fmt(per_tree),
                fmt(global),
                fmt(per_tree / global.max(1e-9)),
            ]);
        }
    }
    println!(
        "{}",
        md_table(
            &[
                "scene",
                "threads",
                "per-tree rate (photons/s)",
                "global-lock rate",
                "fine/coarse ratio"
            ],
            &rows
        )
    );
    println!("paper's design argument: fine-grained locking keeps the forest parallel;");
    println!("a global lock turns every tally into a serialization point.");
}
