//! **E19 — ch. 2: radiosity analytics.**
//!
//! Reproduces the paper's analytical statements about the radiosity
//! system: zero-diagonal form-factor rows summing to <= 1, Gerschgorin
//! discs inside the unit circle (diagonal dominance), Jacobi vs
//! Gauss-Seidel iteration counts, and the hierarchical solver's patch
//! proliferation on dark geometry (Hanrahan critique).

use photon_baselines::hierarchical::HierarchicalRadiosity;
use photon_baselines::radiosity::RadiositySystem;
use photon_bench::{fmt, heading, md_table};
use photon_scenes::TestScene;

fn main() {
    heading("Radiosity baseline — diagonal dominance and iterative solves");
    let scene = TestScene::CornellBox.build();
    let sys = RadiositySystem::assemble(&scene, 400, 219);
    let radius = sys.gerschgorin_radius();
    let jacobi = sys.solve_jacobi(1e-8, 500);
    let gs = sys.solve_gauss_seidel(1e-8, 500);
    let rows = vec![
        vec!["patches".into(), sys.len().to_string()],
        vec![
            "Gerschgorin off-diagonal radius (must be < 1)".into(),
            fmt(radius),
        ],
        vec![
            "Jacobi iterations to 1e-8".into(),
            jacobi.iterations.to_string(),
        ],
        vec![
            "Gauss-Seidel iterations to 1e-8".into(),
            gs.iterations.to_string(),
        ],
    ];
    println!("{}", md_table(&["quantity", "value"], &rows));
    println!("paper: the system (I - rho F) is diagonally dominant, iterative methods converge\n");

    heading("Hierarchical radiosity — patch proliferation (Hanrahan critique)");
    let scene = TestScene::CornellBox.build();
    for (f_eps, a_eps) in [(0.1, 0.5), (0.03, 0.2), (0.01, 0.1)] {
        let mut h = HierarchicalRadiosity::new(&scene, f_eps, a_eps);
        let stats = h.solve(&scene, 4, 1e-4);
        println!(
            "f_eps {:>5}: {:>6} elements, {:>7} links, dark leaf fraction {}",
            f_eps,
            stats.elements,
            stats.links,
            fmt(stats.dark_fraction)
        );
    }
    println!("\npaper: form-factor-driven refinement produces \"a plethora of patches\"");
    println!("that sit in dark regions and cannot reduce answer error.");
}
