//! **Streaming transport bench — `PHOTSTRM1` bytes on the wire.**
//!
//! One progressively published Cornell solve, streamed over loopback TCP
//! to two subscribers sharing a viewpoint: one lossless, one quantized.
//! Every epoch each client receives one delta frame; the table reports
//! the bytes each mode actually put on the wire against two yardsticks —
//! the raw in-process tile payload (what the delta carries before
//! encoding) and the full-frame cost a frame-per-epoch protocol would
//! pay. Verifies the lossless stream reassembles the final epoch
//! bit-identical to the service's own render, and that the quantized
//! stream stays within the codec's advertised error bound.
//!
//! Doubles as the CI smoke test for the off-box transport:
//!
//! ```sh
//! cargo run --release -p photon-bench --bin streaming_transport
//! ```

use photon_bench::{camera_for, fmt, heading, json_mode, md_table, write_csv, JsonReport};
use photon_core::{SimConfig, Simulator};
use photon_scenes::TestScene;
use photon_serve::{
    render_parallel, AnswerStore, RenderService, ServeConfig, StreamClient, StreamServer, WireMode,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    heading("Streaming transport — PHOTSTRM1 over TCP, lossless vs quantized");
    let kind = TestScene::CornellBox;
    let store = Arc::new(AnswerStore::new());
    let config = ServeConfig {
        tile_size: 16,
        ..ServeConfig::default()
    };
    let service = Arc::new(RenderService::start(Arc::clone(&store), config));
    let server = StreamServer::serve(Arc::clone(&service)).expect("bind loopback");

    let mut sim = Simulator::new(
        kind.build(),
        SimConfig {
            seed: 1997,
            ..Default::default()
        },
    );
    sim.run_photons(5_000);
    let id = store.insert("cornell-wire", sim.scene().clone(), sim.answer_snapshot());
    let camera = camera_for(kind.view().orbited(0.07, 1.6), 96, 72);

    let modes = [WireMode::Lossless, WireMode::Quantized];
    let mut clients: Vec<StreamClient> = modes
        .iter()
        .map(|&mode| {
            let client =
                StreamClient::connect(server.local_addr(), id, camera, mode).expect("connect");
            client
                .set_read_timeout(Some(Duration::from_secs(600)))
                .expect("timeout");
            client
        })
        .collect();

    // Bootstrap (epoch 1) plus four refining publishes; both clients get
    // one frame per epoch, their renders coalescing through the view
    // cache (shared viewpoint).
    let epochs = 5u64;
    let t0 = Instant::now();
    let mut canvases = Vec::new();
    let mut deltas_per_client = vec![0u64; clients.len()];
    let mut wire_before = vec![0u64; clients.len()];
    let mut tile_bytes = 0u64;
    let mut full_bytes = 0u64;
    let mut csv = Vec::new();
    for epoch in 1..=epochs {
        if epoch > 1 {
            sim.run_photons(5_000);
            assert_eq!(store.publish(id, sim.answer_snapshot()), epoch);
        }
        let mut row = vec![epoch.to_string()];
        for (i, client) in clients.iter_mut().enumerate() {
            let delta = client.recv_delta().expect("delta frame");
            assert_eq!(delta.epoch, epoch);
            if canvases.len() <= i {
                canvases.push(delta.canvas());
            }
            delta.apply(&mut canvases[i]);
            deltas_per_client[i] += 1;
            let frame_wire = client.wire_bytes() - wire_before[i];
            wire_before[i] = client.wire_bytes();
            if i == 0 {
                // Payload yardsticks are mode-independent; count them once.
                tile_bytes += delta.tile_bytes() as u64;
                full_bytes += delta.full_frame_bytes() as u64;
            }
            row.push(frame_wire.to_string());
        }
        csv.push(row.join(","));
    }
    let elapsed = t0.elapsed().as_secs_f64();

    // Lossless reassembly is bit-identical to the service's own render of
    // the final epoch; quantized stays within the advertised bound.
    let entry = store.get(id).expect("stored");
    assert_eq!(entry.epoch, epochs);
    let reference = render_parallel(
        &entry.scene,
        &entry.answer,
        &camera,
        entry.exposure,
        config.render_threads,
        config.tile_size,
    );
    assert_eq!(
        canvases[0].pixels(),
        reference.pixels(),
        "lossless TCP stream diverged from a full render"
    );
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in reference.pixels() {
        for v in [p.r, p.g, p.b] {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    let bound = photon_core::wire::quantization_error_bound(lo, hi);
    for (got, want) in canvases[1].pixels().iter().zip(reference.pixels()) {
        for (g, w) in [got.r, got.g, got.b]
            .into_iter()
            .zip([want.r, want.g, want.b])
        {
            assert!(
                (g - w).abs() <= bound + 1e-12,
                "quantized stream beyond the advertised bound"
            );
        }
    }

    let wire = [clients[0].wire_bytes(), clients[1].wire_bytes()];
    let m = service.metrics();
    if json_mode() {
        let mut report = JsonReport::new("streaming_transport");
        report
            .int("epochs", epochs)
            .int("deltas_per_client", deltas_per_client[0])
            .num("elapsed_s", elapsed)
            .int("tile_payload_bytes", tile_bytes)
            .int("full_frame_bytes", full_bytes)
            .int("lossless_wire_bytes", wire[0])
            .int("quantized_wire_bytes", wire[1])
            .num(
                "lossless_vs_full",
                wire[0] as f64 / full_bytes.max(1) as f64,
            )
            .num(
                "quantized_vs_full",
                wire[1] as f64 / full_bytes.max(1) as f64,
            )
            .num(
                "quantized_vs_lossless",
                wire[1] as f64 / wire[0].max(1) as f64,
            )
            .int("stream_wire_deltas", m.stream.wire_deltas)
            .int("stream_wire_bytes", m.stream.wire_bytes)
            .int("stream_deltas", m.stream.deltas);
        report.print();
    } else {
        let rows: Vec<Vec<String>> = modes
            .iter()
            .zip(wire.iter())
            .map(|(mode, &bytes)| {
                vec![
                    mode.name().to_string(),
                    deltas_per_client[0].to_string(),
                    fmt(bytes as f64 / 1024.0),
                    fmt(tile_bytes as f64 / 1024.0),
                    fmt(full_bytes as f64 / 1024.0),
                    format!("{:.1}%", 100.0 * bytes as f64 / full_bytes.max(1) as f64),
                ]
            })
            .collect();
        println!(
            "{}",
            md_table(
                &[
                    "mode",
                    "deltas",
                    "wire kB",
                    "tile payload kB",
                    "full-frame kB",
                    "wire/full"
                ],
                &rows,
            )
        );
        println!(
            "streamed {} epochs to 2 clients in {:.2}s; quantized wire is {} of lossless",
            epochs,
            elapsed,
            fmt(wire[1] as f64 / wire[0].max(1) as f64),
        );
    }

    // The point of the transport: both modes undercut shipping full
    // frames, and quantized undercuts lossless.
    assert!(
        wire[0] < full_bytes,
        "lossless wire ({}) failed to undercut full frames ({})",
        wire[0],
        full_bytes
    );
    assert!(
        wire[1] < wire[0],
        "quantized wire ({}) failed to undercut lossless ({})",
        wire[1],
        wire[0]
    );
    let path = write_csv(
        "streaming_transport.csv",
        "epoch,lossless_wire_bytes,quantized_wire_bytes",
        &csv,
    );
    if !json_mode() {
        println!("per-epoch series: {}", path.display());
    }
}
