//! photon-serve throughput: synthetic multi-client request streams over the
//! three dissertation scenes, reporting queries/sec with the view cache on
//! and off.
//!
//! Traffic model: each client thread issues a stream in which ~75% of
//! requests revisit one of a small set of per-scene "landmark" views (the
//! walkthrough pattern that makes caching pay) and the rest are unique
//! jittered orbit positions (always cache misses). Output: a markdown
//! summary plus `bench_results/serve_throughput.csv`.
//!
//! ```sh
//! cargo run --release -p photon-bench --bin serve_throughput
//! ```

use photon_bench::{camera_for, heading, md_table, write_csv};
use photon_core::{Camera, SimConfig, Simulator};
use photon_rng::{Lcg48, PhotonRng};
use photon_scenes::TestScene;
use photon_serve::{
    AnswerStore, MetricsSnapshot, RenderRequest, RenderService, SceneId, ServeConfig,
};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 40;
const HOT_VIEWS: usize = 8;
const HOT_FRACTION: f64 = 0.75;
const WIDTH: usize = 96;
const HEIGHT: usize = 72;

fn main() {
    heading("photon-serve throughput: 3 scenes, multi-client, cache on vs off");

    let store = Arc::new(AnswerStore::new());
    let mut scenes: Vec<(TestScene, SceneId)> = Vec::new();
    for (kind, photons) in [
        (TestScene::CornellBox, 30_000u64),
        (TestScene::HarpsichordRoom, 20_000),
        (TestScene::ComputerLab, 10_000),
    ] {
        let t0 = Instant::now();
        let mut sim = Simulator::new(
            kind.build(),
            SimConfig {
                seed: 1997,
                ..Default::default()
            },
        );
        sim.run_photons(photons);
        let answer = sim.answer_snapshot();
        let id = store.insert(kind.name(), sim.scene().clone(), answer);
        println!(
            "simulated {}: {photons} photons in {:.2} s -> {id}",
            kind.name(),
            t0.elapsed().as_secs_f64()
        );
        scenes.push((kind, id));
    }

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for cache_on in [false, true] {
        let (qps, wall, m) = run_stream(&store, &scenes, cache_on);
        let label = if cache_on { "on" } else { "off" };
        let hit_rate = (m.cache_hits + m.coalesced) as f64 / m.completed.max(1) as f64;
        rows.push(vec![
            label.to_string(),
            format!("{}", m.completed),
            format!("{qps:.1}"),
            format!("{:.2}", m.latency.p50_ms),
            format!("{:.2}", m.latency.p99_ms),
            format!("{:.0}%", hit_rate * 100.0),
            format!("{}", m.rendered),
        ]);
        csv.push(format!(
            "{label},{},{qps:.3},{:.3},{:.3},{:.3},{}",
            m.completed, m.latency.p50_ms, m.latency.p99_ms, wall, m.rendered
        ));
    }

    println!(
        "\n{}",
        md_table(
            &[
                "cache",
                "requests",
                "queries/s",
                "p50 ms",
                "p99 ms",
                "hit rate",
                "renders"
            ],
            &rows,
        )
    );
    let path = write_csv(
        "serve_throughput.csv",
        "cache,requests,qps,p50_ms,p99_ms,wall_s,renders",
        &csv,
    );
    println!("raw series -> {}", path.display());
}

fn run_stream(
    store: &Arc<AnswerStore>,
    scenes: &[(TestScene, SceneId)],
    cache_on: bool,
) -> (f64, f64, MetricsSnapshot) {
    let config = ServeConfig {
        cache_capacity: if cache_on { 512 } else { 0 },
        ..Default::default()
    };
    let service = RenderService::start(Arc::clone(store), config);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let service = &service;
            scope.spawn(move || {
                let mut rng = Lcg48::new(0xC11E + client as u64);
                for _ in 0..REQUESTS_PER_CLIENT {
                    let (kind, id) = scenes[rng.index(scenes.len())];
                    let camera = if rng.next_f64() < HOT_FRACTION {
                        landmark_view(kind, rng.index(HOT_VIEWS))
                    } else {
                        jittered_view(kind, &mut rng)
                    };
                    service
                        .render_blocking(RenderRequest {
                            scene_id: id,
                            camera,
                        })
                        .expect("request served");
                }
            });
        }
    });
    let wall = t0.elapsed().as_secs_f64();
    let total = (CLIENTS * REQUESTS_PER_CLIENT) as f64;
    (total / wall, wall, service.metrics())
}

/// One of the scene's fixed landmark viewpoints (orbit positions around the
/// recommended view) — the repeatedly requested, cacheable traffic.
fn landmark_view(kind: TestScene, slot: usize) -> Camera {
    camera_for(
        kind.view().orbited(slot as f64 / HOT_VIEWS as f64, 1.0),
        WIDTH,
        HEIGHT,
    )
}

/// A never-repeating viewpoint: random phase plus radial jitter.
fn jittered_view(kind: TestScene, rng: &mut Lcg48) -> Camera {
    let scale = 1.05 + 0.35 * rng.next_f64();
    camera_for(kind.view().orbited(rng.next_f64(), scale), WIDTH, HEIGHT)
}
