//! **E18 — ch. 3: the Density Estimation parallel contrast.**
//!
//! Paper: Zareski's parallel density estimation reaches ~15/16 speedup in
//! particle tracing but only ~8.5 (sometimes 4.5) in density estimation +
//! meshing, "limited by the time needed to process the surface with the
//! largest number of hit points". We trace the harpsichord room, take the
//! *actual* per-surface hit distribution, and evaluate both phase speedups
//! at 16 processors — plus the storage comparison against Photon's bins.

use photon_baselines::density::{parallel_phase_model, particle_trace};
use photon_bench::{fmt, heading, md_table};
use photon_core::{SimConfig, Simulator};
use photon_scenes::TestScene;

fn main() {
    heading("Density estimation: phase speedups and storage (harpsichord room)");
    let scene = TestScene::HarpsichordRoom.build();
    let photons = 150_000;
    let file = particle_trace(&scene, photons, 318);
    let per_patch = file.per_patch_counts(scene.polygon_count());
    let largest = per_patch.iter().max().copied().unwrap_or(0);
    let total: u64 = per_patch.iter().sum();

    let mut rows = Vec::new();
    for procs in [4usize, 8, 16, 32] {
        let s = parallel_phase_model(&per_patch, procs, 0.005);
        rows.push(vec![
            procs.to_string(),
            fmt(s.particle_tracing),
            fmt(s.density_meshing),
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "processors",
                "particle tracing speedup",
                "density+meshing speedup"
            ],
            &rows
        )
    );
    println!(
        "largest surface holds {} of {} hits ({}%) — the phase-2 cap",
        largest,
        total,
        fmt(100.0 * largest as f64 / total as f64)
    );
    println!("paper: 15 on 16 procs for tracing; 8.5 (as low as 4.5) for density+meshing\n");

    // Storage comparison on the same workload.
    let mut sim = Simulator::new(
        TestScene::HarpsichordRoom.build(),
        SimConfig {
            seed: 318,
            ..Default::default()
        },
    );
    sim.run_photons(photons);
    println!(
        "hit-point file: {} bytes; Photon bin forest: {} bytes ({}x smaller — paper: 1-2 orders)",
        file.bytes(),
        sim.forest().memory_bytes(),
        fmt(file.bytes() as f64 / sim.forest().memory_bytes() as f64)
    );
}
