//! **E14 — Figs 5.9–5.11: SGI Indy cluster speedup (virtual time).**
//!
//! Paper: over 10 Mb Ethernet, "communication overhead and slower
//! processors force the initial time to the right and reduce performance.
//! Although performance is lost, scalability is increased." We run the
//! distributed simulator over the Indy platform model for 1/2/4/8 ranks on
//! each scene and print the speed-vs-virtual-time traces the figures plot.

use photon_bench::{fmt, heading, md_table, write_trace};
use photon_dist::{run_distributed, AdaptiveBatch, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_scenes::TestScene;
use simmpi::Platform;

fn main() {
    heading("Figs 5.9-5.11 — Indy cluster speed traces (virtual time)");
    let photons = 120_000u64;
    for scene_kind in TestScene::ALL {
        let scene = scene_kind.build();
        let mut summary = Vec::new();
        let mut serial_rate = 0.0;
        for &nranks in &[1usize, 2, 4, 8] {
            let config = DistConfig {
                seed: 59,
                nranks,
                platform: Platform::indy_cluster(),
                balance: BalanceMode::BinPacking {
                    pilot_photons: 1000,
                },
                batch: BatchMode::Adaptive(AdaptiveBatch::default()),
                stop: StopRule::Photons(photons),
                ..Default::default()
            };
            let r = run_distributed(&scene, &config);
            let name = format!(
                "fig5_9_{}_p{}.csv",
                scene_kind.name().replace(' ', "_").to_lowercase(),
                nranks
            );
            write_trace(&name, &r.speed);
            let rate = r.speed.steady_rate();
            if nranks == 1 {
                serial_rate = rate;
            }
            summary.push(vec![
                nranks.to_string(),
                fmt(rate),
                fmt(rate / serial_rate.max(1e-9)),
                fmt(r.virtual_elapsed),
                fmt(r.bytes_forwarded as f64 / 1e6),
            ]);
        }
        println!("### {}\n", scene_kind.name());
        println!(
            "{}",
            md_table(
                &[
                    "ranks",
                    "steady rate (photons/s)",
                    "speedup",
                    "virtual elapsed (s)",
                    "MB forwarded"
                ],
                &summary
            )
        );
    }
    println!("traces: bench_results/fig5_9_*.csv");
}
