//! **E1 — Table 5.1: Test Geometry Sizes.**
//!
//! Paper: Cornell Box 30 defining polygons → 397,000 view-dependent
//! polygons; Harpsichord Practice Room 100 → 150,000; Computer Laboratory
//! 2000 → 350,000. The paper's view-dependent counts come from runs of
//! billions of photons; we reproduce the *shape* — the Cornell Box's count
//! is disproportionately high for its defining-polygon count because of the
//! large mirror (angular refinement) and a longer run — at a laptop photon
//! budget, and report bins-per-defining-polygon ratios.

use photon_bench::{fmt, heading, md_table, write_csv};
use photon_core::{SimConfig, Simulator};
use photon_scenes::TestScene;

fn main() {
    heading("Table 5.1 — Test Geometry Sizes (defining vs view-dependent polygons)");
    // The paper runs the Cornell Box "much longer to generate a higher
    // level of detail"; scale budgets accordingly.
    let budgets: [(TestScene, u64); 3] = [
        (TestScene::CornellBox, 600_000),
        (TestScene::HarpsichordRoom, 200_000),
        (TestScene::ComputerLab, 300_000),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (scene_kind, photons) in budgets {
        let scene = scene_kind.build();
        let defining = scene.polygon_count();
        let mut sim = Simulator::new(
            scene,
            SimConfig {
                seed: 51,
                ..Default::default()
            },
        );
        sim.run_photons(photons);
        let bins = sim.forest().total_leaf_bins();
        rows.push(vec![
            scene_kind.name().to_string(),
            defining.to_string(),
            bins.to_string(),
            photons.to_string(),
            fmt(bins as f64 / defining as f64),
        ]);
        csv.push(format!("{},{defining},{bins},{photons}", scene_kind.name()));
    }
    println!(
        "{}",
        md_table(
            &[
                "Geometry",
                "Defining Polygons",
                "View-Dependent Polygons (leaf bins)",
                "Photons",
                "Bins / Defining",
            ],
            &rows
        )
    );
    let path = write_csv(
        "table5_1.csv",
        "geometry,defining_polygons,view_dependent_polygons,photons",
        &csv,
    );
    println!("paper: 30 -> 397k, 100 -> 150k, 2000 -> 350k (billions of photons)");
    println!("csv: {}", path.display());
}
