//! **E12 — Fig 5.4: memory requirements of the bin forest.**
//!
//! Paper: "after an initial buildup of memory, the size of the bin forest
//! tends to increase sub-linearly" with photons — and needs 1–2 orders of
//! magnitude less storage than recording ray histories. We trace the
//! Harpsichord Practice Room, sampling forest bytes per batch, report the
//! growth exponent, and compare with the O(n) hit-file a density-estimation
//! run of the same length would write.

use photon_baselines::density::HIT_BYTES;
use photon_bench::{fmt, heading, write_csv};
use photon_core::{SimConfig, Simulator};
use photon_scenes::TestScene;

fn main() {
    heading("Fig 5.4 — bin forest memory vs photons (harpsichord room)");
    let scene = TestScene::HarpsichordRoom.build();
    let mut sim = Simulator::new(
        scene,
        SimConfig {
            seed: 54,
            ..Default::default()
        },
    );
    let batches = 40;
    let per_batch = 15_000;
    for _ in 0..batches {
        sim.run_batch(per_batch);
    }
    let mem = sim.memory_trace();
    let rows: Vec<String> = mem
        .samples()
        .iter()
        .map(|(p, b)| format!("{p},{b}"))
        .collect();
    let path = write_csv("fig5_4.csv", "photons,bin_forest_bytes", &rows);

    let (p0, b0) = mem.samples()[mem.samples().len() / 4];
    let (p1, b1) = *mem.samples().last().unwrap();
    let exponent = ((b1 as f64 / b0 as f64).ln()) / ((p1 as f64 / p0 as f64).ln());
    let total_photons = sim.stats().emitted;
    let interactions = total_photons + sim.stats().reflections;
    let hit_file_bytes = interactions as usize * HIT_BYTES;
    println!(
        "growth exponent after buildup: {} (1.0 = linear; paper: sublinear)",
        fmt(exponent)
    );
    println!("sublinear: {}", mem.is_sublinear());
    println!(
        "bin forest: {} bytes vs density-estimation hit file: {} bytes ({}x larger)",
        b1,
        hit_file_bytes,
        fmt(hit_file_bytes as f64 / b1 as f64)
    );
    println!("csv: {}", path.display());
}
