//! **E6/E7 — Figs 3.2–3.5: fixed vs adaptive histogramming.**
//!
//! Paper: a fixed histogram spends storage uniformly; Gustafson's adaptive
//! histogram splits bins only where the two halves are statistically
//! different (3σ), concentrating resolution at steep gradients. We sample a
//! curve with a sharp feature, tabulate both histograms at equal storage,
//! and report where the adaptive bins went.

use photon_bench::{fmt, heading, md_table, write_csv};
use photon_hist::{AdaptiveHistogram1D, FixedHistogram1D, SplitRule};
use photon_rng::{Lcg48, PhotonRng};

/// Inverse-CDF sample of a density with 85% of mass in [0, 0.1] (steep
/// gradient at the left edge) and the rest uniform.
fn sample(rng: &mut Lcg48) -> f64 {
    if rng.next_f64() < 0.85 {
        rng.next_f64() * 0.1
    } else {
        rng.next_f64()
    }
}

fn main() {
    heading("Figs 3.2-3.5 — fixed vs adaptive histogramming of a steep curve");
    let n = 400_000;
    let mut rng = Lcg48::new(34);
    let mut adaptive = AdaptiveHistogram1D::new(0.0, 1.0, SplitRule::default(), 1e-5);
    for _ in 0..n {
        adaptive.tally(sample(&mut rng));
    }
    // A fixed histogram granted the same number of bins.
    let mut fixed = FixedHistogram1D::new(0.0, 1.0, adaptive.len());
    let mut rng = Lcg48::new(34);
    for _ in 0..n {
        fixed.tally(sample(&mut rng));
    }

    // Resolution where it matters: smallest adaptive bin vs uniform width.
    let fixed_width = 1.0 / adaptive.len() as f64;
    let rows = vec![
        vec![
            "bins".into(),
            adaptive.len().to_string(),
            adaptive.len().to_string(),
        ],
        vec![
            "finest bin width".into(),
            fmt(adaptive.min_bin_width()),
            fmt(fixed_width),
        ],
        vec![
            "bins inside [0, 0.1]".into(),
            adaptive
                .bins()
                .iter()
                .filter(|b| b.0 < 0.1)
                .count()
                .to_string(),
            ((0.1 / fixed_width).round() as u64).to_string(),
        ],
        vec![
            "splits performed".into(),
            adaptive.splits().to_string(),
            "0".into(),
        ],
    ];
    println!(
        "{}",
        md_table(&["metric", "adaptive", "fixed (equal storage)"], &rows)
    );

    let csv: Vec<String> = adaptive
        .density()
        .iter()
        .map(|(c, w, d)| format!("{c:.6},{w:.6},{d:.4}"))
        .collect();
    let path = write_csv("fig3_4_adaptive_density.csv", "center,width,density", &csv);
    println!("paper claim: refinement lands only where the gradient is steep (Fig 3.4)");
    println!("csv: {}", path.display());
}
