//! **E4 — Fig 2.2: the ray-traced scene and its defects.**
//!
//! Paper: a Whitted ray trace with point lights shows razor-sharp shadows
//! at any occluder distance and no color interaction between surfaces. We
//! render the baseline tracer, measure its penumbra width at several
//! occluder heights (≈ 0), and contrast with Photon's area/collimated
//! lighting where penumbra grows with distance (cross-reference `fig4_4`).

use photon_baselines::raytrace::{penumbra_width, PointLight, RayTracer};
use photon_bench::{camera_for, fmt, heading, md_table, write_ppm};
use photon_math::{Rgb, Vec3};
use photon_scenes::{sun_room, TestScene};

fn main() {
    heading("Fig 2.2 — Whitted ray tracing: sharp shadows at any distance");
    let tracer = RayTracer::new(vec![PointLight {
        pos: Vec3::new(0.0, 7.9, 0.0),
        intensity: Rgb::gray(120.0),
    }]);
    let mut rows = Vec::new();
    for h in [0.5, 1.0, 2.0, 4.0] {
        let scene = sun_room(h, 0.005);
        let profile = tracer.shadow_profile(
            &scene,
            Vec3::new(-2.5, 0.0, 0.0),
            Vec3::new(2.5, 0.0, 0.0),
            500,
        );
        rows.push(vec![fmt(h), fmt(penumbra_width(&profile))]);
    }
    println!(
        "{}",
        md_table(
            &["Occluder height", "Point-light penumbra width (fraction)"],
            &rows
        )
    );
    println!("paper claim: point lights => penumbra ~ 0 regardless of distance");

    // Render the Cornell Box through the Whitted tracer for the figure.
    let scene = TestScene::CornellBox.build();
    let cam = camera_for(TestScene::CornellBox.view(), 320, 240);
    let tracer = RayTracer::new(vec![PointLight {
        pos: Vec3::new(2.78, 5.4, 2.8),
        intensity: Rgb::new(28.0, 24.0, 18.0),
    }]);
    let img = tracer.render(&scene, &cam);
    let path = write_ppm("fig2_2_whitted_cornell.ppm", &img);
    println!(
        "render: {} (mean luminance {})",
        path.display(),
        fmt(img.mean_luminance())
    );
}
