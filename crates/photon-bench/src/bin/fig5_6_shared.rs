//! **E13 — Figs 5.6–5.8: shared-memory speedup (SGI Power Onyx).**
//!
//! Paper: speed-vs-time traces for 1/2/4/8 processors on each scene; small
//! geometries stop scaling past 2 processors (memory contention on few
//! trees), large geometries scale well but at lower absolute rates. We run
//! the real threaded simulator on this host for every scene × thread count
//! and print per-batch rates plus a fixed-time speedup summary.
//!
//! Note: wall-clock speedups depend on this machine's core count; shapes
//! (contention on small scenes, better scaling on large) are the
//! reproduction target. EXPERIMENTS.md records both.

use photon_bench::{fmt, heading, md_table, write_trace};
use photon_core::SpeedTrace;
use photon_par::{run, ParConfig};
use photon_scenes::TestScene;

fn main() {
    heading("Figs 5.6-5.8 — shared-memory speed traces (real threads)");
    let host_threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    println!("host parallelism: {host_threads} (speedups saturate there)\n");
    let photons = 60_000u64;
    let counts = [1usize, 2, 4, 8];
    for scene_kind in TestScene::ALL {
        let scene = scene_kind.build();
        let mut traces: Vec<(usize, SpeedTrace)> = Vec::new();
        for &threads in &counts {
            let config = ParConfig {
                seed: 56,
                threads,
                batch_size: 6_000,
                // The experiment measures real thread scaling — spawn the
                // full count even past this host's cores.
                oversubscribe: true,
                ..Default::default()
            };
            let r = run(&scene, &config, photons);
            let name = format!(
                "fig5_6_{}_p{}.csv",
                scene_kind.name().replace(' ', "_").to_lowercase(),
                threads
            );
            write_trace(&name, &r.speed);
            traces.push((threads, r.speed));
        }
        let serial = traces[0].1.clone();
        let rows: Vec<Vec<String>> = traces
            .iter()
            .map(|(threads, t)| {
                vec![
                    threads.to_string(),
                    fmt(t.steady_rate()),
                    fmt(t.steady_rate() / serial.steady_rate().max(1e-9)),
                    fmt(t.total_elapsed()),
                ]
            })
            .collect();
        println!("### {}\n", scene_kind.name());
        println!(
            "{}",
            md_table(
                &[
                    "threads",
                    "steady rate (photons/s)",
                    "speedup vs serial",
                    "elapsed (s)"
                ],
                &rows
            )
        );
    }
    println!("traces: bench_results/fig5_6_*.csv");
}
