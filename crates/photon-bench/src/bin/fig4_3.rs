//! **E8 — Fig 4.3 / ch. 4: the photon generation kernels.**
//!
//! Paper: the rejection kernel costs 13 flops per loop iteration, expected
//! `13/(1−q) ≈ 16.55` plus 5 for the z lift ≈ 22 flops, versus 34 for the
//! Shirley/Sillion closed form — "about twice as fast" in kernel
//! measurements. We report the analytic counts, measured wall-time
//! throughput of both kernels, measured random-draw counts, and a moment
//! check that both sample the same Lambertian density.

use photon_bench::{fmt, heading, md_table};
use photon_core::generate::{sample_direct, sample_rejection, FLOPS_DIRECT, FLOPS_REJECTION};
use photon_rng::{CountingRng, Lcg48};
use std::time::Instant;

fn main() {
    heading("Fig 4.3 — photon generation: rejection kernel vs direct formula");
    let n = 4_000_000u64;

    // Measured throughput.
    let mut rng = Lcg48::new(43);
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += sample_rejection(&mut rng, 1.0).z;
    }
    let rej_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let rej_mean_z = acc / n as f64;

    let mut rng = Lcg48::new(43);
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..n {
        acc += sample_direct(&mut rng).z;
    }
    let dir_ns = t0.elapsed().as_nanos() as f64 / n as f64;
    let dir_mean_z = acc / n as f64;

    // Random draws per direction.
    let mut counting = CountingRng::new(Lcg48::new(7));
    for _ in 0..100_000 {
        sample_rejection(&mut counting, 1.0);
    }
    let rej_draws = counting.draws() as f64 / 100_000.0;

    let rows = vec![
        vec![
            "rejection (paper kernel)".into(),
            fmt(FLOPS_REJECTION),
            fmt(rej_draws),
            fmt(rej_ns),
            fmt(rej_mean_z),
        ],
        vec![
            "direct (Shirley/Sillion)".into(),
            fmt(FLOPS_DIRECT),
            "2.00".into(),
            fmt(dir_ns),
            fmt(dir_mean_z),
        ],
    ];
    println!(
        "{}",
        md_table(
            &[
                "kernel",
                "flops (paper accounting)",
                "draws/dir",
                "ns/dir (measured)",
                "mean z (expect 0.667)"
            ],
            &rows
        )
    );
    println!(
        "measured speedup: {}x  (paper: \"about twice as fast\"; flop ratio {}x)",
        fmt(dir_ns / rej_ns),
        fmt(FLOPS_DIRECT / FLOPS_REJECTION)
    );
}
