//! **Bench diff — throughput regression gate against `BENCH_baseline.json`.**
//!
//! Runs the machine-readable benches (`progressive_solve`,
//! `checkpoint_resume`) with `--json` `--runs` times each (default 3),
//! takes the per-backend **median** `photons_per_sec` across the runs, and
//! compares each median against the committed baseline at the repo root.
//! The median absorbs the one-off stalls shared runners love to inject —
//! a single slow run can no longer fail the gate, only a consistent
//! slowdown can. Any backend whose median runs slower than 90% of its
//! baseline is a regression: the table marks it and the process exits
//! nonzero, so CI can surface it (as a non-blocking step — shared runners
//! are noisy even at the median).
//!
//! ```sh
//! cargo build --release -p photon-bench --bins
//! cargo run  --release -p photon-bench --bin bench_diff            # median of 3
//! cargo run  --release -p photon-bench --bin bench_diff -- --runs 5
//! ```
//!
//! To refresh the baseline after an intentional performance change:
//!
//! ```sh
//! cargo run --release -p photon-bench --bin bench_diff -- --record
//! ```
//!
//! which re-runs every recorded `--json` bench (the two throughput benches
//! plus `multi_tenant`, `streaming_serve`, and the wire-level
//! `streaming_transport`) and rewrites `BENCH_baseline.json`
//! in place. The JSON scraping is hand-rolled, like the reports themselves:
//! the workspace carries no serializer dependency.

use photon_bench::{fmt, heading, md_table};
use std::path::{Path, PathBuf};
use std::process::Command;

/// Relative throughput below which a backend counts as regressed.
const FLOOR: f64 = 0.9;

/// Benches whose `photons_per_sec` fields gate regressions.
const RATE_BENCHES: [&str; 2] = ["progressive_solve", "checkpoint_resume"];

/// Everything `--record` snapshots into the baseline file.
const ALL_BENCHES: [&str; 5] = [
    "progressive_solve",
    "multi_tenant",
    "streaming_serve",
    "streaming_transport",
    "checkpoint_resume",
];

fn baseline_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_baseline.json")
}

/// Runs a sibling bench binary with `--json` and returns its stdout.
fn run_bench(name: &str) -> String {
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("exe dir");
    let path = dir.join(name);
    if !path.exists() {
        eprintln!(
            "bench_diff: {} not found — build the bench binaries first:\n  cargo build --release -p photon-bench --bins",
            path.display()
        );
        std::process::exit(2);
    }
    let out = Command::new(&path)
        .arg("--json")
        .output()
        .unwrap_or_else(|e| panic!("spawn {name}: {e}"));
    assert!(
        out.status.success(),
        "{name} --json exited with {}",
        out.status
    );
    String::from_utf8(out.stdout).expect("bench output is UTF-8")
}

/// Extracts the balanced-brace JSON object that follows `"key":` — needed
/// because labels like `"serial"` repeat across benches, so rate lookups
/// must be scoped to one bench's object first.
fn object_after<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let start = at + (json[at..].len() - rest.len());
    if !rest.starts_with('{') {
        return None;
    }
    let mut depth = 0usize;
    for (i, b) in json[start..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&json[start..=start + i]);
                }
            }
            _ => {}
        }
    }
    None
}

/// Every `(backend_label, photons_per_sec)` pair in a bench's JSON object:
/// each occurrence of the field is attributed to the key of its enclosing
/// object. Bench output never puts braces inside strings, so plain brace
/// counting is enough.
fn rates(bench_json: &str) -> Vec<(String, f64)> {
    let needle = "\"photons_per_sec\":";
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = bench_json[from..].find(needle) {
        let pos = from + rel;
        let val_start = pos + needle.len();
        let val: String = bench_json[val_start..]
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(rate) = val.parse::<f64>() {
            out.push((enclosing_key(bench_json, pos), rate));
        }
        from = val_start;
    }
    out
}

/// Walks backwards from `pos` to the `{` opening the enclosing object, then
/// returns the quoted key right before it (or "root" at the bench's top).
fn enclosing_key(json: &str, pos: usize) -> String {
    let bytes = json.as_bytes();
    let mut depth = 0i32;
    let mut open = None;
    for i in (0..pos).rev() {
        match bytes[i] {
            b'}' => depth += 1,
            b'{' => {
                if depth == 0 {
                    open = Some(i);
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    let Some(open) = open else {
        return "root".into();
    };
    let before = json[..open].trim_end().strip_suffix(':').unwrap_or("");
    let before = before.trim_end();
    if let Some(stripped) = before.strip_suffix('"') {
        if let Some(q) = stripped.rfind('"') {
            return stripped[q + 1..].to_string();
        }
    }
    "root".into()
}

/// Value of `--runs N` / `--runs=N` (default 3): how many times each rate
/// bench runs before the per-backend median is taken.
fn parse_runs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let bad = || -> ! {
        eprintln!("bench_diff: --runs needs a positive integer");
        std::process::exit(2);
    };
    for (i, a) in args.iter().enumerate() {
        let val = if a == "--runs" {
            Some(args.get(i + 1).cloned().unwrap_or_else(|| bad()))
        } else {
            a.strip_prefix("--runs=").map(str::to_string)
        };
        if let Some(val) = val {
            match val.parse::<usize>() {
                Ok(n) if n >= 1 => return n,
                _ => bad(),
            }
        }
    }
    3
}

/// Median of a non-empty sample (mean of the middle pair when even).
fn median(mut xs: Vec<f64>) -> f64 {
    assert!(!xs.is_empty());
    xs.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Runs `bench` `runs` times and reduces each backend label to its median
/// rate, preserving the label order of the first run.
fn median_rates(bench: &str, runs: usize) -> Vec<(String, f64)> {
    let mut per_label: Vec<(String, Vec<f64>)> = Vec::new();
    for run in 0..runs {
        eprintln!("bench_diff: {bench} run {}/{runs} ...", run + 1);
        for (label, rate) in rates(&run_bench(bench)) {
            match per_label.iter_mut().find(|(l, _)| *l == label) {
                Some((_, samples)) => samples.push(rate),
                None => per_label.push((label, vec![rate])),
            }
        }
    }
    per_label
        .into_iter()
        .map(|(label, samples)| (label, median(samples)))
        .collect()
}

fn record(path: &Path) {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"recorded\": \"{}\",\n", today_utc()));
    out.push_str(
        "  \"command\": \"cargo run --release -p photon-bench --bin <name> -- --json\",\n",
    );
    out.push_str("  \"benches\": {\n");
    for (i, name) in ALL_BENCHES.iter().enumerate() {
        eprintln!("bench_diff: recording {name} ...");
        let json = run_bench(name);
        let comma = if i + 1 < ALL_BENCHES.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {}{comma}\n", json.trim()));
    }
    out.push_str("  }\n}\n");
    std::fs::write(path, out).expect("write baseline");
    println!("recorded baseline: {}", path.display());
}

/// Today's UTC date as `YYYY-MM-DD` (civil-from-days, no date dependency).
fn today_utc() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let path = baseline_path();
    if std::env::args().any(|a| a == "--record") {
        record(&path);
        return;
    }

    let runs = parse_runs();
    heading(&format!(
        "Bench diff — median-of-{runs} photons/s vs BENCH_baseline.json"
    ));
    let baseline = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(_) => {
            println!(
                "no baseline at {} — record one with `--record`",
                path.display()
            );
            return;
        }
    };

    let mut rows = Vec::new();
    let mut regressions = 0u32;
    for bench in RATE_BENCHES {
        let fresh = median_rates(bench, runs);
        let base = object_after(&baseline, bench).map_or_else(Vec::new, rates);
        for (label, rate) in fresh {
            let Some(&(_, want)) = base.iter().find(|(l, _)| *l == label) else {
                rows.push(vec![
                    bench.into(),
                    label,
                    "—".into(),
                    fmt(rate),
                    "—".into(),
                    "new (no baseline)".into(),
                ]);
                continue;
            };
            let ratio = rate / want.max(1e-9);
            let status = if ratio < FLOOR {
                regressions += 1;
                "REGRESSED"
            } else {
                "ok"
            };
            rows.push(vec![
                bench.into(),
                label,
                fmt(want),
                fmt(rate),
                format!("{ratio:.2}"),
                status.into(),
            ]);
        }
    }
    println!(
        "{}",
        md_table(
            &[
                "bench",
                "backend",
                "baseline photons/s",
                "current photons/s",
                "ratio",
                "status"
            ],
            &rows
        )
    );
    if regressions > 0 {
        println!("{regressions} backend(s) below {FLOOR}x baseline — failing.");
        std::process::exit(1);
    }
    println!("all backends within {FLOOR}x of baseline.");
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"benches":{"a":{"bench":"a","serial":{"photons_per_sec":100.5},"threaded x4":{"n":1,"photons_per_sec":90.0}},"b":{"bench":"b","serial":{"photons_per_sec":7.0}}}}"#;

    #[test]
    fn object_extraction_is_scoped() {
        let a = object_after(SAMPLE, "a").unwrap();
        assert!(a.contains("100.5") && !a.contains("7.0"));
        let b = object_after(SAMPLE, "b").unwrap();
        assert!(b.contains("7.0") && !b.contains("100.5"));
        assert!(object_after(SAMPLE, "missing").is_none());
    }

    #[test]
    fn rates_attribute_to_backend_labels() {
        let a = rates(object_after(SAMPLE, "a").unwrap());
        assert_eq!(
            a,
            vec![
                ("serial".to_string(), 100.5),
                ("threaded x4".to_string(), 90.0)
            ]
        );
    }

    #[test]
    fn median_is_order_free_and_splits_even_samples() {
        assert_eq!(median(vec![3.0]), 3.0);
        assert_eq!(median(vec![9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), 2.5);
        // One outlier run cannot move a median-of-3.
        assert_eq!(median(vec![100.0, 101.0, 0.001]), 100.0);
    }

    #[test]
    fn date_renders_civil() {
        // Smoke: shape only (the value depends on the clock).
        let d = today_utc();
        assert_eq!(d.len(), 10);
        assert_eq!(d.as_bytes()[4], b'-');
        assert_eq!(d.as_bytes()[7], b'-');
    }
}
