//! **Checkpoint bench — freeze/resume cost versus solve throughput.**
//!
//! For each backend, solves the Cornell box partway, then measures the
//! checkpoint path a pool migration exercises: `checkpoint()` (freeze the
//! engine), `PHOTCK1` save and load through a file, and `restore()` into a
//! freshly built engine — which then finishes the solve. The table reports
//! each stage's latency next to the backend's solve throughput, plus the
//! checkpoint's encoded size against the answer file it shadows. Every row
//! ends by verifying the resumed answer against the uninterrupted solve:
//! bit-identical on the order-preserving backends (and in practice on the
//! rebooted distributed world too, whose fresh ranks replay the same
//! schedule; its hard floor is identical counters).
//!
//! Doubles as the CI smoke test for the checkpoint/restore path:
//!
//! ```sh
//! cargo run --release -p photon-bench --bin checkpoint_resume
//! ```

use photon_bench::{fmt, heading, json_mode, md_table, JsonReport};
use photon_core::{Answer, EngineCheckpoint, SimConfig, Simulator, SolverEngine};
use photon_dist::{BalanceMode, BatchMode, DistConfig, DistEngine};
use photon_par::{ParConfig, ParEngine};
use photon_scenes::TestScene;
use std::time::Instant;

const SEED: u64 = 1_997;
const SPLIT_AT: u64 = 30_000;
const TOTAL: u64 = 60_000;

fn answer_bytes(a: &Answer) -> Vec<u8> {
    let mut buf = Vec::new();
    a.write_to(&mut buf).expect("encode answer");
    buf
}

fn build(kind: TestScene, backend: &str) -> Box<dyn SolverEngine> {
    match backend {
        "serial" => Box::new(Simulator::new(
            kind.build(),
            SimConfig {
                seed: SEED,
                ..Default::default()
            },
        )),
        "threaded" => Box::new(ParEngine::new(
            kind.build(),
            ParConfig {
                seed: SEED,
                threads: 4,
                ..Default::default()
            },
        )),
        "distributed" => Box::new(DistEngine::new(
            kind.build(),
            DistConfig {
                seed: SEED,
                nranks: 4,
                balance: BalanceMode::Naive,
                batch: BatchMode::Fixed(1),
                ..Default::default()
            },
        )),
        _ => unreachable!(),
    }
}

fn main() {
    heading("Checkpoint/restore — freeze, ship, resume vs. solve throughput");
    let kind = TestScene::CornellBox;
    let path = std::env::temp_dir().join(format!("photon-ck-bench-{}.photck", std::process::id()));
    let mut rows = Vec::new();
    let mut report = JsonReport::new("checkpoint_resume");

    for backend in ["serial", "threaded", "distributed"] {
        // Uninterrupted reference for the verification column.
        let mut straight = build(kind, backend);
        let t0 = Instant::now();
        straight.step(SPLIT_AT);
        straight.step(TOTAL - SPLIT_AT);
        let solve_s = t0.elapsed().as_secs_f64();
        let want = answer_bytes(&straight.snapshot());

        // Interrupted run: solve the prefix, freeze, ship through a file,
        // resume on a brand-new engine.
        let mut first = build(kind, backend);
        first.step(SPLIT_AT);
        let t = Instant::now();
        let ck = first.checkpoint();
        let checkpoint_s = t.elapsed().as_secs_f64();
        let t = Instant::now();
        ck.save(&path).expect("save checkpoint");
        let save_s = t.elapsed().as_secs_f64();
        drop(first);
        let t = Instant::now();
        let loaded = EngineCheckpoint::load(&path).expect("load checkpoint");
        let load_s = t.elapsed().as_secs_f64();
        let mut resumed = build(kind, backend);
        let t = Instant::now();
        resumed.restore(&loaded).expect("restore checkpoint");
        let restore_s = t.elapsed().as_secs_f64();
        resumed.step(TOTAL - SPLIT_AT);

        let got = answer_bytes(&resumed.snapshot());
        let bit_identical = got == want;
        let stats_match = resumed.stats() == straight.stats();
        assert!(stats_match, "{backend}: resumed counters diverged");
        if backend != "distributed" {
            assert!(bit_identical, "{backend}: resumed answer diverged");
        }
        let verified = if bit_identical {
            "bit-identical"
        } else {
            "counters identical"
        };

        assert_eq!(
            std::fs::metadata(&path).expect("checkpoint file").len(),
            ck.encoded_size(),
            "encoded_size must predict the file exactly"
        );
        report.raw(
            backend,
            format!(
                "{{\"photons\":{TOTAL},\"photons_per_sec\":{:.1},\"checkpoint_bytes\":{},\"answer_bytes\":{},\"freeze_ms\":{:.3},\"save_ms\":{:.3},\"load_ms\":{:.3},\"restore_ms\":{:.3},\"verified\":\"{verified}\"}}",
                TOTAL as f64 / solve_s,
                ck.encoded_size(),
                want.len(),
                checkpoint_s * 1e3,
                save_s * 1e3,
                load_s * 1e3,
                restore_s * 1e3,
            ),
        );
        rows.push(vec![
            backend.to_string(),
            format!("{:.0}k", TOTAL as f64 / 1_000.0),
            fmt(TOTAL as f64 / solve_s),
            format!("{:.1}", ck.encoded_size() as f64 / 1024.0),
            format!("{:.1}", want.len() as f64 / 1024.0),
            fmt(checkpoint_s * 1e3),
            fmt(save_s * 1e3),
            fmt(load_s * 1e3),
            fmt(restore_s * 1e3),
            verified.to_string(),
        ]);
    }
    let _ = std::fs::remove_file(&path);

    if json_mode() {
        report.print();
        return;
    }
    println!(
        "{}",
        md_table(
            &[
                "backend",
                "photons",
                "photons/s",
                "ck KiB",
                "answer KiB",
                "freeze ms",
                "save ms",
                "load ms",
                "restore ms",
                "resume verified"
            ],
            &rows
        )
    );
    println!("checkpoint = forest + counters + photon cursor (PHOTCK1);");
    println!("every backend resumed on a freshly built engine — including a");
    println!("rebooted rank world — and landed exactly on the uninterrupted solve.");
}
