//! **E16 — Fig 5.15: performance and speedup vs complexity.**
//!
//! Paper: a 3x3 "graph of graphs" — platforms down, scenes across — showing
//! (a) time-to-first-data-point growing as processor coupling loosens,
//! (b) scalability improving with scene complexity while (c) absolute
//! performance falls. We run 8 ranks on every platform x scene cell and
//! tabulate exactly those three quantities.

use photon_bench::{fmt, heading, md_table};
use photon_dist::{run_distributed, AdaptiveBatch, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_scenes::TestScene;
use simmpi::Platform;

fn main() {
    heading("Fig 5.15 — performance & speedup vs complexity (8 ranks per cell)");
    let mut rows = Vec::new();
    for platform in Platform::all() {
        for scene_kind in TestScene::ALL {
            let scene = scene_kind.build();
            let run_with = |nranks: usize| {
                let config = DistConfig {
                    seed: 515,
                    nranks,
                    platform,
                    balance: BalanceMode::BinPacking {
                        pilot_photons: 1000,
                    },
                    batch: BatchMode::Adaptive(AdaptiveBatch::default()),
                    stop: StopRule::Photons(80_000),
                    ..Default::default()
                };
                run_distributed(&scene, &config)
            };
            let serial = run_with(1);
            let par = run_with(8);
            let first_point = par.speed.samples().first().map_or(0.0, |s| s.elapsed);
            rows.push(vec![
                platform.name.to_string(),
                scene_kind.name().to_string(),
                fmt(par.speed.steady_rate()),
                fmt(par.speed.steady_rate() / serial.speed.steady_rate().max(1e-9)),
                fmt(first_point),
            ]);
        }
    }
    println!(
        "{}",
        md_table(
            &[
                "platform",
                "scene",
                "rate @8 (photons/s)",
                "speedup vs serial",
                "first data point (s)"
            ],
            &rows
        )
    );
    println!("paper shapes: complexity UP => speedup UP, absolute rate DOWN;");
    println!("looser coupling (Onyx -> SP-2 -> Indy) => first data point moves right.");
}
