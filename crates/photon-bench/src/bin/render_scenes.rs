//! **E10 — Figs 4.7 / 4.8 / 5.1: renders of the three test scenes.**
//!
//! Simulates each scene and renders the paper's figures from the stored
//! answer: the Harpsichord Practice Room (Fig 4.7), the Cornell Box with
//! its floating mirror (Fig 4.8), and the Computer Laboratory (Fig 5.1).
//! As in the paper, no Gouraud smoothing is applied — the bin structure is
//! left visible deliberately.

use photon_bench::{camera_for, fmt, heading, write_ppm};
use photon_core::view::{auto_exposure, render};
use photon_core::{SimConfig, Simulator};
use photon_scenes::TestScene;

fn main() {
    heading("Figs 4.7/4.8/5.1 — scene renders from stored answers");
    let jobs: [(TestScene, &str, u64); 3] = [
        (
            TestScene::HarpsichordRoom,
            "fig4_7_harpsichord.ppm",
            400_000,
        ),
        (TestScene::CornellBox, "fig4_8_cornell.ppm", 400_000),
        (TestScene::ComputerLab, "fig5_1_lab.ppm", 400_000),
    ];
    for (kind, file, photons) in jobs {
        let scene = kind.build();
        let mut sim = Simulator::new(
            scene,
            SimConfig {
                seed: 47,
                ..Default::default()
            },
        );
        sim.run_photons(photons);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let cam = camera_for(kind.view(), 320, 240);
        let exposure = auto_exposure(scene, &answer);
        let img = render(scene, &answer, &cam, exposure);
        let path = write_ppm(file, &img);
        println!(
            "{}: {} photons -> {} leaf bins, mean luminance {}, {}",
            kind.name(),
            photons,
            answer.total_leaf_bins(),
            fmt(img.mean_luminance()),
            path.display()
        );
    }
}
