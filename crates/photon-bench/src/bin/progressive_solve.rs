//! **Pipeline bench — progressive solve→store→render, per backend.**
//!
//! Drives the photon-serve `SolverPool` with the same scene and photon
//! target on every backend, while a render client polls one viewpoint —
//! measuring what the pipeline layer buys: time to first renderable epoch
//! (a client sees *something* after one batch, not after the whole solve),
//! epochs published, and how many of the polled renders came from fresh
//! epochs versus the cache.
//!
//! The distributed backend's solve clock is virtual (platform model), so
//! its wall time mostly measures the in-process simulation of the 1997
//! machine — the epochs/freshness columns are the comparable part.

use photon_bench::{camera_for, fmt, heading, json_mode, md_table, JsonReport};
use photon_scenes::TestScene;
use photon_serve::{
    AnswerStore, BackendChoice, RenderRequest, RenderService, ServeConfig, SolveRequest, SolverPool,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    heading("Progressive pipeline — scene in, refining images out");
    let kind = TestScene::CornellBox;
    let target = 60_000u64;
    let batch = 6_000u64;
    let backends: [(&str, BackendChoice); 3] = [
        ("serial", BackendChoice::Serial),
        ("threaded x4", BackendChoice::Threaded { threads: 4 }),
        (
            "distributed x4 (virtual)",
            BackendChoice::Distributed { nranks: 4 },
        ),
    ];

    let mut rows = Vec::new();
    let mut report = JsonReport::new("progressive_solve");
    for (label, backend) in backends {
        let store = Arc::new(AnswerStore::new());
        let solver = SolverPool::start(Arc::clone(&store), 1);
        let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
        let mut request = SolveRequest::new(kind.name(), kind.build());
        request.backend = backend;
        request.seed = 1997;
        request.batch_size = batch;
        request.target_photons = target;

        let t0 = Instant::now();
        let job = solver.submit(request);
        let req = RenderRequest {
            scene_id: job.scene_id(),
            camera: camera_for(kind.view(), 128, 96),
        };
        let first = job
            .wait_epoch(1, Duration::from_secs(600))
            .expect("first epoch");
        let t_first = t0.elapsed().as_secs_f64();
        let _ = service.render_blocking(req).expect("first render");

        // Poll the same view once per remaining epoch.
        let mut fresh_renders = 1u64;
        let mut last = first;
        while !last.done {
            last = job
                .next_progress(Duration::from_secs(600))
                .expect("progress until done");
            let view = service.render_blocking(req).expect("served");
            if !view.from_cache() {
                fresh_renders += 1;
            }
        }
        let t_done = t0.elapsed().as_secs_f64();
        // The scheduler's own accounting for the finished job: slices
        // granted and photons per second of granted solve time.
        let sched = solver.metrics();
        let job_stats = sched
            .jobs
            .first()
            .expect("the submitted job is tracked in the scheduler");
        report.raw(
            label,
            format!(
                "{{\"first_renderable_ms\":{:.3},\"solve_done_s\":{:.3},\"epochs\":{},\"fresh_renders\":{},\"leaf_bins\":{},\"solve_clock_s\":{:.3},\"slices\":{},\"photons_per_sec\":{:.1}}}",
                t_first * 1e3,
                t_done,
                last.epoch,
                fresh_renders,
                last.leaf_bins,
                last.elapsed_seconds,
                job_stats.slices,
                job_stats.photons_per_sec,
            ),
        );
        rows.push(vec![
            label.to_string(),
            fmt(t_first * 1e3),
            fmt(t_done),
            last.epoch.to_string(),
            fresh_renders.to_string(),
            last.leaf_bins.to_string(),
            fmt(last.elapsed_seconds),
            job_stats.slices.to_string(),
            fmt(job_stats.photons_per_sec),
        ]);
    }
    if json_mode() {
        report.print();
        return;
    }
    println!(
        "{}",
        md_table(
            &[
                "backend",
                "first renderable (ms)",
                "solve done (s)",
                "epochs",
                "fresh renders",
                "leaf bins",
                "solve clock (s)",
                "slices",
                "photons/s"
            ],
            &rows
        )
    );
    println!("first-renderable ≪ solve-done is the pipeline's point: clients see");
    println!("images after one batch; each later epoch re-renders polled views.");
}
