//! **E2 — Table 5.2: Naive load balancing versus bin packing.**
//!
//! Paper (8 processors, thousands of photons processed): naive balance
//! ranges 24.9k–47.9k per processor; Best-Fit bin packing flattens the
//! spread to 28.7k–29.8k. We run the same experiment on the Harpsichord
//! Practice Room with 8 virtual ranks and report photons *processed* per
//! rank (local + received tallies) under both strategies.

use photon_bench::{fmt, heading, md_table, write_csv};
use photon_dist::{run_distributed, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_scenes::TestScene;
use simmpi::Platform;

fn main() {
    heading("Table 5.2 — Total photons processed: naive vs bin packing (8 ranks)");
    let scene = TestScene::HarpsichordRoom.build();
    let mk = |balance| DistConfig {
        seed: 52,
        nranks: 8,
        platform: Platform::sp2(),
        balance,
        batch: BatchMode::Fixed(500),
        stop: StopRule::Photons(64_000),
        ..Default::default()
    };
    let naive = run_distributed(&scene, &mk(BalanceMode::Naive));
    let packed = run_distributed(
        &scene,
        &mk(BalanceMode::BinPacking {
            pilot_photons: 2000,
        }),
    );

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for r in 0..8 {
        let n = naive.per_rank_tallies[r] as f64 / 1000.0;
        let p = packed.per_rank_tallies[r] as f64 / 1000.0;
        rows.push(vec![r.to_string(), fmt(n), fmt(p)]);
        csv.push(format!("{r},{n:.3},{p:.3}"));
    }
    println!(
        "{}",
        md_table(
            &["Processor", "Naive Load Balance (k)", "Bin Packing (k)"],
            &rows
        )
    );
    let spread = |v: &[u64]| {
        let max = *v.iter().max().unwrap() as f64;
        let min = *v.iter().min().unwrap() as f64;
        max / min.max(1.0)
    };
    println!(
        "max/min spread: naive {} -> bin packing {}  (paper: 1.92 -> 1.04)",
        fmt(spread(&naive.per_rank_tallies)),
        fmt(spread(&packed.per_rank_tallies)),
    );
    let path = write_csv(
        "table5_2.csv",
        "processor,naive_kphotons,binpacking_kphotons",
        &csv,
    );
    println!("csv: {}", path.display());
}
