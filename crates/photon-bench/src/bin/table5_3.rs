//! **E3 — Table 5.3: Simulation batch sizes.**
//!
//! Paper: the adaptive controller, started at 500 photons/processor on the
//! Harpsichord Practice Room with 8 processors, produces a growing sequence
//! on each platform — large batches on the Power Onyx (cheap
//! communication), smaller plateaus on the SP-2 and Indy cluster. We run
//! the same configuration over each virtual platform model and print the
//! resulting size columns.

use photon_bench::{heading, md_table, write_csv};
use photon_dist::{run_distributed, AdaptiveBatch, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_scenes::TestScene;
use simmpi::Platform;

fn main() {
    heading("Table 5.3 — Adaptive batch sizes per platform (8 ranks, harpsichord room)");
    let scene = TestScene::HarpsichordRoom.build();
    let mut columns: Vec<(String, Vec<u64>)> = Vec::new();
    for platform in Platform::all() {
        let config = DistConfig {
            seed: 53,
            nranks: 8,
            platform,
            balance: BalanceMode::BinPacking {
                pilot_photons: 1000,
            },
            batch: BatchMode::Adaptive(AdaptiveBatch::default()),
            stop: StopRule::Photons(400_000),
            ..Default::default()
        };
        let r = run_distributed(&scene, &config);
        columns.push((platform.name.to_string(), r.batch_history));
    }
    let depth = columns
        .iter()
        .map(|(_, c)| c.len())
        .max()
        .unwrap_or(0)
        .min(13);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for i in 0..depth {
        let row: Vec<String> = columns
            .iter()
            .map(|(_, c)| c.get(i).map_or(String::new(), |v| v.to_string()))
            .collect();
        csv.push(format!("{},{}", i, row.join(",")));
        rows.push(row);
    }
    let headers: Vec<&str> = columns.iter().map(|(n, _)| n.as_str()).collect();
    println!("{}", md_table(&headers, &rows));
    println!("paper column prefix (all platforms): 500, 750, 1125, ...; Onyx grows largest");
    let path = write_csv("table5_3.csv", "batch_index,onyx,indy,sp2", &csv);
    println!("csv: {}", path.display());
}
