//! **E17 — Fig 5.16: visual speedup.**
//!
//! Paper: the harpsichord room simulated for two (wall-clock) minutes on
//! 1/2/4/8 processors — more processors push more photons in the same time,
//! visibly improving the mirror and the shadows. We run a fixed *virtual*
//! two-minute budget on the Onyx model per processor count, render each
//! result, and quantify quality as RMS error against a long-run reference.

use photon_bench::{camera_for, fmt, heading, md_table, write_ppm};
use photon_core::view::{auto_exposure, render};
use photon_core::{SimConfig, Simulator};
use photon_dist::{run_distributed, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_scenes::TestScene;
use simmpi::Platform;

fn main() {
    heading("Fig 5.16 — visual speedup: fixed 2-minute virtual budget");
    let scene_kind = TestScene::HarpsichordRoom;
    let cam = camera_for(scene_kind.view(), 240, 180);

    // Long-run reference for the error metric.
    let reference = {
        let mut sim = Simulator::new(
            scene_kind.build(),
            SimConfig {
                seed: 516,
                ..Default::default()
            },
        );
        sim.run_photons(800_000);
        let ans = sim.answer_snapshot();
        let exposure = auto_exposure(sim.scene(), &ans);
        render(sim.scene(), &ans, &cam, exposure).downsampled(4)
    };

    let scene = scene_kind.build();
    let mut rows = Vec::new();
    for &nranks in &[1usize, 2, 4, 8] {
        let config = DistConfig {
            seed: 516,
            nranks,
            platform: Platform::power_onyx(),
            balance: BalanceMode::BinPacking {
                pilot_photons: 1000,
            },
            batch: BatchMode::Fixed(2000),
            stop: StopRule::VirtualSeconds(120.0),
            ..Default::default()
        };
        let r = run_distributed(&scene, &config);
        let exposure = auto_exposure(&scene, &r.answer);
        let img = render(&scene, &r.answer, &cam, exposure);
        let err = img.downsampled(4).rms_error(&reference);
        let file = format!("fig5_16_p{nranks}.ppm");
        write_ppm(&file, &img);
        rows.push(vec![
            nranks.to_string(),
            r.stats.emitted.to_string(),
            r.answer.total_leaf_bins().to_string(),
            fmt(err),
            file,
        ]);
    }
    println!(
        "{}",
        md_table(
            &[
                "processors",
                "photons in 2 virtual minutes",
                "leaf bins",
                "RMS error vs reference",
                "image"
            ],
            &rows
        )
    );
    println!("paper claim: equal time, more processors => more photons => visibly better answer");
}
