//! **Scheduler bench — fair multi-job scheduling under mixed tenants.**
//!
//! Drives one `SolverPool` with a deliberately unfair workload: one heavy
//! tenant (a big photon target) and several light tenants (small targets,
//! different priorities, one on a photon quota), all sharing a one-worker
//! pool. A FIFO pool would serialize them — every light tenant would wait
//! for the heavy solve. The weighted-round-robin scheduler instead
//! interleaves batch slices, so the table below shows light jobs finishing
//! *while* the heavy job is still mid-solve, the quota tenant parking at
//! its budget, and per-tenant slice accounting from the metrics surface.
//!
//! Photon budgets are intentionally tiny so this doubles as the CI smoke
//! test for the concurrent-jobs path:
//!
//! ```sh
//! cargo run --release -p photon-bench --bin multi_tenant
//! ```

use photon_bench::{fmt, heading, json_mode, md_table, JsonReport};
use photon_scenes::TestScene;
use photon_serve::{AnswerStore, SolveRequest, SolverPool};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    heading("Multi-tenant scheduling — one worker, four jobs, no starvation");
    let kind = TestScene::CornellBox;
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    // The metered tenant may only emit half its target until topped up.
    pool.set_tenant_budget("metered", 10_000);

    // (label, tenant, priority, target photons)
    let jobs: [(&str, &str, u32, u64); 4] = [
        ("heavy", "bulk", 1, 200_000),
        ("light-a", "interactive", 2, 20_000),
        ("light-b", "interactive", 1, 20_000),
        ("metered", "metered", 1, 20_000),
    ];
    let t0 = Instant::now();
    let handles: Vec<_> = jobs
        .iter()
        .map(|&(label, tenant, priority, target)| {
            let mut r = SolveRequest::new(label, kind.build());
            r.seed = 1997;
            r.batch_size = 5_000;
            r.target_photons = target;
            r.priority = priority;
            r.tenant = tenant.to_string();
            (label, pool.submit(r))
        })
        .collect();

    // Wait for the light jobs first: on a fair scheduler they converge
    // while the heavy job is still mid-solve, which we record as the
    // heavy job's photon count at each finish line.
    let mut done_at = vec![f64::NAN; handles.len()];
    let mut heavy_at_finish = vec![None; handles.len()];
    let heavy_scene = handles[0].1.scene_id();
    for (i, (label, h)) in handles.iter().enumerate() {
        if *label == "metered" || *label == "heavy" {
            continue;
        }
        let done = h
            .wait_done(Duration::from_secs(600))
            .expect("job converged");
        done_at[i] = t0.elapsed().as_secs_f64();
        heavy_at_finish[i] = Some(store.get(heavy_scene).unwrap().answer.emitted());
        assert!(done.emitted >= jobs[i].3, "{label} missed its target");
    }
    handles[0]
        .1
        .wait_done(Duration::from_secs(600))
        .expect("heavy job converged");
    done_at[0] = t0.elapsed().as_secs_f64();
    let parked = pool.metrics();
    assert_eq!(parked.quota_blocked, 1, "metered job must park at budget");
    // Top the metered tenant up and let it finish.
    pool.add_tenant_budget("metered", 50_000);
    let metered_idx = handles.iter().position(|(l, _)| *l == "metered").unwrap();
    handles[metered_idx]
        .1
        .wait_done(Duration::from_secs(600))
        .expect("metered job resumed");
    done_at[metered_idx] = t0.elapsed().as_secs_f64();

    let m = pool.metrics();
    let mut report = JsonReport::new("multi_tenant");
    let mut rows = Vec::new();
    for job in &m.jobs {
        let (label, _) = handles[job.job as usize];
        report.raw(
            label,
            format!(
                "{{\"tenant\":\"{}\",\"priority\":{},\"slices\":{},\"photons\":{},\"photons_per_sec\":{:.1},\"done_at_s\":{}}}",
                job.tenant,
                job.priority,
                job.slices,
                job.emitted,
                job.photons_per_sec,
                if done_at[job.job as usize].is_finite() {
                    format!("{:.3}", done_at[job.job as usize])
                } else {
                    "null".to_string()
                },
            ),
        );
        rows.push(vec![
            label.to_string(),
            job.tenant.clone(),
            job.priority.to_string(),
            job.slices.to_string(),
            job.emitted.to_string(),
            fmt(job.photons_per_sec),
            fmt(done_at[job.job as usize]),
            heavy_at_finish[job.job as usize].map_or("—".to_string(), |p: u64| p.to_string()),
        ]);
    }
    let tenants_json: Vec<String> = m
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\":\"{}\",\"slices\":{},\"photons_used\":{},\"budget_remaining\":{}}}",
                t.tenant,
                t.slices,
                t.photons_used,
                t.budget_remaining
                    .map_or("null".to_string(), |b| b.to_string()),
            )
        })
        .collect();
    report.raw("tenants", format!("[{}]", tenants_json.join(",")));
    if json_mode() {
        report.print();
    } else {
        println!(
            "{}",
            md_table(
                &[
                    "job",
                    "tenant",
                    "priority",
                    "slices",
                    "photons",
                    "photons/s",
                    "done at (s)",
                    "heavy photons then"
                ],
                &rows
            )
        );

        let mut tenant_rows = Vec::new();
        for t in &m.tenants {
            tenant_rows.push(vec![
                t.tenant.clone(),
                t.slices.to_string(),
                t.photons_used.to_string(),
                t.budget_remaining
                    .map_or("unlimited".to_string(), |b| b.to_string()),
            ]);
        }
        println!(
            "{}",
            md_table(
                &["tenant", "slices granted", "photons used", "budget left"],
                &tenant_rows
            )
        );
    }

    // The scheduler's point, asserted: when each light job crossed its
    // finish line, the heavy job was still short of its target.
    for (i, (label, _)) in handles.iter().enumerate() {
        if let Some(heavy_mid) = heavy_at_finish[i] {
            assert!(
                heavy_mid < jobs[0].3,
                "{label} finished only after the heavy job ({heavy_mid} photons)"
            );
        }
    }
    if !json_mode() {
        println!("light jobs finished before the heavy one on a single worker —");
        println!("weighted round-robin interleaves batch slices instead of FIFO.");
    }
}
