//! **Streaming bench — tile deltas vs full frames under a live solve.**
//!
//! One progressive Cornell solve, N subscribers at orbiting viewpoints
//! (two sharing a camera, to show subscriber renders coalescing through
//! the view cache). Every publish pushes each subscriber a [`FrameDelta`]
//! carrying only the changed tiles; the table reports deltas/sec, the
//! tile-bytes actually shipped versus what a frame-per-epoch protocol
//! would have sent, and verifies each reassembled viewport is
//! bit-identical to the service's own render of the final epoch.
//!
//! Doubles as the CI smoke test for the streaming path:
//!
//! ```sh
//! cargo run --release -p photon-bench --bin streaming_serve
//! ```
//!
//! [`FrameDelta`]: photon_serve::FrameDelta

use photon_bench::{camera_for, fmt, heading, json_mode, md_table, write_csv, JsonReport};
use photon_scenes::TestScene;
use photon_serve::{
    AnswerStore, BackendChoice, RenderRequest, RenderService, ServeConfig, SolveRequest,
    SolverPool, StreamRequest,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() {
    heading("Streaming serve — one progressive solve, four subscribers, tile deltas");
    let kind = TestScene::CornellBox;
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            tile_size: 16,
            ..ServeConfig::default()
        },
    );

    let mut request = SolveRequest::new("cornell-streamed", kind.build());
    request.backend = BackendChoice::Serial;
    request.seed = 1997;
    request.batch_size = 5_000;
    request.target_photons = 30_000; // 6 epochs
    let final_epoch = request.target_photons / request.batch_size;
    let job = pool.submit(request);

    // Orbit phases; the last two share a viewpoint on purpose — their
    // per-epoch renders coalesce into one through the view cache.
    let phases = [0.0, 0.07, 0.93, 0.93];
    let streams: Vec<_> = phases
        .iter()
        .map(|&phase| {
            let camera = camera_for(kind.view().orbited(phase, 1.6), 96, 72);
            service
                .subscribe(StreamRequest {
                    scene_id: job.scene_id(),
                    camera,
                })
                .expect("subscribe")
        })
        .collect();

    // Collect deltas until every subscriber has seen the final epoch. No
    // polling: recv blocks until the dispatcher pushes.
    let t0 = Instant::now();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut subscribers_json = Vec::new();
    let mut total_deltas = 0u64;
    for (i, stream) in streams.iter().enumerate() {
        let mut canvas = None;
        let mut deltas = 0u64;
        let mut tiles = 0usize;
        let mut tile_bytes = 0usize;
        let mut full_bytes = 0usize;
        loop {
            let delta = stream
                .recv_timeout(Duration::from_secs(600))
                .expect("delta pushed");
            let canvas = canvas.get_or_insert_with(|| delta.canvas());
            delta.apply(canvas);
            deltas += 1;
            tiles += delta.tiles.len();
            tile_bytes += delta.tile_bytes();
            full_bytes += delta.full_frame_bytes();
            csv.push(format!(
                "{i},{},{},{},{}",
                delta.epoch,
                delta.tiles.len(),
                delta.tile_bytes(),
                delta.full_frame_bytes()
            ));
            if delta.epoch >= final_epoch {
                break;
            }
        }
        // The reassembled viewport must equal the served frame bit-for-bit.
        let served = service
            .render_blocking(RenderRequest {
                scene_id: job.scene_id(),
                camera: stream.camera(),
            })
            .expect("served");
        let canvas = canvas.expect("received at least one delta");
        assert_eq!(served.epoch, final_epoch, "solve finished before compare");
        assert!(deltas >= 2, "subscriber {i} saw too few deltas");
        assert_eq!(
            canvas.pixels(),
            served.image.pixels(),
            "subscriber {i}: reassembled viewport diverged from the served frame"
        );
        let saved = full_bytes.saturating_sub(tile_bytes);
        assert!(
            saved > 0,
            "subscriber {i}: deltas failed to undercut frames"
        );
        subscribers_json.push(format!(
            "{{\"phase\":{},\"deltas\":{deltas},\"tiles\":{tiles},\"tile_bytes\":{tile_bytes},\"full_frame_bytes\":{full_bytes},\"saved_bytes\":{saved}}}",
            phases[i],
        ));
        rows.push(vec![
            format!("sub {i} (phase {})", phases[i]),
            deltas.to_string(),
            tiles.to_string(),
            fmt(tile_bytes as f64 / 1024.0),
            fmt(full_bytes as f64 / 1024.0),
            format!("{}%", (saved * 100 / full_bytes.max(1))),
        ]);
        total_deltas += deltas;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    job.wait_done(Duration::from_secs(600)).expect("converged");

    let m = service.metrics();
    if json_mode() {
        let mut report = JsonReport::new("streaming_serve");
        report
            .raw("subscribers", format!("[{}]", subscribers_json.join(",")))
            .int("total_deltas", total_deltas)
            .num("elapsed_s", elapsed)
            .num("deltas_per_sec", total_deltas as f64 / elapsed.max(1e-9))
            .int("stream_deltas", m.stream.deltas)
            .int("stream_tiles", m.stream.tiles)
            .int("stream_tile_bytes", m.stream.tile_bytes)
            .int("stream_full_frame_bytes", m.stream.full_frame_bytes)
            .int("stream_bytes_saved", m.stream.bytes_saved());
        report.print();
    } else {
        println!(
            "{}",
            md_table(
                &[
                    "subscriber",
                    "deltas",
                    "tiles",
                    "tile kB",
                    "full-frame kB",
                    "saved"
                ],
                &rows,
            )
        );
        println!(
            "pushed {} deltas in {:.2}s ({} deltas/s); stream tier: {} deltas, {} tiles, {} kB shipped vs {} kB full-frame ({} kB saved)",
            total_deltas,
            elapsed,
            fmt(total_deltas as f64 / elapsed.max(1e-9)),
            m.stream.deltas,
            m.stream.tiles,
            m.stream.tile_bytes / 1024,
            m.stream.full_frame_bytes / 1024,
            m.stream.bytes_saved() / 1024,
        );
    }
    // The shared-viewpoint pair coalesced: strictly fewer renders than
    // subscriber-deltas were pushed (cache hits answered the twin).
    assert!(
        m.rendered < m.stream.deltas + m.completed,
        "shared viewpoints should coalesce through the cache: {m:?}"
    );
    let path = write_csv(
        "streaming_serve.csv",
        "subscriber,epoch,tiles,tile_bytes,full_frame_bytes",
        &csv,
    );
    if !json_mode() {
        println!("per-delta series: {}", path.display());
    }
}
