//! **E11 — Fig 4.10: different viewpoints from the same answer file.**
//!
//! Paper: "Although the viewpoint is changing, no recalculation of the
//! global illumination is needed. All scenes were generated from the same
//! solution file." We simulate the Cornell Box once, serialize the answer,
//! deserialize it, and render four viewpoints — timing the simulation
//! against the renders to show re-viewing is cheap.

use photon_bench::{camera_for, fmt, heading, write_ppm};
use photon_core::view::{auto_exposure, render};
use photon_core::{Answer, Camera, SimConfig, Simulator};
use photon_math::Vec3;
use photon_scenes::TestScene;
use std::time::Instant;

fn main() {
    heading("Fig 4.10 — four viewpoints, one answer file");
    let scene = TestScene::CornellBox.build();
    let t0 = Instant::now();
    let mut sim = Simulator::new(
        scene,
        SimConfig {
            seed: 410,
            ..Default::default()
        },
    );
    sim.run_photons(400_000);
    let sim_secs = t0.elapsed().as_secs_f64();
    let answer = sim.answer_snapshot();
    let scene = sim.scene();

    // Round-trip through the binary answer file.
    let mut file = Vec::new();
    answer.write_to(&mut file).expect("serialize");
    let answer = Answer::read_from(&mut file.as_slice()).expect("deserialize");
    println!(
        "answer file: {} bytes for {} leaf bins ({} photons)",
        file.len(),
        answer.total_leaf_bins(),
        answer.emitted()
    );

    let base: Camera = camera_for(TestScene::CornellBox.view(), 240, 180);
    let views: [(&str, Vec3, Vec3); 4] = [
        ("fig4_10_front.ppm", base.eye, base.target),
        (
            "fig4_10_left.ppm",
            Vec3::new(-2.0, 3.5, -3.0),
            Vec3::new(2.8, 2.5, 2.8),
        ),
        (
            "fig4_10_right.ppm",
            Vec3::new(7.5, 3.5, -3.0),
            Vec3::new(2.8, 2.5, 2.8),
        ),
        (
            "fig4_10_high.ppm",
            Vec3::new(2.78, 5.2, -4.5),
            Vec3::new(2.78, 1.0, 2.8),
        ),
    ];
    let exposure = auto_exposure(scene, &answer);
    let t0 = Instant::now();
    for (file, eye, target) in views {
        let cam = Camera {
            eye,
            target,
            ..base
        };
        let img = render(scene, &answer, &cam, exposure);
        let path = write_ppm(file, &img);
        println!("view {} -> {}", file, path.display());
    }
    let view_secs = t0.elapsed().as_secs_f64();
    println!(
        "simulation: {} s once; 4 re-views: {} s total ({}x cheaper per view)",
        fmt(sim_secs),
        fmt(view_secs),
        fmt(sim_secs / (view_secs / 4.0).max(1e-9))
    );
}
