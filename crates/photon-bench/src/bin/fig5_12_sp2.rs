//! **E15 — Figs 5.12–5.14: IBM SP-2 speedup to 64 processors.**
//!
//! Paper: the SP-2 scales well *except* for a characteristic absolute-
//! performance drop from 2 to 4 processors: with 2 nodes each rank sends
//! one message per batch and the buffered asynchronous copy is hidden
//! behind computation; beyond that the buffer management cost surfaces and
//! shifts every curve down, after which scaling resumes cleanly. We sweep
//! 1..64 ranks on each scene over the SP-2 model and report the per-rank
//! efficiency dip.

use photon_bench::{fmt, heading, md_table, write_trace};
use photon_dist::{run_distributed, AdaptiveBatch, BalanceMode, BatchMode, DistConfig, StopRule};
use photon_scenes::TestScene;
use simmpi::Platform;

fn main() {
    heading("Figs 5.12-5.14 — SP-2 speed traces, 1..64 ranks (virtual time)");
    for scene_kind in TestScene::ALL {
        let scene = scene_kind.build();
        let mut summary = Vec::new();
        let mut serial_rate = 0.0;
        let mut prev_rate = 0.0;
        for &nranks in &[1usize, 2, 4, 8, 16, 32, 64] {
            let photons = 40_000u64 * nranks as u64; // fixed work per rank
            let config = DistConfig {
                seed: 512,
                nranks,
                platform: Platform::sp2(),
                balance: BalanceMode::BinPacking {
                    pilot_photons: 1000,
                },
                batch: BatchMode::Adaptive(AdaptiveBatch::default()),
                stop: StopRule::Photons(photons),
                ..Default::default()
            };
            let r = run_distributed(&scene, &config);
            let name = format!(
                "fig5_12_{}_p{}.csv",
                scene_kind.name().replace(' ', "_").to_lowercase(),
                nranks
            );
            write_trace(&name, &r.speed);
            let rate = r.speed.steady_rate();
            if nranks == 1 {
                serial_rate = rate;
            }
            let step = if prev_rate > 0.0 {
                rate / prev_rate
            } else {
                1.0
            };
            prev_rate = rate;
            summary.push(vec![
                nranks.to_string(),
                fmt(rate),
                fmt(rate / serial_rate.max(1e-9)),
                fmt(rate / (serial_rate * nranks as f64).max(1e-9)),
                fmt(step),
            ]);
        }
        println!("### {}\n", scene_kind.name());
        println!(
            "{}",
            md_table(
                &[
                    "ranks",
                    "steady rate",
                    "speedup",
                    "efficiency",
                    "rate vs previous row"
                ],
                &summary
            )
        );
        println!("(the 2 -> 4 row shows the buffered-async dip: step << 2, then recovery)\n");
    }
    println!("traces: bench_results/fig5_12_*.csv");
}
