//! **E9 — Fig 4.4: directional lighting by scaling the unit circle.**
//!
//! Paper: scaling the generation circle collimates emission (0.005 = the
//! sun's half-degree disc) and "correctly blurs shadows as the distance
//! from the occluding object increases" — unlike point-light ray tracing.
//! We trace the occluder scene, scan floor irradiance along a line through
//! the shadow (restricted to the shadow's `t` band so the 1-D profile keeps
//! full contrast), and measure the 15–85 % transition width of the shadow
//! edge at several occluder heights and collimations.

use photon_bench::{fmt, heading, md_table, write_csv};
use photon_core::generate::PhotonGenerator;
use photon_core::trace::trace_photon;
use photon_hist::BinPoint;
use photon_math::Rgb;
use photon_rng::Lcg48;
use photon_scenes::sun_room;

const STRIPS: usize = 200;

/// Floor tallies per `s` strip, restricted to `t ∈ [0.45, 0.55]` (the
/// shadow's band; the occluder spans 0.1 of each axis).
fn shadow_scan(h: f64, c: f64, photons: u64) -> Vec<f64> {
    let scene = sun_room(h, c);
    let generator = PhotonGenerator::new(&scene);
    let mut rng = Lcg48::new(44);
    let mut strips = vec![0u64; STRIPS];
    let mut sink = |pid: u32, p: &BinPoint, _e: Rgb| {
        if pid == 0 && (p.t - 0.5).abs() < 0.05 {
            strips[((p.s * STRIPS as f64) as usize).min(STRIPS - 1)] += 1;
        }
    };
    for _ in 0..photons {
        trace_photon(&scene, &generator, &mut rng, &mut sink);
    }
    strips.into_iter().map(|v| v as f64).collect()
}

/// 15–85 % transition width around the shadow, in world units (floor is 10
/// wide). Only the central shadow region [0.3, 0.7] is scanned so the lit
/// plateau's Monte-Carlo noise does not count as transition.
fn penumbra_width(profile: &[f64]) -> f64 {
    let lit: f64 = profile[..STRIPS / 5].iter().sum::<f64>() / (STRIPS / 5) as f64;
    if lit <= 0.0 {
        return 0.0;
    }
    let lo = 0.15 * lit;
    let hi = 0.85 * lit;
    let band = &profile[(STRIPS as f64 * 0.3) as usize..(STRIPS as f64 * 0.7) as usize];
    let inside = band.iter().filter(|&&v| v > lo && v < hi).count();
    inside as f64 / STRIPS as f64 * 10.0
}

fn main() {
    heading("Fig 4.4 — penumbra vs occluder height under a collimated source");
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for &(h, c) in &[
        (0.5, 0.15),
        (2.0, 0.15),
        (4.0, 0.15),
        (2.0, 0.05),
        (2.0, 0.3),
    ] {
        let profile = shadow_scan(h, c, 2_000_000);
        let w = penumbra_width(&profile);
        let c_f64: f64 = c;
        // Geometric expectation: edge blur ≈ 2·h·tan(asin(c)).
        let geo = 2.0 * h * c_f64 / (1.0 - c_f64 * c_f64).sqrt();
        rows.push(vec![fmt(h), fmt(c), fmt(w), fmt(geo)]);
        csv.push(format!("{h},{c},{w},{geo}"));
    }
    println!(
        "{}",
        md_table(
            &[
                "occluder height",
                "collimation scale",
                "penumbra width (world units, measured)",
                "geometric expectation",
            ],
            &rows
        )
    );
    println!("paper claims: penumbra grows with occluder distance and source width;");
    println!("(compare fig2_2: the point-light tracer's penumbra is ~0 at every height)");
    let path = write_csv(
        "fig4_4.csv",
        "occluder_height,collimation,penumbra_width,geometric_expectation",
        &csv,
    );
    println!("csv: {}", path.display());
}
