//! **Observability smoke — boot a pool, scrape the exporter, validate.**
//!
//! Runs a real solve/serve/stream workload (one progressive Cornell solve,
//! one subscriber, one served view), starts an [`ObsServer`] on loopback,
//! scrapes `GET /metrics` and `GET /metrics.json` over TCP like a
//! Prometheus agent would, and validates the exposition: every sample
//! line parses as `name{labels} value`, and the solve, render, and stream
//! tiers all report nonzero series. Exits nonzero on any violation — the
//! CI step that keeps the exporter honest:
//!
//! ```sh
//! cargo run --release -p photon-bench --bin obs_export
//! ```
//!
//! [`ObsServer`]: photon_serve::ObsServer

use photon_bench::{camera_for, heading};
use photon_scenes::TestScene;
use photon_serve::{
    AnswerStore, BackendChoice, ObsServer, RenderRequest, RenderService, ServeConfig, SolveRequest,
    SolverPool, StreamRequest,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn fetch(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect to ObsServer");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n").expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    response
}

fn body_of(response: &str) -> &str {
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "scrape failed: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    response.split("\r\n\r\n").nth(1).expect("response body")
}

fn main() {
    heading("Observability smoke — scrape a live pool's exporter");

    // A real workload so every tier has something to report.
    let kind = TestScene::CornellBox;
    let store = Arc::new(AnswerStore::new());
    let pool = SolverPool::start(Arc::clone(&store), 1);
    let service = RenderService::start(
        Arc::clone(&store),
        ServeConfig {
            tile_size: 16,
            ..ServeConfig::default()
        },
    );
    service.attach_solver(pool.stats_source());

    let mut request = SolveRequest::new("cornell-obs-smoke", kind.build());
    request.backend = BackendChoice::Serial;
    request.seed = 1997;
    request.batch_size = 5_000;
    request.target_photons = 10_000;
    let job = pool.submit(request);
    let stream = service
        .subscribe(StreamRequest {
            scene_id: job.scene_id(),
            camera: camera_for(kind.view(), 96, 72),
        })
        .expect("subscribe");
    stream
        .recv_timeout(Duration::from_secs(600))
        .expect("bootstrap delta");
    job.wait_done(Duration::from_secs(600)).expect("solved");
    stream
        .recv_timeout(Duration::from_secs(600))
        .expect("refinement delta");
    service
        .render_blocking(RenderRequest {
            scene_id: job.scene_id(),
            camera: camera_for(kind.view().orbited(0.25, 1.4), 96, 72),
        })
        .expect("served");

    let server = ObsServer::serve(service.exporter()).expect("bind loopback");
    let addr = server.local_addr();

    // --- Text exposition: parseable, and alive in all three tiers. ---
    let text = fetch(addr, "/metrics");
    let body = body_of(&text);
    let mut samples = 0usize;
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("exposition line has no value: {line:?}");
        });
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable sample value: {line:?}"
        );
        assert!(
            !name.is_empty() && name.starts_with("photon_"),
            "unexpected series name: {line:?}"
        );
        samples += 1;
    }
    let series = |prefix: &str| -> f64 {
        body.lines()
            .find(|l| l.starts_with(prefix))
            .unwrap_or_else(|| panic!("series {prefix} missing from exposition"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .expect("numeric sample")
    };
    let solve_photons = series("photon_solve_photons_total");
    let solver_done = series("photon_solver_done_total");
    let latency_count = series("photon_request_latency_us_count");
    let stream_deltas = series("photon_stream_deltas_total");
    let events = series("photon_events_recorded_total");
    assert!(solver_done >= 1.0, "solve tier dead: no finished jobs");
    assert!(solve_photons >= 10_000.0, "solve tier dead: no photons");
    assert!(latency_count >= 1.0, "render tier dead: no served requests");
    assert!(stream_deltas >= 2.0, "stream tier dead: no deltas pushed");
    assert!(events >= 1.0, "flight recorder dead: no events");

    // --- JSON dump: versioned, structurally balanced, carries events. ---
    let json = fetch(addr, "/metrics.json");
    let body = body_of(&json);
    assert!(body.starts_with("{\"version\":1,"), "JSON dump unversioned");
    assert_eq!(
        body.matches(['{', '[']).count(),
        body.matches(['}', ']']).count(),
        "JSON dump structurally unbalanced"
    );
    for kind in [
        "job-submitted",
        "epoch-published",
        "job-done",
        "delta-pushed",
    ] {
        assert!(
            body.contains(&format!("\"kind\":\"{kind}\"")),
            "flight-recorder tail missing {kind}"
        );
    }

    // --- Unknown routes 404 instead of confusing a scraper. ---
    assert!(
        fetch(addr, "/other").starts_with("HTTP/1.1 404"),
        "unknown route must 404"
    );

    drop(server);
    pool.shutdown();
    println!(
        "scraped {samples} samples from http://{addr}/metrics — solve {solve_photons} photons / {solver_done} jobs, render {latency_count} requests, stream {stream_deltas} deltas, {events} recorded events; JSON dump versioned and balanced."
    );
}
