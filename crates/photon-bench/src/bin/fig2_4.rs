//! **E5 — Fig 2.4: Spherical-harmonic approximation of specular
//! reflection, 30 terms.**
//!
//! Paper: a 30-term spherical-harmonic series of a specular spike "leaves
//! much to be desired, and moreover, there will always be ringing near the
//! spike". We project a tight lobe onto 30 zonal harmonics and emit the
//! series over deviation ∈ [−1.5, 1.5] rad — the exact axes of Fig 2.4 —
//! plus the quantified ringing amplitude.

use photon_baselines::sphharm::ZonalExpansion;
use photon_bench::{fmt, heading, write_csv};

fn main() {
    heading("Fig 2.4 — 30-term zonal-harmonic fit of a specular spike");
    let sharpness = 800.0;
    let terms = 30;
    let exp = ZonalExpansion::project(sharpness, terms, 20_000);
    let series = exp.figure_series(sharpness, 1.5, 301);
    let rows: Vec<String> = series
        .iter()
        .map(|(d, truth, approx)| format!("{d:.4},{truth:.6},{approx:.6}"))
        .collect();
    let path = write_csv("fig2_4.csv", "deviation_rad,target,approximation", &rows);
    let undershoot = exp.max_undershoot(1.5, 2000);
    let peak = exp.eval(0.0);
    println!("terms: {terms}, lobe sharpness: {sharpness}");
    println!("peak recovered: {} (target 1.0)", fmt(peak));
    println!("max ringing undershoot below zero: {}", fmt(undershoot));
    println!("paper claim: \"even at 30 terms the accuracy leaves much to be desired\"");
    println!("csv: {}", path.display());
}
