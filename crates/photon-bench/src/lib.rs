//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the dissertation's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured). Binaries print a markdown summary
//! to stdout and drop raw CSV series / PPM images under `bench_results/`.

#![deny(missing_docs)]

use photon_core::img::Image;
use photon_core::SpeedTrace;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Output directory for CSV/PPM artifacts (created on demand).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("bench_results");
    fs::create_dir_all(&dir).expect("create bench_results/");
    dir
}

/// Writes rows as CSV with a header line; returns the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    path
}

/// Saves a speed trace as CSV; returns the path.
pub fn write_trace(name: &str, trace: &SpeedTrace) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create trace csv");
    writeln!(f, "elapsed_s,rate_photons_per_s,photons").unwrap();
    write!(f, "{}", trace.to_csv()).unwrap();
    path
}

/// Saves a PPM image; returns the path.
pub fn write_ppm(name: &str, img: &Image) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create ppm");
    img.write_ppm(&mut f).expect("write ppm");
    path
}

/// Renders a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints a section heading for the experiment logs (suppressed under
/// [`json_mode`], where stdout must be one JSON object).
pub fn heading(title: &str) {
    if !json_mode() {
        println!("\n## {title}\n");
    }
}

/// True when `--json` was passed: the binary emits a single JSON object
/// on stdout (machine-readable, for baselines like `BENCH_baseline.json`)
/// instead of markdown tables. Assertions still run either way.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Hand-rolled JSON object builder for `--json` bench reports — the
/// workspace has no serializer dependency, and bench output is flat
/// enough not to need one.
pub struct JsonReport {
    bench: String,
    fields: Vec<(String, String)>,
}

impl JsonReport {
    /// A report named after the bench binary.
    pub fn new(bench: impl Into<String>) -> Self {
        JsonReport {
            bench: bench.into(),
            fields: Vec::new(),
        }
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, v: u64) -> &mut Self {
        self.raw(key, v.to_string())
    }

    /// Adds a float field (non-finite values become `null`).
    pub fn num(&mut self, key: &str, v: f64) -> &mut Self {
        let rendered = if v.is_finite() {
            format!("{v:.6}")
        } else {
            "null".to_string()
        };
        self.raw(key, rendered)
    }

    /// Adds a string field (escaped).
    pub fn text(&mut self, key: &str, v: &str) -> &mut Self {
        self.raw(key, format!("\"{}\"", photon_core::obs::json_escape(v)))
    }

    /// Adds a pre-rendered JSON value — nested objects and arrays are the
    /// caller's responsibility.
    pub fn raw(&mut self, key: &str, rendered_json: impl Into<String>) -> &mut Self {
        self.fields.push((key.to_string(), rendered_json.into()));
        self
    }

    /// The report as one JSON object.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\"bench\":\"{}\"",
            photon_core::obs::json_escape(&self.bench)
        );
        for (key, value) in &self.fields {
            out.push_str(&format!(
                ",\"{}\":{}",
                photon_core::obs::json_escape(key),
                value
            ));
        }
        out.push('}');
        out
    }

    /// Prints the report — the only stdout a `--json` run produces.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Builds a `photon_core` camera from a scene's recommended view.
pub fn camera_for(
    view: photon_scenes::ViewSpec,
    width: usize,
    height: usize,
) -> photon_core::Camera {
    photon_core::Camera {
        eye: view.eye,
        target: view.target,
        up: view.up,
        vfov_deg: view.vfov_deg,
        width,
        height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_table_shape() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn json_report_shape() {
        let mut r = JsonReport::new("demo");
        r.int("count", 3)
            .num("rate", 1.5)
            .num("bad", f64::NAN)
            .text("label", "a\"b")
            .raw("nested", "{\"x\":1}");
        let s = r.render();
        assert_eq!(
            s,
            "{\"bench\":\"demo\",\"count\":3,\"rate\":1.500000,\"bad\":null,\
             \"label\":\"a\\\"b\",\"nested\":{\"x\":1}}"
        );
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(1.5), "1.50");
        assert_eq!(fmt(0.1234), "0.1234");
    }
}
