//! Shared plumbing for the experiment binaries.
//!
//! Every table and figure of the dissertation's evaluation has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured). Binaries print a markdown summary
//! to stdout and drop raw CSV series / PPM images under `bench_results/`.

#![deny(missing_docs)]

use photon_core::img::Image;
use photon_core::SpeedTrace;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Output directory for CSV/PPM artifacts (created on demand).
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from("bench_results");
    fs::create_dir_all(&dir).expect("create bench_results/");
    dir
}

/// Writes rows as CSV with a header line; returns the path.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    path
}

/// Saves a speed trace as CSV; returns the path.
pub fn write_trace(name: &str, trace: &SpeedTrace) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create trace csv");
    writeln!(f, "elapsed_s,rate_photons_per_s,photons").unwrap();
    write!(f, "{}", trace.to_csv()).unwrap();
    path
}

/// Saves a PPM image; returns the path.
pub fn write_ppm(name: &str, img: &Image) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = fs::File::create(&path).expect("create ppm");
    img.write_ppm(&mut f).expect("write ppm");
    path
}

/// Renders a markdown table.
pub fn md_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Prints a section heading for the experiment logs.
pub fn heading(title: &str) {
    println!("\n## {title}\n");
}

/// Builds a `photon_core` camera from a scene's recommended view.
pub fn camera_for(
    view: photon_scenes::ViewSpec,
    width: usize,
    height: usize,
) -> photon_core::Camera {
    photon_core::Camera {
        eye: view.eye,
        target: view.target,
        up: view.up,
        vfov_deg: view.vfov_deg,
        width,
        height,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_table_shape() {
        let t = md_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(123.4), "123");
        assert_eq!(fmt(1.5), "1.50");
        assert_eq!(fmt(0.1234), "0.1234");
    }
}
