//! Round-trip and corruption tests for the `PHOTCK1` checkpoint codec,
//! driven through the full simulator — the mirror of the `PHOTANS1`
//! answer-codec suite. Every corruption must come back as an error, never
//! a panic or a silently wrong checkpoint.

use photon_core::{EngineCheckpoint, SimConfig, Simulator, SolverEngine};
use photon_scenes::cornell_box;

fn simulated_checkpoint(photons: u64) -> EngineCheckpoint {
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 321,
            ..Default::default()
        },
    );
    sim.run_photons(photons);
    sim.checkpoint()
}

#[test]
fn write_read_round_trip_preserves_the_resume_state() {
    let ck = simulated_checkpoint(6_000);
    let bytes = ck.to_bytes();
    assert_eq!(bytes.len() as u64, ck.encoded_size());
    let back = EngineCheckpoint::from_bytes(&bytes).unwrap();
    assert_eq!(back.seed(), ck.seed());
    assert_eq!(back.cursor(), ck.cursor());
    assert_eq!(back.stats(), ck.stats());
    assert_eq!(back.split(), ck.split());
    assert_eq!(back.patch_count(), ck.patch_count());
    assert_eq!(back.total_leaf_bins(), ck.total_leaf_bins());
    // Byte-stable across a round trip, like the answer codec.
    assert_eq!(back.to_bytes(), bytes);
}

#[test]
fn a_decoded_checkpoint_resumes_exactly_like_the_original() {
    // The decisive property: the *decoded* checkpoint drives a resume that
    // is bit-identical to an uninterrupted solve — the split statistics in
    // each leaf survived the codec, not just the displayed answer.
    let cfg = SimConfig {
        seed: 321,
        ..Default::default()
    };
    let mut straight = Simulator::new(cornell_box(), cfg);
    straight.run_photons(9_000);
    let ck = EngineCheckpoint::from_bytes(&simulated_checkpoint(6_000).to_bytes()).unwrap();
    let mut resumed = Simulator::new(cornell_box(), cfg);
    resumed.restore(&ck).unwrap();
    resumed.run_photons(3_000);
    let answer_bytes = |s: &Simulator| {
        let mut buf = Vec::new();
        s.answer_snapshot().write_to(&mut buf).unwrap();
        buf
    };
    assert_eq!(answer_bytes(&resumed), answer_bytes(&straight));
}

#[test]
fn corrupt_magic_is_rejected() {
    let mut bytes = simulated_checkpoint(2_000).to_bytes();
    bytes[0] ^= 0xFF;
    let err = EngineCheckpoint::from_bytes(&bytes).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("not a Photon checkpoint"));
}

#[test]
fn an_answer_file_is_not_a_checkpoint() {
    // `PHOTANS1` and `PHOTCK1` share the tree block but must never parse
    // as each other: the magics differ in the first 7 bytes' tail.
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 321,
            ..Default::default()
        },
    );
    sim.run_photons(1_000);
    let mut answer_file = Vec::new();
    sim.answer_snapshot().write_to(&mut answer_file).unwrap();
    assert!(EngineCheckpoint::from_bytes(&answer_file).is_err());
}

#[test]
fn version_mismatch_is_rejected_with_its_own_error() {
    let mut bytes = simulated_checkpoint(2_000).to_bytes();
    bytes[7] = 2; // the version byte follows the 7-byte magic
    let err = EngineCheckpoint::from_bytes(&bytes).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(
        err.to_string().contains("version 2"),
        "unhelpful version error: {err}"
    );
}

#[test]
fn truncation_anywhere_errors_cleanly() {
    let bytes = simulated_checkpoint(2_000).to_bytes();
    // Header boundaries, mid-tree, and one byte short.
    for cut in [0, 3, 7, 8, 16, 60, 81, 82, bytes.len() / 3, bytes.len() - 1] {
        assert!(
            EngineCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} bytes parsed"
        );
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = simulated_checkpoint(2_000).to_bytes();
    bytes.push(0);
    assert!(EngineCheckpoint::from_bytes(&bytes).is_err());
    // Even a whole second checkpoint appended must fail: a checkpoint file
    // is exactly one checkpoint.
    let mut twice = simulated_checkpoint(1_000).to_bytes();
    twice.extend(simulated_checkpoint(1_000).to_bytes());
    assert!(EngineCheckpoint::from_bytes(&twice).is_err());
}

#[test]
fn corrupt_node_tag_and_axis_are_rejected() {
    let ck = simulated_checkpoint(2_000);
    let bytes = ck.to_bytes();
    // First node tag of the first tree sits right after the fixed header:
    // magic(7) + version(1) + seed(8) + cursor(8) + stats(40) + rule(12) +
    // depth(2) + patch count(4) + node count(4) = 86.
    let mut bad_tag = bytes.clone();
    bad_tag[86] = 9;
    assert!(EngineCheckpoint::from_bytes(&bad_tag).is_err());
    // An internal node's axis byte of 4+ must be rejected, not index out
    // of bounds. Find an internal node (tag 1) and break its axis.
    let mut bad_axis = bytes.clone();
    let mut i = 86;
    let mut broke_one = false;
    // Walk the first tree's nodes to find an internal one.
    for _ in 0..u32::from_le_bytes(bytes[82..86].try_into().unwrap()) {
        match bad_axis[i] {
            0 => i += 1 + 52,
            1 => {
                bad_axis[i + 1] = 7;
                broke_one = true;
                break;
            }
            _ => unreachable!("valid encoding"),
        }
    }
    if broke_one {
        assert!(EngineCheckpoint::from_bytes(&bad_axis).is_err());
    }
}

#[test]
fn lying_count_headers_error_instead_of_exhausting_memory() {
    let bytes = simulated_checkpoint(2_000).to_bytes();
    // Patch count (offset 78) and the first tree's node count (offset 82)
    // claim u32::MAX entries; the reader must fail on the missing data,
    // not abort trying to pre-allocate gigabytes.
    for offset in [78usize, 82] {
        let mut lying = bytes.clone();
        lying[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(
            EngineCheckpoint::from_bytes(&lying).is_err(),
            "lying count at {offset} parsed"
        );
    }
}

#[test]
fn cursor_beyond_emitted_is_rejected() {
    let mut bytes = simulated_checkpoint(2_000).to_bytes();
    // The cursor sits at offset 16..24 (magic 7 + version 1 + seed 8);
    // pointing it past the emitted count would resume at the wrong stream
    // index without any other field looking wrong.
    bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = EngineCheckpoint::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("cursor"), "{err}");
}

#[test]
fn unconserved_counters_are_rejected() {
    let mut bytes = simulated_checkpoint(2_000).to_bytes();
    // stats.emitted sits at offset 24 (magic 7 + version 1 + seed 8 +
    // cursor 8); bump it so emitted != absorbed + escaped + capped.
    bytes[24] = bytes[24].wrapping_add(1);
    let err = EngineCheckpoint::from_bytes(&bytes).unwrap_err();
    assert!(err.to_string().contains("conserved"), "{err}");
}

#[test]
fn save_load_round_trips_through_a_file() {
    let ck = simulated_checkpoint(3_000);
    let path = std::env::temp_dir().join(format!("photon-ck-{}.photck", std::process::id()));
    ck.save(&path).unwrap();
    let meta = std::fs::metadata(&path).unwrap();
    assert_eq!(meta.len(), ck.encoded_size());
    let back = EngineCheckpoint::load(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(back.to_bytes(), ck.to_bytes());
}

#[test]
fn loading_a_missing_file_is_an_error_not_a_panic() {
    let path = std::env::temp_dir().join("photon-ck-definitely-missing.photck");
    assert!(EngineCheckpoint::load(&path).is_err());
}
