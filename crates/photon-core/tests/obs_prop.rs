//! Property tests for the log2-bucketed [`Histogram`]: the quantile
//! approximation stays within one bucket of the exact nearest-rank
//! statistic, and merging histograms is indistinguishable from having
//! recorded the concatenated stream into one.

use photon_core::Histogram;
use proptest::prelude::*;

/// Latency-shaped samples: mostly small values with a heavy tail, plus
/// exact powers of two (and their predecessors) to sit right on bucket
/// boundaries.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    // Bits capped at 48 so 400 samples can never overflow a u64 sum —
    // the test compares against an exact `iter().sum()`.
    proptest::collection::vec((0u32..5, 0u64..1 << 20, 0u32..49), 1..400).prop_map(|raws| {
        raws.into_iter()
            .map(|(class, v, bit)| match class {
                0 => v % 16,
                1 => 16 + v % 4_080,
                2 => v,
                3 => 1u64 << bit,
                _ => (1u64 << bit).wrapping_sub(1),
            })
            .collect()
    })
}

/// Exact nearest-rank quantile over the raw samples — the statistic the
/// bucketed estimate approximates.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The bucket a value lands in: 0 for 0, else its bit length.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (u64::BITS - v.leading_zeros()) as usize
    }
}

fn record_all(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For every quantile, the bucketed estimate lives in the same log2
    /// bucket as the exact nearest-rank sample (never below it), and the
    /// count/sum/max accounting is exact.
    #[test]
    fn quantile_within_one_bucket_of_exact(samples in arb_samples(), q in 0.01f64..1.0) {
        let h = record_all(&samples).snapshot();
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum, samples.iter().sum::<u64>());
        prop_assert_eq!(h.max, *sorted.last().unwrap());

        let exact = exact_nearest_rank(&sorted, q);
        let est = h.quantile(q);
        // The estimate is the bucket's upper bound clamped to the true
        // max: always >= the exact statistic, and within its bucket.
        prop_assert!(est >= exact,
            "estimate {} fell below exact nearest-rank {}", est, exact);
        prop_assert!(bucket_of(est) <= bucket_of(exact).max(bucket_of(h.max.min(est))),
            "estimate {} escaped the exact value's bucket ({} vs {})",
            est, bucket_of(est), bucket_of(exact));
        prop_assert_eq!(bucket_of(est.min(h.max)), bucket_of(est),
            "estimate clamped past the exact max");
        // Tight form of "within one bucket": the estimate never exceeds
        // the upper bound of the exact value's bucket (or the max).
        let upper = if bucket_of(exact) >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket_of(exact)) - 1
        };
        prop_assert!(est <= upper.min(h.max).max(exact),
            "estimate {} beyond exact's bucket upper {} (max {})", est, upper, h.max);
    }

    /// Merging two snapshots equals one histogram fed the concatenation:
    /// identical buckets, sum, max — hence identical quantiles. This is
    /// the property that makes per-shard histograms aggregatable.
    #[test]
    fn merge_equals_concatenation(a in arb_samples(), b in arb_samples()) {
        let mut merged = record_all(&a).snapshot();
        merged.merge(&record_all(&b).snapshot());

        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        let whole = record_all(&concat).snapshot();

        prop_assert_eq!(&merged.buckets[..], &whole.buckets[..]);
        prop_assert_eq!(merged.sum, whole.sum);
        prop_assert_eq!(merged.max, whole.max);
        prop_assert_eq!(merged.count(), whole.count());
        for q in [0.5, 0.9, 0.99, 1.0] {
            prop_assert_eq!(merged.quantile(q), whole.quantile(q));
        }
    }
}
