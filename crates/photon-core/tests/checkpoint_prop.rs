//! Property tests for the `PHOTCK1` checkpoint codec: encode/decode round
//! trips over arbitrary forest shapes, tally contents, split policies, and
//! RNG cursors.

use photon_core::checkpoint::EngineCheckpoint;
use photon_core::{BinForest, SimStats};
use photon_hist::{BinPoint, SplitConfig, SplitRule};
use photon_math::Rgb;
use proptest::prelude::*;
use std::f64::consts::TAU;

fn arb_point() -> impl Strategy<Value = BinPoint> {
    (0.0f64..1.0, 0.0f64..1.0, 0.0f64..TAU, 0.0f64..1.0)
        .prop_map(|(s, t, th, r)| BinPoint::new(s, t, th, r))
}

/// Tally streams with a warp so some runs concentrate and split deeply.
fn arb_stream() -> impl Strategy<Value = Vec<(BinPoint, Rgb)>> {
    (
        proptest::collection::vec(arb_point(), 50..1500),
        1u32..4,
        0.0f64..2.0,
    )
        .prop_map(|(pts, warp, energy)| {
            pts.into_iter()
                .map(|mut p| {
                    p.s = p.s.powi(warp as i32);
                    p.r_sq = p.r_sq.powi(warp as i32);
                    (p, Rgb::new(energy, energy * 0.5, energy * 0.25))
                })
                .collect()
        })
}

/// Split policies spanning loose to strict rules and shallow to deep caps.
fn arb_split() -> impl Strategy<Value = SplitConfig> {
    (1.0f64..6.0, 8u32..64, 2u16..24).prop_map(|(sigmas, min_count, max_depth)| SplitConfig {
        rule: SplitRule { sigmas, min_count },
        max_depth,
    })
}

/// Conserved-by-construction photon counters.
fn arb_stats() -> impl Strategy<Value = SimStats> {
    (0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 40, 0u64..1 << 44).prop_map(
        |(absorbed, escaped, capped, reflections)| SimStats {
            emitted: absorbed + escaped + capped,
            absorbed,
            escaped,
            capped,
            reflections,
        },
    )
}

/// A forest of 1..6 patches grown from per-patch tally streams.
fn arb_forest() -> impl Strategy<Value = (SplitConfig, BinForest)> {
    (arb_split(), proptest::collection::vec(arb_stream(), 1..6)).prop_map(|(split, streams)| {
        let mut forest = BinForest::new(streams.len(), split);
        for (pid, stream) in streams.iter().enumerate() {
            for (p, e) in stream {
                forest.tally(pid as u32, p, *e);
            }
        }
        (split, forest)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every field and every leaf of every tree survives the codec, and
    /// the encoding is byte-stable across a second round trip.
    #[test]
    fn round_trip_is_lossless_and_byte_stable(
        grown in arb_forest(),
        stats in arb_stats(),
        seed in 0u64..u64::MAX,
        cursor_frac in 0.0f64..1.0,
    ) {
        let (split, forest) = grown;
        // The codec rejects cursors beyond the emitted count (corruption),
        // so valid checkpoints sample the cursor inside it.
        let cursor = (stats.emitted as f64 * cursor_frac) as u64;
        let ck = EngineCheckpoint::new(seed, cursor, stats, split, forest.clone().into_trees());
        let bytes = ck.to_bytes();
        prop_assert_eq!(bytes.len() as u64, ck.encoded_size());
        let back = EngineCheckpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back.seed(), seed);
        prop_assert_eq!(back.cursor(), cursor);
        prop_assert_eq!(back.stats(), stats);
        prop_assert_eq!(back.split(), split);
        prop_assert_eq!(back.patch_count(), forest.len());
        prop_assert_eq!(back.total_leaf_bins(), forest.total_leaf_bins());
        prop_assert_eq!(back.to_bytes(), bytes);
        // Leaf-for-leaf equality, including the speculative split state
        // that makes resumes bit-identical.
        let rebuilt = back.forest();
        for (pid, tree) in forest.iter() {
            let mut mine = Vec::new();
            tree.for_each_leaf(|range, stats| mine.push((*range, *stats)));
            let mut theirs = Vec::new();
            rebuilt.tree(pid).for_each_leaf(|range, stats| theirs.push((*range, *stats)));
            prop_assert_eq!(&mine, &theirs, "patch {} diverged", pid);
        }
    }

    /// A restored forest keeps tallying (and splitting) exactly like the
    /// original under any continuation stream.
    #[test]
    fn decoded_forest_continues_identically(
        grown in arb_forest(),
        continuation in arb_stream(),
    ) {
        let (split, forest) = grown;
        let trees = forest.clone().into_trees();
        let ck = EngineCheckpoint::new(1, 0, SimStats::default(), split, trees);
        let decoded = EngineCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        let mut original = forest;
        let mut restored = decoded.forest();
        let patches = original.len() as u32;
        for (i, (p, e)) in continuation.iter().enumerate() {
            let pid = i as u32 % patches;
            let split_a = original.tally(pid, p, *e);
            let split_b = restored.tally(pid, p, *e);
            prop_assert_eq!(split_a, split_b, "split decisions diverged at tally {}", i);
        }
        prop_assert_eq!(original.total_leaf_bins(), restored.total_leaf_bins());
    }

    /// Any truncation of a valid encoding errors instead of panicking.
    #[test]
    fn truncations_never_panic(
        grown in arb_forest(),
        frac in 0.0f64..1.0,
    ) {
        let (split, forest) = grown;
        let ck = EngineCheckpoint::new(3, 0, SimStats::default(), split, forest.into_trees());
        let bytes = ck.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * frac) as usize;
        prop_assert!(EngineCheckpoint::from_bytes(&bytes[..cut]).is_err());
    }
}
