//! Round-trip and corruption tests for the `PHOTANS1` answer codec, driven
//! through the full simulator rather than hand-built forests.

use photon_core::{Answer, SimConfig, Simulator};
use photon_scenes::cornell_box;

fn simulated_answer(photons: u64) -> (photon_geom::Scene, Answer) {
    let mut sim = Simulator::new(
        cornell_box(),
        SimConfig {
            seed: 123,
            ..Default::default()
        },
    );
    sim.run_photons(photons);
    let answer = sim.answer_snapshot();
    (sim.scene().clone(), answer)
}

#[test]
fn write_read_round_trip_preserves_the_solution() {
    let (scene, answer) = simulated_answer(8_000);
    let mut buf = Vec::new();
    answer.write_to(&mut buf).unwrap();
    let back = Answer::read_from(&mut buf.as_slice()).unwrap();

    assert_eq!(back.emitted(), answer.emitted());
    assert_eq!(back.patch_count(), answer.patch_count());
    assert_eq!(back.total_leaf_bins(), answer.total_leaf_bins());
    // Radiance queries agree everywhere we probe.
    for pid in 0..answer.patch_count() as u32 {
        assert_eq!(
            answer.mean_patch_radiance(&scene, pid),
            back.mean_patch_radiance(&scene, pid),
            "patch {pid} radiance drifted through the codec"
        );
    }
}

#[test]
fn round_trip_is_stable_under_reserialization() {
    let (_, answer) = simulated_answer(4_000);
    let mut once = Vec::new();
    answer.write_to(&mut once).unwrap();
    let back = Answer::read_from(&mut once.as_slice()).unwrap();
    let mut twice = Vec::new();
    back.write_to(&mut twice).unwrap();
    assert_eq!(once, twice, "codec is not byte-stable across a round trip");
}

#[test]
fn corrupt_magic_is_rejected() {
    let (_, answer) = simulated_answer(2_000);
    let mut buf = Vec::new();
    answer.write_to(&mut buf).unwrap();
    buf[0] ^= 0xFF; // break the PHOTANS1 magic
    let err = Answer::read_from(&mut buf.as_slice()).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn corrupt_node_tag_is_rejected() {
    let (_, answer) = simulated_answer(2_000);
    let mut buf = Vec::new();
    answer.write_to(&mut buf).unwrap();
    // First node tag of the first tree sits right after magic(8) +
    // patch count(4) + emitted(8) + node count(4).
    buf[24] = 9;
    assert!(Answer::read_from(&mut buf.as_slice()).is_err());
}

#[test]
fn truncation_anywhere_errors_cleanly() {
    let (_, answer) = simulated_answer(2_000);
    let mut buf = Vec::new();
    answer.write_to(&mut buf).unwrap();
    for cut in [0, 4, 8, 19, buf.len() / 3, buf.len() - 1] {
        assert!(
            Answer::read_from(&mut &buf[..cut]).is_err(),
            "truncation at {cut} bytes parsed"
        );
    }
}
