//! Simple linear-RGB images with PPM output.

use photon_math::Rgb;
use std::io::{self, Write};

/// A row-major image of linear RGB values.
#[derive(Clone, Debug)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<Rgb>,
}

impl Image {
    /// A black image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0);
        Image {
            width,
            height,
            pixels: vec![Rgb::BLACK; width * height],
        }
    }

    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> Rgb {
        self.pixels[y * self.width + x]
    }

    /// Pixel mutator.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: Rgb) {
        self.pixels[y * self.width + x] = c;
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[Rgb] {
        &self.pixels
    }

    /// Mean luminance of the image (exposure reference).
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        self.pixels.iter().map(|p| p.luminance()).sum::<f64>() / self.pixels.len() as f64
    }

    /// Multiplies every pixel by `k` (exposure).
    pub fn scaled(mut self, k: f64) -> Image {
        for p in &mut self.pixels {
            *p *= k;
        }
        self
    }

    /// Root-mean-square luminance error against another image of the same
    /// size — the quality metric of the visual-speedup experiment
    /// (Fig 5.16).
    pub fn rms_error(&self, other: &Image) -> f64 {
        assert_eq!(self.width, other.width);
        assert_eq!(self.height, other.height);
        let sum: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| {
                let d = a.luminance() - b.luminance();
                d * d
            })
            .sum();
        (sum / self.pixels.len() as f64).sqrt()
    }

    /// Box-filter downsample by integer `factor` (trailing partial blocks
    /// are dropped). Spatial averaging suppresses bin-boundary variance,
    /// making coarse image comparisons meaningful at low photon counts.
    pub fn downsampled(&self, factor: usize) -> Image {
        assert!(factor > 0);
        let w = (self.width / factor).max(1);
        let h = (self.height / factor).max(1);
        let mut out = Image::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let mut acc = Rgb::BLACK;
                let mut n = 0.0;
                for dy in 0..factor {
                    for dx in 0..factor {
                        let sx = x * factor + dx;
                        let sy = y * factor + dy;
                        if sx < self.width && sy < self.height {
                            acc += self.get(sx, sy);
                            n += 1.0;
                        }
                    }
                }
                out.set(x, y, acc / n);
            }
        }
        out
    }

    /// Writes a binary PPM (P6), gamma-encoded 8-bit.
    pub fn write_ppm<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = io::BufWriter::new(w);
        write!(out, "P6\n{} {}\n255\n", self.width, self.height)?;
        for p in &self.pixels {
            out.write_all(&p.to_srgb8())?;
        }
        out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixels_round_trip() {
        let mut img = Image::new(4, 3);
        img.set(2, 1, Rgb::new(0.5, 0.25, 1.0));
        assert_eq!(img.get(2, 1), Rgb::new(0.5, 0.25, 1.0));
        assert_eq!(img.get(0, 0), Rgb::BLACK);
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::new(2, 2);
        let mut buf = Vec::new();
        img.write_ppm(&mut buf).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(buf.len(), 11 + 2 * 2 * 3);
    }

    #[test]
    fn rms_error_of_identical_images_is_zero() {
        let mut a = Image::new(3, 3);
        a.set(1, 1, Rgb::WHITE);
        assert_eq!(a.rms_error(&a.clone()), 0.0);
        let b = Image::new(3, 3);
        assert!(a.rms_error(&b) > 0.0);
    }

    #[test]
    fn scaling_scales_luminance() {
        let mut a = Image::new(2, 1);
        a.set(0, 0, Rgb::gray(0.5));
        a.set(1, 0, Rgb::gray(0.5));
        let before = a.mean_luminance();
        let after = a.scaled(2.0).mean_luminance();
        assert!((after - 2.0 * before).abs() < 1e-12);
    }
}
