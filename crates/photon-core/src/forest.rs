//! The bin forest: one 4-D adaptive histogram per scene patch (Fig 4.6).

use crate::batch::TallyRecord;
use photon_hist::{BinPoint, BinRange, BinTree, LeafStats, SplitConfig};
use photon_math::Rgb;

/// Resident-memory footprint of a forest, split by arena: hot packed-node
/// bytes (what a descent strides over), cold leaf-statistics bytes (what a
/// tally lands in), and the leaf-bin count. Reported per step through
/// [`crate::BatchReport`] and surfaced as gauges by the serving layer's
/// metrics and exporters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ForestFootprint {
    /// Bytes of the hot packed-node arenas across all trees.
    pub node_bytes: u64,
    /// Bytes of the cold leaf-statistics arenas across all trees.
    pub leaf_bytes: u64,
    /// Leaf bins across all trees (Table 5.1's view-dependent polygons).
    pub leaf_bins: u64,
}

impl ForestFootprint {
    /// Folds another footprint into this one (per-rank/per-tree sums).
    pub fn merge(&mut self, other: &ForestFootprint) {
        self.node_bytes += other.node_bytes;
        self.leaf_bytes += other.leaf_bytes;
        self.leaf_bins += other.leaf_bins;
    }

    /// Accounts one tree.
    pub fn add_tree(&mut self, tree: &BinTree) {
        self.node_bytes += tree.node_bytes() as u64;
        self.leaf_bytes += tree.leaf_bytes() as u64;
        self.leaf_bins += tree.leaf_count() as u64;
    }
}

/// A forest of [`BinTree`]s indexed by patch id — the paper's principal data
/// structure, "capable of recording the answer of a global illumination
/// model with the color of every patch as a function of the position on the
/// patch and the viewing direction".
#[derive(Clone, Debug)]
pub struct BinForest {
    trees: Vec<BinTree>,
}

impl BinForest {
    /// One fresh tree per patch.
    pub fn new(patch_count: usize, config: SplitConfig) -> Self {
        BinForest {
            trees: (0..patch_count).map(|_| BinTree::new(config)).collect(),
        }
    }

    /// Number of patches (trees).
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True when the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Validates a patch id, turning the raw slice-index panic into a
    /// diagnosable one. An out-of-range id here almost always means a
    /// corrupt record crossed a process boundary (distributed exchange,
    /// checkpoint, answer file) — say so instead of `index out of bounds`.
    #[inline]
    #[track_caller]
    fn tree_slot(&self, patch_id: u32) -> usize {
        let idx = patch_id as usize;
        debug_assert!(
            idx < self.trees.len(),
            "patch_id {patch_id} out of range: forest has {} patches",
            self.trees.len()
        );
        if idx >= self.trees.len() {
            panic!(
                "BinForest: patch_id {patch_id} out of range (forest has {} patches) — \
                 corrupt tally record or wrong scene?",
                self.trees.len()
            );
        }
        idx
    }

    /// Tallies a photon interaction on `patch_id`; returns `true` when the
    /// bin split (`UpdateBinCount` + `NeedsSplit`/`Split` of Fig 4.1).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `patch_id` is outside the
    /// forest (a corrupt record or a forest built for a different scene).
    #[inline]
    pub fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) -> bool {
        let idx = self.tree_slot(patch_id);
        self.trees[idx].tally(point, energy)
    }

    /// Applies one patch's batch of records as a single uninterrupted run
    /// (the apply phase of [`crate::batch`]), reusing the leaf descent for
    /// consecutive same-leaf records. Records must already be in serial
    /// `(photon, bounce)` order — [`crate::batch::PartitionScratch`]
    /// guarantees this — and the result is bit-identical to tallying them
    /// one at a time. Returns the number of leaf splits triggered.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `patch_id` is outside the
    /// forest.
    pub fn tally_run(&mut self, patch_id: u32, records: &[TallyRecord]) -> u64 {
        let idx = self.tree_slot(patch_id);
        self.trees[idx].tally_run(records.iter().map(|r| (&r.point, r.energy)))
    }

    /// Read-only leaf lookup (`DetermineBin` for the viewer).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `patch_id` is outside the
    /// forest.
    #[inline]
    pub fn lookup(&self, patch_id: u32, point: &BinPoint) -> (&LeafStats, BinRange) {
        self.trees[self.tree_slot(patch_id)].lookup(point)
    }

    /// The tree of one patch.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `patch_id` is outside the
    /// forest.
    #[inline]
    pub fn tree(&self, patch_id: u32) -> &BinTree {
        &self.trees[self.tree_slot(patch_id)]
    }

    /// Mutable tree access (used by the distributed receiver path).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when `patch_id` is outside the
    /// forest.
    #[inline]
    pub fn tree_mut(&mut self, patch_id: u32) -> &mut BinTree {
        let idx = self.tree_slot(patch_id);
        &mut self.trees[idx]
    }

    /// Iterates over `(patch_id, tree)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &BinTree)> {
        self.trees.iter().enumerate().map(|(i, t)| (i as u32, t))
    }

    /// Total leaf bins over all trees — the paper's "view-dependent polygon"
    /// count (Table 5.1).
    pub fn total_leaf_bins(&self) -> u64 {
        self.trees.iter().map(|t| t.leaf_count() as u64).sum()
    }

    /// Total tallies recorded.
    pub fn total_tallies(&self) -> u64 {
        self.trees.iter().map(|t| t.tallies()).sum()
    }

    /// Approximate resident bytes (Fig 5.4's y axis).
    pub fn memory_bytes(&self) -> usize {
        self.trees.iter().map(|t| t.memory_bytes()).sum()
    }

    /// Per-arena footprint gauges across all trees.
    pub fn footprint(&self) -> ForestFootprint {
        let mut fp = ForestFootprint::default();
        for t in &self.trees {
            fp.add_tree(t);
        }
        fp
    }

    /// Total arena nodes across all trees (internals + leaves).
    pub fn total_nodes(&self) -> u64 {
        self.trees.iter().map(|t| t.node_count() as u64).sum()
    }

    /// Rebuilds every tree's arenas into the canonical subtree-clustered
    /// order (see [`BinTree::compact`]), so steady-state traversal is
    /// cache-resident. Purely a layout operation — answers, exports, and
    /// split behaviour are unchanged.
    pub fn compact(&mut self) {
        for t in &mut self.trees {
            t.compact();
        }
    }

    /// Takes the trees out (used when distributing the forest across ranks).
    pub fn into_trees(self) -> Vec<BinTree> {
        self.trees
    }

    /// Rebuilds a forest from trees (inverse of [`BinForest::into_trees`]).
    pub fn from_trees(trees: Vec<BinTree>) -> Self {
        BinForest { trees }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_rng::{Lcg48, PhotonRng};
    use std::f64::consts::TAU;

    #[test]
    fn tallies_route_to_the_right_tree() {
        let mut f = BinForest::new(3, SplitConfig::default());
        let p = BinPoint::new(0.5, 0.5, 1.0, 0.5);
        f.tally(1, &p, Rgb::WHITE);
        f.tally(1, &p, Rgb::WHITE);
        f.tally(2, &p, Rgb::WHITE);
        assert_eq!(f.tree(0).tallies(), 0);
        assert_eq!(f.tree(1).tallies(), 2);
        assert_eq!(f.tree(2).tallies(), 1);
        assert_eq!(f.total_tallies(), 3);
    }

    #[test]
    fn leaf_bins_start_at_one_per_patch() {
        let f = BinForest::new(5, SplitConfig::default());
        assert_eq!(f.total_leaf_bins(), 5);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn forest_refines_under_concentrated_load() {
        let mut f = BinForest::new(2, SplitConfig::default());
        let mut rng = Lcg48::new(1);
        for _ in 0..20_000 {
            let p = BinPoint::new(
                rng.next_f64() * 0.1,
                rng.next_f64(),
                rng.next_f64() * TAU,
                rng.next_f64(),
            );
            f.tally(0, &p, Rgb::WHITE);
        }
        assert!(f.tree(0).leaf_count() > 1);
        assert_eq!(f.tree(1).leaf_count(), 1);
        assert!(f.memory_bytes() > 0);
    }

    #[test]
    fn out_of_range_patch_id_panics_descriptively() {
        let mut f = BinForest::new(2, SplitConfig::default());
        let p = BinPoint::new(0.5, 0.5, 1.0, 0.5);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            f.tally(7, &p, Rgb::WHITE);
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap_or(&"").to_string());
        assert!(
            msg.contains("patch_id 7") && msg.contains("2 patches"),
            "panic message not descriptive: {msg:?}"
        );
    }

    #[test]
    fn footprint_tracks_both_arenas_and_compaction_is_invisible() {
        let mut f = BinForest::new(2, SplitConfig::default());
        let mut rng = Lcg48::new(7);
        for _ in 0..30_000 {
            let p = BinPoint::new(
                rng.next_f64() * 0.05,
                rng.next_f64(),
                rng.next_f64() * TAU,
                rng.next_f64(),
            );
            f.tally(0, &p, Rgb::WHITE);
        }
        let fp = f.footprint();
        assert_eq!(fp.leaf_bins, f.total_leaf_bins());
        assert!(fp.node_bytes >= f.total_nodes() * 8);
        assert!(fp.leaf_bytes > 0);
        // memory_bytes covers both arenas plus headers.
        assert!(f.memory_bytes() as u64 >= fp.node_bytes + fp.leaf_bytes);

        let before: Vec<_> = f.iter().map(|(_, t)| t.export_nodes()).collect();
        f.compact();
        let after: Vec<_> = f.iter().map(|(_, t)| t.export_nodes()).collect();
        assert_eq!(before, after);
        // Compaction trims over-allocated capacity, never grows it.
        assert!(f.footprint().node_bytes <= fp.node_bytes);
    }

    #[test]
    fn round_trip_through_trees() {
        let mut f = BinForest::new(2, SplitConfig::default());
        f.tally(0, &BinPoint::new(0.1, 0.2, 0.3, 0.4), Rgb::WHITE);
        let trees = f.into_trees();
        let f2 = BinForest::from_trees(trees);
        assert_eq!(f2.total_tallies(), 1);
    }
}
