//! `GeneratePhoton`: emitting photons from luminaires (ch. 4, Figs 4.2–4.4).
//!
//! Two direction kernels are provided, both sampling the *same*
//! cosine-weighted (Lambertian) hemisphere distribution:
//!
//! * [`sample_rejection`] — the paper's kernel (Fig 4.3, developed by
//!   Gustafson): draw planar coordinate pairs until one lands in the unit
//!   circle, then lift to the hemisphere with `z = sqrt(1 − x² − y²)`. The
//!   expected cost is ~22 flops per direction under the paper's accounting
//!   (3 flops per random draw, Livermore convention for transcendentals).
//! * [`sample_direct`] — the Shirley/Sillion closed form
//!   `(cos(2πξ₁)√ξ₂, sin(2πξ₁)√ξ₂, √(1−ξ₂))`, ~34 flops.
//!
//! Both push uniformly onto the projected disc, which is exactly the
//! Lambertian density (Malley's method) — equality is property-tested.
//!
//! **Directional lighting** (Fig 4.4): scaling the unit circle by `c`
//! restricts the planar radius to `c`, collimating emission to a cone of
//! half-angle `asin(c)`. The paper's sun uses `c = 0.005` (±0.29°), which
//! blurs shadows correctly with occluder distance.

use photon_geom::{Luminaire, Scene};
use photon_math::{Rgb, Vec3};
use photon_rng::PhotonRng;

/// Expected floating-point operations of one rejection-kernel direction
/// under the paper's accounting (13 flops per loop iteration, expected
/// 4/π iterations, plus 5 to lift z). Evaluates to ≈ 21.55, the paper's 22.
pub const FLOPS_REJECTION: f64 = 13.0 * (4.0 / std::f64::consts::PI) + 5.0;

/// Floating-point operations of one direct-formula direction under the
/// paper's accounting (sin/cos = 8 each, sqrt = 4, 3 per random draw).
pub const FLOPS_DIRECT: f64 = 34.0;

/// A freshly emitted photon.
#[derive(Clone, Copy, Debug)]
pub struct EmittedPhoton {
    /// Index of the emitting patch.
    pub patch_id: u32,
    /// Emission point on the patch.
    pub origin: Vec3,
    /// Bilinear coordinates of the emission point.
    pub s: f64,
    /// Bilinear coordinates of the emission point.
    pub t: f64,
    /// World-space emission direction (unit).
    pub dir: Vec3,
    /// Local-frame emission direction (z = along patch normal).
    pub local_dir: Vec3,
    /// Power-scaled weight: luminaire power divided by its pick
    /// probability. Dividing a tally of these weights by the total emitted
    /// photon count yields an unbiased flux estimate.
    pub energy: Rgb,
}

/// Samples the cosine-weighted hemisphere by rejection (the paper's kernel).
///
/// `collimation` in `(0, 1]` scales the planar circle: 1.0 is fully diffuse,
/// small values collimate (Fig 4.4). Returns a unit vector with `z >= 0`.
#[inline]
pub fn sample_rejection<R: PhotonRng>(rng: &mut R, collimation: f64) -> Vec3 {
    loop {
        let x = rng.next_f64() * 2.0 - 1.0;
        let y = rng.next_f64() * 2.0 - 1.0;
        let tmp = x * x + y * y;
        if tmp <= 1.0 {
            let (x, y) = (x * collimation, y * collimation);
            let r_sq = tmp * collimation * collimation;
            return Vec3::new(x, y, (1.0 - r_sq).sqrt());
        }
    }
}

/// Samples the cosine-weighted hemisphere with the Shirley/Sillion closed
/// form — the baseline the paper's kernel is measured against.
#[inline]
pub fn sample_direct<R: PhotonRng>(rng: &mut R) -> Vec3 {
    let e1 = rng.next_f64();
    let e2 = rng.next_f64();
    let tmp1 = std::f64::consts::TAU * e1;
    let tmp3 = e2.sqrt();
    Vec3::new(tmp1.cos() * tmp3, tmp1.sin() * tmp3, (1.0 - e2).sqrt())
}

/// Draws photons from a scene's luminaires in proportion to their power.
#[derive(Clone, Debug)]
pub struct PhotonGenerator {
    /// Cumulative luminance selection table.
    cdf: Vec<f64>,
    total_lum: f64,
}

impl PhotonGenerator {
    /// Builds the luminaire selection table for a scene.
    ///
    /// Panics if the scene has no luminaires or zero total power.
    pub fn new(scene: &Scene) -> Self {
        let lums = scene.luminaires();
        assert!(!lums.is_empty(), "scene has no luminaires");
        let mut cdf = Vec::with_capacity(lums.len());
        let mut acc = 0.0;
        for l in lums {
            acc += l.power.luminance();
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total luminaire power is zero");
        PhotonGenerator {
            cdf,
            total_lum: acc,
        }
    }

    /// Picks a luminaire index in proportion to luminance.
    #[inline]
    fn pick<R: PhotonRng>(&self, rng: &mut R) -> usize {
        let x = rng.next_f64() * self.total_lum;
        // Scenes have few luminaires; a linear scan beats binary search.
        for (i, &c) in self.cdf.iter().enumerate() {
            if x < c {
                return i;
            }
        }
        self.cdf.len() - 1
    }

    /// Emits one photon: chooses a luminaire, a uniform point on its patch
    /// and a (possibly collimated) cosine-weighted direction using the
    /// rejection kernel.
    pub fn emit<R: PhotonRng>(&self, scene: &Scene, rng: &mut R) -> EmittedPhoton {
        let li = self.pick(rng);
        let lum: &Luminaire = &scene.luminaires()[li];
        let sp = scene.patch(lum.patch_id);
        let s = rng.next_f64();
        let t = rng.next_f64();
        let origin = sp.patch.point_at(s, t);
        let local = sample_rejection(rng, lum.collimation);
        let dir = sp.frame.to_world(local);
        let pick_p = lum.power.luminance() / self.total_lum;
        EmittedPhoton {
            patch_id: lum.patch_id,
            origin,
            s,
            t,
            dir,
            local_dir: local,
            energy: lum.power / pick_p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_geom::{Material, SurfacePatch};
    use photon_math::{Patch, Rgb};
    use photon_rng::{CountingRng, Lcg48};

    #[test]
    #[allow(clippy::assertions_on_constants)] // the inequality IS the claim under test
    fn flop_constants_match_paper() {
        assert!((FLOPS_REJECTION - 21.55).abs() < 0.05, "{FLOPS_REJECTION}");
        assert_eq!(FLOPS_DIRECT, 34.0);
        // The paper's headline: the rejection kernel saves 12 ops.
        assert!(FLOPS_DIRECT - FLOPS_REJECTION > 12.0);
    }

    #[test]
    fn rejection_directions_are_unit_upper_hemisphere() {
        let mut rng = Lcg48::new(1);
        for _ in 0..5000 {
            let d = sample_rejection(&mut rng, 1.0);
            assert!(d.is_unit(1e-9), "{d:?}");
            assert!(d.z >= 0.0);
        }
    }

    #[test]
    fn direct_directions_are_unit_upper_hemisphere() {
        let mut rng = Lcg48::new(2);
        for _ in 0..5000 {
            let d = sample_direct(&mut rng);
            assert!(d.is_unit(1e-9), "{d:?}");
            assert!(d.z >= 0.0);
        }
    }

    /// Both kernels must produce the same cosine-weighted distribution:
    /// the projected radius squared is uniform, so its mean is 1/2 and the
    /// mean of z = sqrt(1-r²) is 2/3.
    #[test]
    fn kernels_sample_identical_lambertian_density() {
        let n = 200_000;
        let mut rng = Lcg48::new(3);
        let (mut rej_rsq, mut rej_z) = (0.0, 0.0);
        for _ in 0..n {
            let d = sample_rejection(&mut rng, 1.0);
            rej_rsq += d.x * d.x + d.y * d.y;
            rej_z += d.z;
        }
        let (mut dir_rsq, mut dir_z) = (0.0, 0.0);
        for _ in 0..n {
            let d = sample_direct(&mut rng);
            dir_rsq += d.x * d.x + d.y * d.y;
            dir_z += d.z;
        }
        let nf = n as f64;
        assert!(
            (rej_rsq / nf - 0.5).abs() < 0.005,
            "rej r² mean {}",
            rej_rsq / nf
        );
        assert!(
            (dir_rsq / nf - 0.5).abs() < 0.005,
            "dir r² mean {}",
            dir_rsq / nf
        );
        assert!((rej_z / nf - 2.0 / 3.0).abs() < 0.005);
        assert!((dir_z / nf - 2.0 / 3.0).abs() < 0.005);
        // Azimuthal uniformity: mean x and y vanish.
    }

    #[test]
    fn expected_draws_match_geometric_series() {
        // Rejection needs 2 * 4/pi ≈ 2.546 draws per direction on average.
        let mut rng = CountingRng::new(Lcg48::new(4));
        let n = 100_000;
        for _ in 0..n {
            sample_rejection(&mut rng, 1.0);
        }
        let per = rng.draws() as f64 / n as f64;
        assert!(
            (per - 8.0 / std::f64::consts::PI).abs() < 0.02,
            "draws/dir {per}"
        );
    }

    #[test]
    fn collimation_restricts_cone() {
        let mut rng = Lcg48::new(5);
        let c: f64 = 0.005; // the paper's sun
        let max_angle = c.asin() * 1.0000001;
        for _ in 0..10_000 {
            let d = sample_rejection(&mut rng, c);
            let angle = d.z.clamp(-1.0, 1.0).acos();
            assert!(angle <= max_angle, "angle {angle} > {max_angle}");
        }
    }

    fn one_light_scene() -> Scene {
        let light =
            Patch::from_origin_edges(Vec3::new(0.0, 2.0, 0.0), Vec3::X, Vec3::new(0.0, 0.0, 1.0));
        let floor = Patch::from_origin_edges(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0), Vec3::X);
        let mut lp = SurfacePatch::new(light, Material::emitter(Rgb::WHITE));
        lp.material.emission = Rgb::WHITE;
        Scene::new(
            vec![
                lp,
                SurfacePatch::new(floor, Material::matte(Rgb::gray(0.5))),
            ],
            vec![Luminaire {
                patch_id: 0,
                power: Rgb::new(100.0, 50.0, 25.0),
                collimation: 1.0,
            }],
        )
    }

    #[test]
    fn emitted_photons_leave_the_light_patch() {
        let scene = one_light_scene();
        let g = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(6);
        for _ in 0..1000 {
            let p = g.emit(&scene, &mut rng);
            assert_eq!(p.patch_id, 0);
            assert!((0.0..=1.0).contains(&p.s) && (0.0..=1.0).contains(&p.t));
            assert!(p.dir.is_unit(1e-9));
            // Direction is on the light's front side.
            assert!(p.dir.dot(scene.patch(0).frame.w) >= 0.0);
        }
    }

    #[test]
    fn emission_energy_is_unbiased() {
        // Two luminaires with different powers: the weighted tally of
        // emitted energies divided by N must converge to total power.
        let l1 = Patch::from_origin_edges(Vec3::new(0.0, 2.0, 0.0), Vec3::X, Vec3::Z);
        let l2 = Patch::from_origin_edges(Vec3::new(3.0, 2.0, 0.0), Vec3::X, Vec3::Z);
        let floor = Patch::from_origin_edges(Vec3::ZERO, Vec3::Z * 5.0, Vec3::X * 5.0);
        let scene = Scene::new(
            vec![
                SurfacePatch::new(l1, Material::emitter(Rgb::WHITE)),
                SurfacePatch::new(l2, Material::emitter(Rgb::WHITE)),
                SurfacePatch::new(floor, Material::matte(Rgb::gray(0.5))),
            ],
            vec![
                Luminaire {
                    patch_id: 0,
                    power: Rgb::new(10.0, 10.0, 10.0),
                    collimation: 1.0,
                },
                Luminaire {
                    patch_id: 1,
                    power: Rgb::new(1.0, 2.0, 30.0),
                    collimation: 1.0,
                },
            ],
        );
        let g = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(7);
        let n = 200_000;
        let mut sum = Rgb::BLACK;
        for _ in 0..n {
            sum += g.emit(&scene, &mut rng).energy;
        }
        let mean = sum / n as f64;
        let total = scene.total_power();
        for (m, t) in [(mean.r, total.r), (mean.g, total.g), (mean.b, total.b)] {
            assert!((m - t).abs() / t < 0.02, "mean {m} vs power {t}");
        }
    }
}
