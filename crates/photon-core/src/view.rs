//! Viewing: single-step ray trace against the stored answer (ch. 4,
//! Figs 4.9/4.10).
//!
//! "Rays go to first visible surface only": each pixel casts one ray; at the
//! first hit the displayed color is the stored radiance of the bin a photon
//! *leaving* the surface toward the eye would have been tallied into. No
//! recursion, no shading model — the global illumination already lives in
//! the bin forest, so any number of viewpoints render from one answer file.

use crate::answer::Answer;
use crate::img::Image;
use photon_geom::Scene;
use photon_math::{Ray, Rgb, Vec3};

/// A pinhole camera.
#[derive(Clone, Copy, Debug)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Point looked at.
    pub target: Vec3,
    /// Up hint.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub vfov_deg: f64,
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
}

impl Camera {
    /// The primary ray through the center of pixel `(x, y)`.
    pub fn ray(&self, x: usize, y: usize) -> Ray {
        let w = (self.eye - self.target).normalized(); // backward
        let u = self.up.cross(w).normalized();
        let v = w.cross(u);
        let aspect = self.width as f64 / self.height as f64;
        let half_h = (self.vfov_deg.to_radians() * 0.5).tan();
        let half_w = half_h * aspect;
        let px = (x as f64 + 0.5) / self.width as f64 * 2.0 - 1.0;
        let py = 1.0 - (y as f64 + 0.5) / self.height as f64 * 2.0;
        let dir = (u * (px * half_w) + v * (py * half_h) - w).normalized();
        Ray::new(self.eye, dir)
    }
}

/// Renders the answer from a viewpoint. `exposure` scales radiance to
/// display range; use [`auto_exposure`] when unsure.
pub fn render(scene: &Scene, answer: &Answer, camera: &Camera, exposure: f64) -> Image {
    let mut img = Image::new(camera.width, camera.height);
    for y in 0..camera.height {
        for x in 0..camera.width {
            let ray = camera.ray(x, y);
            let c = shade(scene, answer, &ray);
            img.set(x, y, c * exposure);
        }
    }
    img
}

/// The color seen along one ray (before exposure).
pub fn shade(scene: &Scene, answer: &Answer, ray: &Ray) -> Rgb {
    let Some(hit) = scene.intersect(ray, f64::INFINITY) else {
        return Rgb::BLACK;
    };
    // Radiance leaving the hit point toward the eye.
    let to_eye = -ray.dir;
    answer.radiance(scene, hit.patch_id, hit.s, hit.v, to_eye)
}

/// Picks an exposure that maps the answer's mean lit-patch radiance to
/// mid-gray.
pub fn auto_exposure(scene: &Scene, answer: &Answer) -> f64 {
    let mut total = 0.0;
    let mut lit = 0usize;
    for pid in 0..answer.patch_count() as u32 {
        let l = answer.mean_patch_radiance(scene, pid).luminance();
        if l > 0.0 {
            total += l;
            lit += 1;
        }
    }
    if lit == 0 || total <= 0.0 {
        return 1.0;
    }
    0.5 / (total / lit as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::Patch;

    /// Floor + downward light: the floor should render brighter than the
    /// void around it.
    fn lit_floor_scene() -> Scene {
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -2.0),
                Vec3::X * 4.0,
                Vec3::new(0.0, 0.0, 4.0),
            ),
            Material::matte(Rgb::gray(0.7)),
        );
        let light = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-0.5, 3.0, 0.5),
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::X,
            ),
            Material::emitter(Rgb::WHITE),
        );
        Scene::new(
            vec![floor, light],
            vec![Luminaire { patch_id: 1, power: Rgb::gray(50.0), collimation: 1.0 }],
        )
    }

    fn camera() -> Camera {
        Camera {
            eye: Vec3::new(0.0, 2.5, -4.0),
            target: Vec3::new(0.0, 0.0, 0.0),
            up: Vec3::Y,
            vfov_deg: 50.0,
            width: 32,
            height: 24,
        }
    }

    #[test]
    fn rays_pass_through_target() {
        let cam = camera();
        let center = cam.ray(cam.width / 2, cam.height / 2);
        // The central ray points roughly at the target.
        let to_target = (cam.target - cam.eye).normalized();
        assert!(center.dir.dot(to_target) > 0.99);
    }

    #[test]
    fn render_shows_lit_floor() {
        let scene = lit_floor_scene();
        let mut sim = Simulator::new(scene, SimConfig { seed: 5, ..Default::default() });
        sim.run_photons(40_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let exposure = auto_exposure(scene, &answer);
        let img = render(scene, &answer, &camera(), exposure);
        // Some pixels lit, background black.
        let lum = img.mean_luminance();
        assert!(lum > 0.001, "image black: {lum}");
        // Corners (sky) are black.
        assert_eq!(img.get(0, 0), Rgb::BLACK);
    }

    #[test]
    fn two_viewpoints_from_one_answer_differ_but_share_solution() {
        let scene = lit_floor_scene();
        let mut sim = Simulator::new(scene, SimConfig { seed: 6, ..Default::default() });
        sim.run_photons(30_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let e = auto_exposure(scene, &answer);
        let img1 = render(scene, &answer, &camera(), e);
        let mut cam2 = camera();
        cam2.eye = Vec3::new(3.0, 2.0, 3.0);
        let img2 = render(scene, &answer, &cam2, e);
        assert!(img1.rms_error(&img2) > 0.0, "different viewpoints identical");
        assert!(img2.mean_luminance() > 0.0);
    }

    #[test]
    fn more_photons_reduce_render_noise() {
        // Render quality improves with photon count (Fig 5.16's premise):
        // two independent long runs agree better than two short runs.
        // Comparison happens on downsampled images — adaptive bins convert
        // extra photons into finer bins, so coarse-grained radiance is the
        // quantity that converges.
        let mk = |seed, n| {
            let mut sim = Simulator::new(lit_floor_scene(), SimConfig { seed, ..Default::default() });
            sim.run_photons(n);
            let ans = sim.answer_snapshot();
            let e = 0.05; // fixed exposure for comparability
            render(sim.scene(), &ans, &camera(), e).downsampled(8)
        };
        let short_err = mk(1, 2_000).rms_error(&mk(2, 2_000));
        let long_err = mk(3, 80_000).rms_error(&mk(4, 80_000));
        assert!(
            long_err < short_err,
            "noise did not drop: short {short_err} long {long_err}"
        );
    }
}
