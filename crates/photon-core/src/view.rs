//! Viewing: single-step ray trace against the stored answer (ch. 4,
//! Figs 4.9/4.10).
//!
//! "Rays go to first visible surface only": each pixel casts one ray; at the
//! first hit the displayed color is the stored radiance of the bin a photon
//! *leaving* the surface toward the eye would have been tallied into. No
//! recursion, no shading model — the global illumination already lives in
//! the bin forest, so any number of viewpoints render from one answer file.

use crate::answer::Answer;
use crate::img::Image;
use photon_geom::Scene;
use photon_math::{Ray, Rgb, Vec3};

/// A pinhole camera.
#[derive(Clone, Copy, Debug)]
pub struct Camera {
    /// Eye position.
    pub eye: Vec3,
    /// Point looked at.
    pub target: Vec3,
    /// Up hint.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub vfov_deg: f64,
    /// Output width in pixels.
    pub width: usize,
    /// Output height in pixels.
    pub height: usize,
}

impl Camera {
    /// The primary ray through the center of pixel `(x, y)`.
    pub fn ray(&self, x: usize, y: usize) -> Ray {
        let w = (self.eye - self.target).normalized(); // backward
        let u = self.up.cross(w).normalized();
        let v = w.cross(u);
        let aspect = self.width as f64 / self.height as f64;
        let half_h = (self.vfov_deg.to_radians() * 0.5).tan();
        let half_w = half_h * aspect;
        let px = (x as f64 + 0.5) / self.width as f64 * 2.0 - 1.0;
        let py = 1.0 - (y as f64 + 0.5) / self.height as f64 * 2.0;
        let dir = (u * (px * half_w) + v * (py * half_h) - w).normalized();
        Ray::new(self.eye, dir)
    }
}

/// Default tile side used by [`render`]'s decomposition.
pub const DEFAULT_TILE_SIZE: usize = 32;

/// A rectangular image region: pixels `[x0, x1) × [y0, y1)`.
///
/// Tiles are the unit of work shared by the serial viewer and the
/// tile-parallel serving layer (`photon-serve`): both call [`render_tile`]
/// per tile, so they produce bit-identical pixels by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Tile {
    /// Left edge (inclusive).
    pub x0: usize,
    /// Top edge (inclusive).
    pub y0: usize,
    /// Right edge (exclusive).
    pub x1: usize,
    /// Bottom edge (exclusive).
    pub y1: usize,
}

impl Tile {
    /// Width in pixels.
    pub fn width(&self) -> usize {
        self.x1 - self.x0
    }

    /// Height in pixels.
    pub fn height(&self) -> usize {
        self.y1 - self.y0
    }

    /// Pixels covered.
    pub fn pixel_count(&self) -> usize {
        self.width() * self.height()
    }
}

/// Decomposes a `width × height` image into row-major tiles of side
/// `tile_size` (edge tiles may be smaller). Covers every pixel exactly once.
pub fn tiles(width: usize, height: usize, tile_size: usize) -> Vec<Tile> {
    assert!(tile_size > 0, "tile_size must be positive");
    let mut out = Vec::new();
    let mut y0 = 0;
    while y0 < height {
        let y1 = (y0 + tile_size).min(height);
        let mut x0 = 0;
        while x0 < width {
            let x1 = (x0 + tile_size).min(width);
            out.push(Tile { x0, y0, x1, y1 });
            x0 = x1;
        }
        y0 = y1;
    }
    out
}

/// Renders one tile of the view into a row-major buffer of
/// `tile.pixel_count()` values (the pixel at `(x, y)` lands at
/// `(y - tile.y0) * tile.width() + (x - tile.x0)`).
pub fn render_tile(
    scene: &Scene,
    answer: &Answer,
    camera: &Camera,
    tile: Tile,
    exposure: f64,
) -> Vec<Rgb> {
    let mut buf = Vec::with_capacity(tile.pixel_count());
    for y in tile.y0..tile.y1 {
        for x in tile.x0..tile.x1 {
            let ray = camera.ray(x, y);
            buf.push(shade(scene, answer, &ray) * exposure);
        }
    }
    buf
}

/// Copies a tile buffer produced by [`render_tile`] into `img`.
pub fn blit_tile(img: &mut Image, tile: Tile, buf: &[Rgb]) {
    assert_eq!(buf.len(), tile.pixel_count(), "tile buffer size mismatch");
    for y in tile.y0..tile.y1 {
        for x in tile.x0..tile.x1 {
            img.set(x, y, buf[(y - tile.y0) * tile.width() + (x - tile.x0)]);
        }
    }
}

/// Extracts `tile`'s pixels from `img` into a row-major buffer — the exact
/// format [`render_tile`] produces and [`blit_tile`] consumes, so a copied
/// tile can be shipped and blitted elsewhere unchanged.
pub fn copy_tile(img: &Image, tile: Tile) -> Vec<Rgb> {
    let mut buf = Vec::with_capacity(tile.pixel_count());
    for y in tile.y0..tile.y1 {
        for x in tile.x0..tile.x1 {
            buf.push(img.get(x, y));
        }
    }
    buf
}

/// True when any pixel inside `tile` differs between `a` and `b`.
///
/// Comparison is exact (bit-level `f64` equality): a rendered view is a
/// pure function of `(scene, answer, camera, exposure)`, so "unchanged"
/// means *identical*, and a delta protocol built on this predicate
/// reassembles frames bit-for-bit.
///
/// # Panics
/// Panics if the images differ in size.
pub fn tile_changed(a: &Image, b: &Image, tile: Tile) -> bool {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "tile diff over differently sized images"
    );
    for y in tile.y0..tile.y1 {
        for x in tile.x0..tile.x1 {
            if a.get(x, y) != b.get(x, y) {
                return true;
            }
        }
    }
    false
}

/// Tile-granular frame diff: decomposes the frame into `tile_size`-sided
/// tiles (the same decomposition [`tiles`] gives the renderer) and returns
/// the new pixels of every tile that changed between `prev` and `next`.
///
/// Blitting the returned buffers onto a copy of `prev` reproduces `next`
/// exactly — unchanged tiles are bit-identical by [`tile_changed`]'s
/// definition, changed tiles carry their full new contents. This is the
/// primitive behind `photon-serve`'s streaming views: a client holding the
/// previously sent frame needs only the changed tiles to reach the next
/// epoch's image.
///
/// # Panics
/// Panics if the images differ in size or `tile_size == 0`.
pub fn diff_tiles(prev: &Image, next: &Image, tile_size: usize) -> Vec<(Tile, Vec<Rgb>)> {
    assert_eq!(
        (prev.width(), prev.height()),
        (next.width(), next.height()),
        "frame diff over differently sized images"
    );
    tiles(next.width(), next.height(), tile_size)
        .into_iter()
        .filter(|&tile| tile_changed(prev, next, tile))
        .map(|tile| (tile, copy_tile(next, tile)))
        .collect()
}

/// Squashes an ordered sequence of tile-update runs into one run whose
/// application is bit-identical to applying every run in order.
///
/// Each run is a list of `(tile, pixels)` updates as produced by
/// [`diff_tiles`]; the runs are applied oldest first. Two updates to the
/// *same rectangle* collapse to the newest one, re-ordered to the newest
/// update's position in time, so overlapping rectangles from different
/// runs still land in the right order when the squashed run is blitted
/// front to back. The output therefore never holds a rectangle twice, and
/// its size is bounded by the number of distinct rectangles touched — not
/// by how many runs were squashed.
///
/// This is the slow-consumer coalescing primitive: a subscriber that fell
/// behind by epochs N→M receives `squash` of the missed deltas as one
/// delta, and blitting it onto the frame it last saw reproduces epoch M's
/// pixels exactly.
pub fn squash_tile_runs<I>(runs: I) -> Vec<(Tile, Vec<Rgb>)>
where
    I: IntoIterator<Item = Vec<(Tile, Vec<Rgb>)>>,
{
    let mut slots: Vec<Option<(Tile, Vec<Rgb>)>> = Vec::new();
    let mut newest: std::collections::HashMap<(usize, usize, usize, usize), usize> =
        std::collections::HashMap::new();
    for run in runs {
        for (tile, buf) in run {
            assert_eq!(buf.len(), tile.pixel_count(), "tile buffer size mismatch");
            let key = (tile.x0, tile.y0, tile.x1, tile.y1);
            if let Some(&stale) = newest.get(&key) {
                slots[stale] = None;
            }
            newest.insert(key, slots.len());
            slots.push(Some((tile, buf)));
        }
    }
    slots.into_iter().flatten().collect()
}

/// Renders the answer from a viewpoint. `exposure` scales radiance to
/// display range; use [`auto_exposure`] when unsure.
///
/// This is the serial tile loop; `photon-serve` runs the same
/// [`render_tile`] jobs across a worker pool.
pub fn render(scene: &Scene, answer: &Answer, camera: &Camera, exposure: f64) -> Image {
    let mut img = Image::new(camera.width, camera.height);
    for tile in tiles(camera.width, camera.height, DEFAULT_TILE_SIZE) {
        let buf = render_tile(scene, answer, camera, tile, exposure);
        blit_tile(&mut img, tile, &buf);
    }
    img
}

/// The color seen along one ray (before exposure).
pub fn shade(scene: &Scene, answer: &Answer, ray: &Ray) -> Rgb {
    let Some(hit) = scene.intersect(ray, f64::INFINITY) else {
        return Rgb::BLACK;
    };
    // Radiance leaving the hit point toward the eye.
    let to_eye = -ray.dir;
    answer.radiance(scene, hit.patch_id, hit.s, hit.v, to_eye)
}

/// Picks an exposure that maps the answer's mean lit-patch radiance to
/// mid-gray.
pub fn auto_exposure(scene: &Scene, answer: &Answer) -> f64 {
    let mut total = 0.0;
    let mut lit = 0usize;
    for pid in 0..answer.patch_count() as u32 {
        let l = answer.mean_patch_radiance(scene, pid).luminance();
        if l > 0.0 {
            total += l;
            lit += 1;
        }
    }
    if lit == 0 || total <= 0.0 {
        return 1.0;
    }
    0.5 / (total / lit as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimConfig, Simulator};
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::Patch;

    /// Floor + downward light: the floor should render brighter than the
    /// void around it.
    fn lit_floor_scene() -> Scene {
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-2.0, 0.0, -2.0),
                Vec3::X * 4.0,
                Vec3::new(0.0, 0.0, 4.0),
            ),
            Material::matte(Rgb::gray(0.7)),
        );
        let light = SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(-0.5, 3.0, 0.5),
                Vec3::new(0.0, 0.0, -1.0),
                Vec3::X,
            ),
            Material::emitter(Rgb::WHITE),
        );
        Scene::new(
            vec![floor, light],
            vec![Luminaire {
                patch_id: 1,
                power: Rgb::gray(50.0),
                collimation: 1.0,
            }],
        )
    }

    fn camera() -> Camera {
        Camera {
            eye: Vec3::new(0.0, 2.5, -4.0),
            target: Vec3::new(0.0, 0.0, 0.0),
            up: Vec3::Y,
            vfov_deg: 50.0,
            width: 32,
            height: 24,
        }
    }

    #[test]
    fn tiles_partition_the_image() {
        for (w, h, ts) in [(64, 48, 32), (33, 17, 16), (5, 5, 8), (1, 1, 1)] {
            let ts = tiles(w, h, ts);
            let mut covered = vec![0u32; w * h];
            for t in &ts {
                assert!(t.x1 <= w && t.y1 <= h);
                assert!(t.pixel_count() > 0);
                for y in t.y0..t.y1 {
                    for x in t.x0..t.x1 {
                        covered[y * w + x] += 1;
                    }
                }
            }
            assert!(
                covered.iter().all(|&c| c == 1),
                "{w}x{h} not tiled exactly once"
            );
        }
    }

    #[test]
    fn tiled_render_matches_per_pixel_shade() {
        let scene = lit_floor_scene();
        let mut sim = Simulator::new(
            scene,
            SimConfig {
                seed: 11,
                ..Default::default()
            },
        );
        sim.run_photons(5_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let cam = camera();
        let img = render(scene, &answer, &cam, 1.0);
        for (x, y) in [(0, 0), (7, 3), (cam.width - 1, cam.height - 1)] {
            let expect = shade(scene, &answer, &cam.ray(x, y));
            assert_eq!(img.get(x, y), expect, "pixel ({x},{y})");
        }
    }

    #[test]
    fn diff_of_identical_images_is_empty() {
        let mut img = Image::new(20, 14);
        img.set(3, 5, Rgb::WHITE);
        assert!(diff_tiles(&img, &img.clone(), 8).is_empty());
    }

    #[test]
    fn diff_carries_only_changed_tiles_and_reassembles_exactly() {
        let mut prev = Image::new(40, 24);
        prev.set(2, 2, Rgb::gray(0.25));
        let mut next = prev.clone();
        // One change per distant tile: (0,0) and (33, 20) with tile size 8
        // land in tiles (0,0) and (4,2).
        next.set(0, 0, Rgb::new(1.0, 0.0, 0.0));
        next.set(33, 20, Rgb::new(0.0, 1.0, 0.0));
        let delta = diff_tiles(&prev, &next, 8);
        assert_eq!(delta.len(), 2, "exactly the two touched tiles");
        let total: usize = delta.iter().map(|(t, _)| t.pixel_count()).sum();
        assert!(total < 40 * 24, "delta must be smaller than the full frame");
        let mut rebuilt = prev.clone();
        for (tile, buf) in &delta {
            blit_tile(&mut rebuilt, *tile, buf);
        }
        assert_eq!(rebuilt.pixels(), next.pixels(), "reassembly diverged");
    }

    #[test]
    fn diff_against_black_is_a_full_bootstrap() {
        // A client with no previous frame starts from a black canvas; the
        // first delta against black must rebuild the frame exactly while
        // skipping all-black (background) tiles.
        let mut next = Image::new(33, 17);
        next.set(10, 10, Rgb::WHITE);
        let black = Image::new(33, 17);
        let delta = diff_tiles(&black, &next, 8);
        assert!(!delta.is_empty());
        let mut rebuilt = Image::new(33, 17);
        for (tile, buf) in &delta {
            blit_tile(&mut rebuilt, *tile, buf);
        }
        assert_eq!(rebuilt.pixels(), next.pixels());
        let covered: usize = delta.iter().map(|(t, _)| t.pixel_count()).sum();
        assert!(covered < 33 * 17, "black tiles must be skipped");
    }

    #[test]
    fn copy_tile_round_trips_through_blit() {
        let mut img = Image::new(13, 9);
        for y in 0..9 {
            for x in 0..13 {
                img.set(x, y, Rgb::gray((x * 17 + y) as f64 / 100.0));
            }
        }
        let tile = Tile {
            x0: 4,
            y0: 2,
            x1: 11,
            y1: 7,
        };
        let buf = copy_tile(&img, tile);
        assert_eq!(buf.len(), tile.pixel_count());
        let mut out = Image::new(13, 9);
        blit_tile(&mut out, tile, &buf);
        for y in tile.y0..tile.y1 {
            for x in tile.x0..tile.x1 {
                assert_eq!(out.get(x, y), img.get(x, y));
            }
        }
    }

    #[test]
    fn rays_pass_through_target() {
        let cam = camera();
        let center = cam.ray(cam.width / 2, cam.height / 2);
        // The central ray points roughly at the target.
        let to_target = (cam.target - cam.eye).normalized();
        assert!(center.dir.dot(to_target) > 0.99);
    }

    #[test]
    fn render_shows_lit_floor() {
        let scene = lit_floor_scene();
        let mut sim = Simulator::new(
            scene,
            SimConfig {
                seed: 5,
                ..Default::default()
            },
        );
        sim.run_photons(40_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let exposure = auto_exposure(scene, &answer);
        let img = render(scene, &answer, &camera(), exposure);
        // Some pixels lit, background black.
        let lum = img.mean_luminance();
        assert!(lum > 0.001, "image black: {lum}");
        // Corners (sky) are black.
        assert_eq!(img.get(0, 0), Rgb::BLACK);
    }

    #[test]
    fn two_viewpoints_from_one_answer_differ_but_share_solution() {
        let scene = lit_floor_scene();
        let mut sim = Simulator::new(
            scene,
            SimConfig {
                seed: 6,
                ..Default::default()
            },
        );
        sim.run_photons(30_000);
        let answer = sim.answer_snapshot();
        let scene = sim.scene();
        let e = auto_exposure(scene, &answer);
        let img1 = render(scene, &answer, &camera(), e);
        let mut cam2 = camera();
        cam2.eye = Vec3::new(3.0, 2.0, 3.0);
        let img2 = render(scene, &answer, &cam2, e);
        assert!(
            img1.rms_error(&img2) > 0.0,
            "different viewpoints identical"
        );
        assert!(img2.mean_luminance() > 0.0);
    }

    #[test]
    fn more_photons_reduce_render_noise() {
        // Render quality improves with photon count (Fig 5.16's premise):
        // two independent long runs agree better than two short runs.
        // Comparison happens on downsampled images — adaptive bins convert
        // extra photons into finer bins, so coarse-grained radiance is the
        // quantity that converges.
        let mk = |seed, n| {
            let mut sim = Simulator::new(
                lit_floor_scene(),
                SimConfig {
                    seed,
                    ..Default::default()
                },
            );
            sim.run_photons(n);
            let ans = sim.answer_snapshot();
            let e = 0.05; // fixed exposure for comparability
            render(sim.scene(), &ans, &camera(), e).downsampled(8)
        };
        let short_err = mk(1, 2_000).rms_error(&mk(2, 2_000));
        let long_err = mk(3, 80_000).rms_error(&mk(4, 80_000));
        assert!(
            long_err < short_err,
            "noise did not drop: short {short_err} long {long_err}"
        );
    }

    #[test]
    fn squash_collapses_repeated_rectangles_to_newest() {
        let tile = Tile {
            x0: 0,
            y0: 0,
            x1: 2,
            y1: 2,
        };
        let old = vec![Rgb::gray(0.1); 4];
        let new = vec![Rgb::gray(0.9); 4];
        let squashed = squash_tile_runs([vec![(tile, old)], vec![(tile, new.clone())]]);
        assert_eq!(squashed.len(), 1, "same rectangle must collapse");
        assert_eq!(squashed[0].1, new, "newest pixels must win");
    }

    #[test]
    fn squash_of_sequential_diffs_reassembles_bit_identically() {
        // Three frames, diffed pairwise; squashing both deltas and applying
        // the squash to frame 0 must land exactly on frame 2.
        let mut f0 = Image::new(20, 12);
        f0.set(1, 1, Rgb::gray(0.3));
        let mut f1 = f0.clone();
        f1.set(2, 2, Rgb::new(1.0, 0.0, 0.0));
        f1.set(17, 10, Rgb::new(0.0, 1.0, 0.0));
        let mut f2 = f1.clone();
        f2.set(2, 2, Rgb::new(0.0, 0.0, 1.0)); // re-touches the first tile
        let d01 = diff_tiles(&f0, &f1, 8);
        let d12 = diff_tiles(&f1, &f2, 8);
        let squashed = squash_tile_runs([d01.clone(), d12.clone()]);
        assert!(
            squashed.len() < d01.len() + d12.len(),
            "the re-touched tile must not appear twice"
        );
        let mut rebuilt = f0.clone();
        for (tile, buf) in &squashed {
            blit_tile(&mut rebuilt, *tile, buf);
        }
        assert_eq!(rebuilt.pixels(), f2.pixels(), "squash reassembly diverged");
    }

    #[test]
    fn squash_preserves_order_across_overlapping_rectangles() {
        // A newer update to rectangle A must overwrite an older overlapping
        // rectangle B even after A's earlier occurrence was collapsed away.
        let a = Tile {
            x0: 0,
            y0: 0,
            x1: 2,
            y1: 1,
        };
        let b = Tile {
            x0: 1,
            y0: 0,
            x1: 3,
            y1: 1,
        };
        let runs = [
            vec![(a, vec![Rgb::gray(0.1); 2])],
            vec![(b, vec![Rgb::gray(0.5); 2])],
            vec![(a, vec![Rgb::gray(0.9); 2])],
        ];
        let mut by_runs = Image::new(3, 1);
        for run in &runs {
            for (tile, buf) in run {
                blit_tile(&mut by_runs, *tile, buf);
            }
        }
        let mut by_squash = Image::new(3, 1);
        for (tile, buf) in squash_tile_runs(runs) {
            blit_tile(&mut by_squash, tile, &buf);
        }
        assert_eq!(by_squash.pixels(), by_runs.pixels());
    }
}
