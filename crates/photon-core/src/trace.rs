//! The transport kernel shared by the serial, shared-memory and
//! distributed simulators (Fig 4.1 / 5.2 / 5.3 inner loop).
//!
//! `trace_photon` emits one photon and follows it to termination. Every
//! interaction (the initial emission, then each reflection) is reported to a
//! [`TallySink`] as `(patch id, 4-D bin point, outgoing energy)`. The three
//! parallelizations differ *only* in their sink:
//!
//! * serial — tallies straight into a [`crate::BinForest`];
//! * shared memory — tallies through per-tree reader/writer locks;
//! * distributed — tallies locally when the rank owns the patch, otherwise
//!   enqueues the record for the all-to-all exchange (Fig 5.3).

use crate::forest::BinForest;
use crate::generate::{EmittedPhoton, PhotonGenerator};
use crate::reflect::{reflect, Bounce};
use photon_geom::Scene;
use photon_hist::BinPoint;
use photon_math::{CylDir, Onb, Ray, Rgb};
use photon_rng::PhotonRng;

/// Receives photon interaction tallies.
pub trait TallySink {
    /// Records one interaction of energy `energy` at `point` on `patch_id`.
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb);
}

impl TallySink for BinForest {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        BinForest::tally(self, patch_id, point, energy);
    }
}

/// Any closure of the right shape is a sink (used by the distributed queue).
impl<F: FnMut(u32, &BinPoint, Rgb)> TallySink for F {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self(patch_id, point, energy)
    }
}

/// How a photon's transport ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Termination {
    /// Probabilistically absorbed at a surface.
    Absorbed,
    /// Left the scene without hitting anything.
    Escaped,
    /// Stopped by the safety bounce cap.
    BounceCapped,
}

/// Statistics of one photon's transport.
#[derive(Clone, Copy, Debug)]
pub struct TraceOutcome {
    /// Number of surface interactions (reflections; emission not counted).
    pub bounces: u32,
    /// Why transport ended.
    pub termination: Termination,
}

/// Safety cap on bounces; Russian roulette terminates photons long before
/// this in any physical scene.
pub const MAX_BOUNCES: u32 = 256;

/// Energy floor below which a photon is treated as absorbed.
const MIN_ENERGY: f64 = 1e-12;

/// Emits and traces one photon, reporting every interaction to `sink`.
pub fn trace_photon<R: PhotonRng, S: TallySink + ?Sized>(
    scene: &Scene,
    generator: &PhotonGenerator,
    rng: &mut R,
    sink: &mut S,
) -> TraceOutcome {
    let photon = generator.emit(scene, rng);
    trace_emitted(scene, photon, rng, sink)
}

/// Traces an already-emitted photon (used by tests that script emissions).
pub fn trace_emitted<R: PhotonRng, S: TallySink + ?Sized>(
    scene: &Scene,
    photon: EmittedPhoton,
    rng: &mut R,
    sink: &mut S,
) -> TraceOutcome {
    // Emission tally: the luminaire's own bin records the emitted photon
    // (GeneratePhoton + UpdateBinCount in Fig 4.1) so lights are visible.
    let emit_cyl = CylDir::from_local(photon.local_dir);
    sink.tally(
        photon.patch_id,
        &BinPoint::new(photon.s, photon.t, emit_cyl.theta, emit_cyl.r_sq),
        photon.energy,
    );

    let mut ray = Ray::new(photon.origin, photon.dir).nudged(photon_geom::scene::RAY_EPS);
    let mut energy = photon.energy;
    let mut bounces = 0u32;
    loop {
        let Some(hit) = scene.intersect(&ray, f64::INFINITY) else {
            return TraceOutcome {
                bounces,
                termination: Termination::Escaped,
            };
        };
        let sp = scene.patch(hit.patch_id);
        // Frame of the side that was hit: flip the normal for back faces so
        // reflection and binning happen in the correct hemisphere.
        let frame = if hit.front {
            sp.frame
        } else {
            Onb {
                u: sp.frame.u,
                v: -sp.frame.v,
                w: -sp.frame.w,
            }
        };
        match reflect(&sp.material, &frame, ray.dir, energy, rng) {
            Bounce::Absorbed => {
                return TraceOutcome {
                    bounces,
                    termination: Termination::Absorbed,
                };
            }
            Bounce::Reflected {
                dir,
                local_dir,
                energy: out_energy,
                ..
            } => {
                bounces += 1;
                let cyl = CylDir::from_local(local_dir);
                sink.tally(
                    hit.patch_id,
                    &BinPoint::new(hit.s, hit.v, cyl.theta, cyl.r_sq),
                    out_energy,
                );
                if out_energy.max_channel() < MIN_ENERGY {
                    return TraceOutcome {
                        bounces,
                        termination: Termination::Absorbed,
                    };
                }
                if bounces >= MAX_BOUNCES {
                    return TraceOutcome {
                        bounces,
                        termination: Termination::BounceCapped,
                    };
                }
                energy = out_energy;
                ray = Ray::new(hit.point, dir).nudged(photon_geom::scene::RAY_EPS);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::PhotonGenerator;
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::{Patch, Vec3};
    use photon_rng::Lcg48;

    /// A closed box: light panel at the top, diffuse gray walls.
    ///
    /// `reflective_light` gives the panel the same diffuse reflectance as
    /// the walls (on top of its emission), making the box's albedo exactly
    /// uniform for the geometric-series test.
    #[allow(clippy::vec_init_then_push)] // one push per wall reads clearest
    fn closed_box_opt(wall_albedo: f64, reflective_light: bool) -> Scene {
        let g = Rgb::gray(wall_albedo);
        let mut patches = Vec::new();
        // floor (y=0, normal +y)
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(Vec3::ZERO, Vec3::X * 2.0, Vec3::new(0.0, 0.0, 2.0)),
            Material::matte(g),
        ));
        // ceiling (y=2, normal -y): wind so the front faces down.
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::X * 2.0,
            ),
            Material::matte(g),
        ));
        // four walls
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(Vec3::ZERO, Vec3::new(0.0, 2.0, 0.0), Vec3::X * 2.0),
            Material::matte(g),
        )); // z=0
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::X * 2.0,
                Vec3::new(0.0, 2.0, 0.0),
            ),
            Material::matte(g),
        )); // z=2
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::ZERO,
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(0.0, 2.0, 0.0),
            ),
            Material::matte(g),
        )); // x=0
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 2.0),
            ),
            Material::matte(g),
        )); // x=2
            // light panel just under the ceiling, facing down (x-edge first so
            // the Newell normal points -y, into the room).
        let mut light_mat = Material::emitter(Rgb::WHITE);
        if reflective_light {
            light_mat.diffuse = g;
        }
        patches.push(SurfacePatch::new(
            Patch::from_origin_edges(
                Vec3::new(0.75, 1.99, 0.75),
                Vec3::new(0.5, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 0.5),
            ),
            light_mat,
        ));
        let lum = Luminaire {
            patch_id: 6,
            power: Rgb::new(100.0, 100.0, 100.0),
            collimation: 1.0,
        };
        Scene::new(patches, vec![lum])
    }

    fn closed_box(wall_albedo: f64) -> Scene {
        closed_box_opt(wall_albedo, false)
    }

    #[test]
    fn closed_box_photons_terminate_by_absorption() {
        let scene = closed_box(0.5);
        let generator = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(1);
        let mut forest = BinForest::new(scene.polygon_count(), Default::default());
        let n = 2000;
        let mut absorbed = 0;
        let mut escaped = 0;
        for _ in 0..n {
            match trace_photon(&scene, &generator, &mut rng, &mut forest).termination {
                Termination::Absorbed => absorbed += 1,
                Termination::Escaped => escaped += 1,
                Termination::BounceCapped => {}
            }
        }
        assert_eq!(absorbed + escaped, n);
        // A closed box leaks nothing (within geometric epsilon).
        assert!(escaped <= n / 100, "escaped {escaped}/{n}");
    }

    #[test]
    fn tally_count_is_emissions_plus_reflections() {
        let scene = closed_box(0.5);
        let generator = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(2);
        let mut forest = BinForest::new(scene.polygon_count(), Default::default());
        let n = 1000u64;
        let mut reflections = 0u64;
        for _ in 0..n {
            reflections += trace_photon(&scene, &generator, &mut rng, &mut forest).bounces as u64;
        }
        assert_eq!(forest.total_tallies(), n + reflections);
    }

    #[test]
    fn mean_bounce_count_matches_albedo_geometric_series() {
        // In a closed all-diffuse box with uniform albedo rho (the light
        // panel reflects like the walls), bounce count is geometric:
        // E[bounces] = rho / (1 - rho).
        let rho = 0.5;
        let scene = closed_box_opt(rho, true);
        let generator = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(3);
        let mut sink = |_: u32, _: &BinPoint, _: Rgb| {};
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            total += trace_photon(&scene, &generator, &mut rng, &mut sink).bounces as u64;
        }
        let mean = total as f64 / n as f64;
        let expect = rho / (1.0 - rho);
        assert!(
            (mean - expect).abs() < 0.05,
            "mean bounces {mean} vs {expect}"
        );
    }

    #[test]
    fn energy_tallied_on_walls_matches_absorbed_power() {
        // Total energy absorbed = emitted power (closed box). The sum of
        // *first-bounce incident* energy equals emitted; we check the
        // weaker, exact invariant that emission tallies alone average to
        // the luminaire power.
        let scene = closed_box(0.3);
        let generator = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(4);
        let mut emitted_sum = Rgb::BLACK;
        let mut count = 0u64;
        let mut sink = |pid: u32, _: &BinPoint, e: Rgb| {
            if pid == 6 {
                emitted_sum += e;
                count += 1;
            }
        };
        let n = 5000;
        for _ in 0..n {
            trace_photon(&scene, &generator, &mut rng, &mut sink);
        }
        // Every photon tallies exactly once on the light (emission); walls
        // are diffuse so nothing reflects back onto patch 6's front... but
        // light hitting the panel's back face can reflect; the panel is an
        // emitter with zero reflectance, so extra tallies are impossible.
        assert_eq!(count, n);
        let mean = emitted_sum / n as f64;
        assert!((mean.r - 100.0).abs() < 1.0, "mean emitted {mean:?}");
    }

    #[test]
    fn open_scene_photons_escape() {
        // A lone floor with a light above it pointing up (z-edge first so
        // the Newell normal is +y, away from the floor): everything misses.
        let floor = SurfacePatch::new(
            Patch::from_origin_edges(Vec3::ZERO, Vec3::X, Vec3::new(0.0, 0.0, 1.0)),
            Material::matte(Rgb::gray(0.5)),
        );
        let light = SurfacePatch::new(
            Patch::from_origin_edges(Vec3::new(0.0, 1.0, 0.0), Vec3::new(0.0, 0.0, 1.0), Vec3::X),
            Material::emitter(Rgb::WHITE),
        );
        let scene = Scene::new(
            vec![floor, light],
            vec![Luminaire {
                patch_id: 1,
                power: Rgb::WHITE,
                collimation: 1.0,
            }],
        );
        let generator = PhotonGenerator::new(&scene);
        let mut rng = Lcg48::new(5);
        let mut sink = |_: u32, _: &BinPoint, _: Rgb| {};
        let mut escaped = 0;
        for _ in 0..500 {
            if trace_photon(&scene, &generator, &mut rng, &mut sink).termination
                == Termination::Escaped
            {
                escaped += 1;
            }
        }
        assert_eq!(escaped, 500);
    }
}
