//! `Reflect`: surface interaction with Russian-roulette absorption.
//!
//! The dissertation adopts the physical-optics reflection model of He et al.;
//! DESIGN.md documents our layered substitute: given a hit, the photon
//!
//! 1. survives with probability `albedo = mean(diffuse) + specular + mirror`
//!    (else it is absorbed — the probabilistic termination of Fig 4.1);
//! 2. given survival, picks the **diffuse** branch (cosine-weighted
//!    hemisphere via the rejection kernel), the **glossy** branch (Phong
//!    lobe around the mirror direction) or the **mirror** branch (ideal
//!    specular) in proportion to the same coefficients;
//! 3. its energy is re-weighted per channel so the estimator stays unbiased
//!    (diffuse branch: `ρ_channel / mean(ρ)`; glossy/mirror: unchanged).
//!
//! What the parallel study needs from this routine — probabilistic
//! absorption, and direction statistics that differ sharply between diffuse
//! and specular surfaces so the 4-D bins refine on the correct axes — is
//! preserved exactly (tested here and in `photon-hist`).

use crate::generate::sample_rejection;
use photon_geom::Material;
use photon_math::{Onb, Rgb, Vec3};
use photon_rng::PhotonRng;

/// Outcome of a surface interaction.
#[derive(Clone, Copy, Debug)]
pub enum Bounce {
    /// Photon absorbed; transport ends.
    Absorbed,
    /// Photon reflected with a new world direction and filtered energy.
    Reflected {
        /// New world-space unit direction.
        dir: Vec3,
        /// Outgoing direction in the *hit-side* local frame (z ≥ 0), ready
        /// for histogram binning.
        local_dir: Vec3,
        /// Energy after the surface filter.
        energy: Rgb,
        /// Which branch fired (for tests and diagnostics).
        branch: Branch,
    },
}

/// Reflection branch taken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Branch {
    /// Lambertian scatter.
    Diffuse,
    /// Phong-lobe glossy scatter.
    Glossy,
    /// Ideal mirror.
    Mirror,
}

/// Performs the `Reflect` step of Fig 4.1.
///
/// `frame` must be the local frame of the side that was hit (callers flip
/// `w` for back-face hits); `incoming` is the photon's world direction of
/// travel (pointing *into* the surface).
pub fn reflect<R: PhotonRng>(
    material: &Material,
    frame: &Onb,
    incoming: Vec3,
    energy: Rgb,
    rng: &mut R,
) -> Bounce {
    let p_diffuse = material.diffuse.mean();
    let p_glossy = material.specular;
    let p_mirror = material.mirror;
    let albedo = p_diffuse + p_glossy + p_mirror;
    debug_assert!(albedo <= 1.0 + 1e-9, "unphysical material");
    if albedo <= 0.0 {
        return Bounce::Absorbed;
    }
    let u = rng.next_f64();
    if u >= albedo {
        return Bounce::Absorbed;
    }
    // Branch selection reuses `u`: it is uniform on [0, albedo) here.
    let (branch, filtered) = if u < p_diffuse {
        (
            Branch::Diffuse,
            energy.filter(material.diffuse) / p_diffuse.max(1e-30),
        )
    } else if u < p_diffuse + p_glossy {
        (Branch::Glossy, energy)
    } else {
        (Branch::Mirror, energy)
    };
    let local = match branch {
        Branch::Diffuse => sample_rejection(rng, 1.0),
        Branch::Mirror => mirror_local(frame, incoming),
        Branch::Glossy => {
            // Phong lobe about the mirror direction, resampled (bounded
            // tries) if it dips below the horizon, then clamped.
            let m = mirror_local(frame, incoming);
            let lobe_frame = Onb::from_w(m);
            let mut out = Vec3::Z;
            for _ in 0..8 {
                let cos_a = rng.next_f64().powf(1.0 / (material.gloss_exponent + 1.0));
                let sin_a = (1.0 - cos_a * cos_a).max(0.0).sqrt();
                let phi = rng.next_f64() * std::f64::consts::TAU;
                let cand =
                    lobe_frame.to_world(Vec3::new(sin_a * phi.cos(), sin_a * phi.sin(), cos_a));
                out = cand;
                if cand.z >= 0.0 {
                    break;
                }
            }
            if out.z < 0.0 {
                out = Vec3::new(out.x, out.y, 0.0).normalized();
            }
            out
        }
    };
    Bounce::Reflected {
        dir: frame.to_world(local),
        local_dir: local,
        energy: filtered,
        branch,
    }
}

/// Mirror direction of `incoming` (world) expressed in the local frame.
#[inline]
fn mirror_local(frame: &Onb, incoming: Vec3) -> Vec3 {
    let li = frame.to_local(incoming);
    // Local surface normal is +z; reflecting flips the z component.
    Vec3::new(li.x, li.y, -li.z).normalized()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_rng::Lcg48;

    fn frame() -> Onb {
        Onb::from_w(Vec3::Z)
    }

    /// A 45-degree incoming ray in the xz plane.
    fn incoming() -> Vec3 {
        Vec3::new(1.0, 0.0, -1.0).normalized()
    }

    #[test]
    fn black_surface_absorbs_everything() {
        let m = Material::matte(Rgb::BLACK);
        let mut rng = Lcg48::new(1);
        for _ in 0..100 {
            assert!(matches!(
                reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng),
                Bounce::Absorbed
            ));
        }
    }

    #[test]
    fn survival_rate_matches_albedo() {
        let m = Material::matte(Rgb::gray(0.6));
        let mut rng = Lcg48::new(2);
        let n = 100_000;
        let mut survived = 0;
        for _ in 0..n {
            if matches!(
                reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng),
                Bounce::Reflected { .. }
            ) {
                survived += 1;
            }
        }
        let rate = survived as f64 / n as f64;
        assert!((rate - 0.6).abs() < 0.01, "survival {rate}");
    }

    #[test]
    fn mirror_reflects_exactly() {
        let m = Material::mirror(1.0);
        let mut rng = Lcg48::new(3);
        match reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng) {
            Bounce::Reflected {
                dir,
                branch,
                energy,
                ..
            } => {
                assert_eq!(branch, Branch::Mirror);
                let expect = Vec3::new(1.0, 0.0, 1.0).normalized();
                assert!((dir - expect).length() < 1e-9, "{dir:?}");
                assert_eq!(energy, Rgb::WHITE);
            }
            Bounce::Absorbed => panic!("perfect mirror absorbed"),
        }
    }

    #[test]
    fn diffuse_output_is_cosine_distributed_and_incoming_independent() {
        let m = Material::matte(Rgb::WHITE);
        let mut rng = Lcg48::new(4);
        let n = 50_000;
        let mut sum_z = 0.0;
        let mut sum_x = 0.0;
        for _ in 0..n {
            match reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng) {
                Bounce::Reflected { local_dir, .. } => {
                    sum_z += local_dir.z;
                    sum_x += local_dir.x;
                }
                Bounce::Absorbed => {}
            }
        }
        // mean z of cosine-weighted = 2/3; azimuth symmetric despite the
        // oblique incoming ray.
        assert!((sum_z / n as f64 - 2.0 / 3.0).abs() < 0.01);
        assert!((sum_x / n as f64).abs() < 0.01);
    }

    #[test]
    fn energy_is_conserved_in_expectation() {
        // E[reflected energy] per interaction must equal incident * rho
        // per channel for a colored diffuse surface.
        let rho = Rgb::new(0.8, 0.4, 0.2);
        let m = Material::matte(rho);
        let mut rng = Lcg48::new(5);
        let n = 200_000;
        let mut sum = Rgb::BLACK;
        for _ in 0..n {
            if let Bounce::Reflected { energy, .. } =
                reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng)
            {
                sum += energy;
            }
        }
        let mean = sum / n as f64;
        for (got, want) in [(mean.r, rho.r), (mean.g, rho.g), (mean.b, rho.b)] {
            assert!((got - want).abs() / want < 0.02, "channel {got} vs {want}");
        }
    }

    #[test]
    fn glossy_lobe_tightens_with_exponent() {
        let mut rng = Lcg48::new(6);
        let spread = |exp: f64, rng: &mut Lcg48| {
            let m = Material::glossy(Rgb::BLACK, 1.0, exp);
            let mirror = Vec3::new(1.0, 0.0, 1.0).normalized();
            let n = 20_000;
            let mut acc = 0.0;
            for _ in 0..n {
                if let Bounce::Reflected { dir, .. } =
                    reflect(&m, &frame(), incoming(), Rgb::WHITE, rng)
                {
                    acc += dir.dot(mirror).clamp(-1.0, 1.0).acos();
                }
            }
            acc / n as f64
        };
        let wide = spread(5.0, &mut rng);
        let tight = spread(500.0, &mut rng);
        assert!(tight < wide * 0.5, "wide {wide} tight {tight}");
    }

    #[test]
    fn reflected_local_dir_is_upper_hemisphere() {
        let m = Material::glossy(Rgb::gray(0.3), 0.4, 20.0);
        let mut rng = Lcg48::new(7);
        for _ in 0..5000 {
            if let Bounce::Reflected { local_dir, .. } =
                reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng)
            {
                assert!(local_dir.z >= -1e-12, "{local_dir:?}");
            }
        }
    }

    #[test]
    fn branch_frequencies_match_coefficients() {
        let m = Material {
            diffuse: Rgb::gray(0.3),
            specular: 0.2,
            gloss_exponent: 10.0,
            mirror: 0.4,
            emission: Rgb::BLACK,
        };
        let mut rng = Lcg48::new(8);
        let n = 100_000;
        let (mut d, mut g, mut mi, mut a) = (0, 0, 0, 0);
        for _ in 0..n {
            match reflect(&m, &frame(), incoming(), Rgb::WHITE, &mut rng) {
                Bounce::Reflected {
                    branch: Branch::Diffuse,
                    ..
                } => d += 1,
                Bounce::Reflected {
                    branch: Branch::Glossy,
                    ..
                } => g += 1,
                Bounce::Reflected {
                    branch: Branch::Mirror,
                    ..
                } => mi += 1,
                Bounce::Absorbed => a += 1,
            }
        }
        let nf = n as f64;
        assert!((d as f64 / nf - 0.3).abs() < 0.01);
        assert!((g as f64 / nf - 0.2).abs() < 0.01);
        assert!((mi as f64 / nf - 0.4).abs() < 0.01);
        assert!((a as f64 / nf - 0.1).abs() < 0.01);
    }
}
