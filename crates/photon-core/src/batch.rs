//! Batched photon transport: the **trace → partition → apply** kernel.
//!
//! The tally-at-a-time inner loop (one [`TallySink::tally`] per interaction,
//! straight into a locked forest) spends its parallel budget on coordination:
//! either every tally takes a per-tree lock, or tallies are buffered and
//! replayed in photon order through one thread. This module restructures the
//! loop into three phases that make coordination *per batch* instead of *per
//! interaction*:
//!
//! 1. **Trace** ([`trace_strided`]) — each worker traces a leapfrogged stride
//!    of the batch completely lock-free, appending [`TallyRecord`]s
//!    (`patch_id`, `photon`, `bounce`, bin point, energy) to a reusable
//!    scratch buffer instead of tallying inline.
//! 2. **Partition** ([`PartitionScratch::partition`]) — records are grouped
//!    by `patch_id` with a counting sort that scatters in global
//!    `(photon, bounce)` order, so each patch's run is *exactly* the
//!    subsequence of the serial tally stream that touches that patch.
//! 3. **Apply** — each patch's run is folded into its [`photon_hist::BinTree`]
//!    as one uninterrupted sequence ([`crate::BinForest::tally_run`]).
//!    Per-tree tally order equals serial order *by construction*, so threaded
//!    answers are bit-identical to serial at any thread count — without a
//!    global replay lock — and distinct patches apply in parallel.
//!
//! All buffers are caller-owned and reused across batches: a steady-state
//! solve through this kernel performs no per-batch heap allocation.

use crate::generate::PhotonGenerator;
use crate::sim::SimStats;
use crate::trace::{trace_photon, TallySink};
use photon_geom::Scene;
use photon_hist::BinPoint;
use photon_math::Rgb;

/// One buffered photon interaction, tagged with its position in the global
/// photon stream so partitioned runs can reproduce the serial tally order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TallyRecord {
    /// Global photon index in the stream (see [`crate::photon_stream`]).
    pub photon: u64,
    /// Interaction index within the photon: 0 is the emission tally, `k > 0`
    /// is the `k`-th reflection.
    pub bounce: u32,
    /// Patch whose bin tree receives the tally.
    pub patch_id: u32,
    /// 4-D bin coordinates of the interaction.
    pub point: BinPoint,
    /// Outgoing energy tallied.
    pub energy: Rgb,
}

/// A [`TallySink`] that appends [`TallyRecord`]s instead of tallying,
/// tracking the interaction index within the current photon.
pub struct RecordSink<'a> {
    out: &'a mut Vec<TallyRecord>,
    photon: u64,
    bounce: u32,
}

impl<'a> RecordSink<'a> {
    /// A sink appending to `out`; call [`RecordSink::start_photon`] before
    /// tracing each photon.
    pub fn new(out: &'a mut Vec<TallyRecord>) -> Self {
        RecordSink {
            out,
            photon: 0,
            bounce: 0,
        }
    }

    /// Begins recording interactions of global photon `index`.
    #[inline]
    pub fn start_photon(&mut self, index: u64) {
        self.photon = index;
        self.bounce = 0;
    }
}

impl TallySink for RecordSink<'_> {
    #[inline]
    fn tally(&mut self, patch_id: u32, point: &BinPoint, energy: Rgb) {
        self.out.push(TallyRecord {
            photon: self.photon,
            bounce: self.bounce,
            patch_id,
            point: *point,
            energy,
        });
        self.bounce += 1;
    }
}

/// Traces worker `offset`'s leapfrogged share of the batch
/// `[start, start + count)` — photons `start + offset`,
/// `start + offset + stride`, … — appending records to `out` (which is *not*
/// cleared; callers clear it once per batch to reuse its capacity) and
/// folding terminations into `stats`.
///
/// Lock-free by construction: the only shared state touched is the immutable
/// scene. Because photon `j` draws from block substream `j`
/// ([`crate::photon_stream`]), the traced photon set is identical to serial
/// regardless of `stride`, and `out` ends up sorted by `(photon, bounce)`.
#[allow(clippy::too_many_arguments)] // a worker's complete trace contract
pub fn trace_strided(
    scene: &Scene,
    generator: &PhotonGenerator,
    seed: u64,
    start: u64,
    count: u64,
    offset: u64,
    stride: u64,
    out: &mut Vec<TallyRecord>,
    stats: &mut SimStats,
) {
    let mut sink = RecordSink::new(out);
    let mut j = start + offset;
    let end = start + count;
    while j < end {
        sink.start_photon(j);
        let mut rng = crate::engine::photon_stream(seed, j);
        let outcome = trace_photon(scene, generator, &mut rng, &mut sink);
        stats.record(&outcome);
        j += stride;
    }
}

/// A contiguous span of one patch's records inside
/// [`PartitionScratch::sorted`], in serial `(photon, bounce)` order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PatchRun {
    /// Patch whose tree the run applies to.
    pub patch_id: u32,
    /// Offset of the first record in the sorted buffer.
    pub start: usize,
    /// Number of records in the run.
    pub len: usize,
}

/// Reusable buffers for the partition phase. Construct once per engine and
/// feed every batch through it; at steady state [`PartitionScratch::partition`]
/// allocates nothing (buffers only ever grow to the largest batch seen).
#[derive(Debug)]
pub struct PartitionScratch {
    /// Per-patch counters, reused as scatter write cursors.
    counts: Vec<usize>,
    /// Per-worker read cursors into the trace lists.
    cursors: Vec<usize>,
    /// All records of the batch, grouped by patch, each group in serial
    /// `(photon, bounce)` order.
    pub sorted: Vec<TallyRecord>,
    /// One entry per patch that received records this batch, ascending by
    /// `patch_id`.
    pub runs: Vec<PatchRun>,
}

impl PartitionScratch {
    /// Scratch for a scene of `patch_count` patches.
    pub fn new(patch_count: usize) -> Self {
        PartitionScratch {
            counts: vec![0; patch_count],
            cursors: Vec::new(),
            sorted: Vec::new(),
            runs: Vec::new(),
        }
    }

    /// Groups the workers' trace lists by patch into [`PartitionScratch::sorted`] /
    /// [`PartitionScratch::runs`].
    ///
    /// `lists[t]` must hold the records of photons `start + t`,
    /// `start + t + T`, … (with `T = lists.len()`) of the batch
    /// `[start, start + count)`, sorted by `(photon, bounce)` — exactly what
    /// [`trace_strided`] produces for worker `t`.
    ///
    /// The scatter walks photons in global order, so within each patch run
    /// records sit in ascending `(photon, bounce)` order: the serial tally
    /// subsequence for that patch. This is a counting sort — O(records +
    /// patches), no comparisons.
    pub fn partition(&mut self, lists: &[&[TallyRecord]], start: u64, count: u64) {
        let total: usize = lists.iter().map(|l| l.len()).sum();
        self.counts.fill(0);
        for list in lists {
            for rec in *list {
                self.counts[rec.patch_id as usize] += 1;
            }
        }
        // Prefix-sum the counts into run offsets; each count cell becomes
        // its patch's scatter cursor.
        self.runs.clear();
        let mut offset = 0usize;
        for (patch_id, c) in self.counts.iter_mut().enumerate() {
            if *c > 0 {
                self.runs.push(PatchRun {
                    patch_id: patch_id as u32,
                    start: offset,
                    len: *c,
                });
                let next = offset + *c;
                *c = offset;
                offset = next;
            }
        }
        // Scatter in global (photon, bounce) order. The dummy fill is
        // overwritten entirely; `resize` (not `clear` + push) keeps this a
        // plain memset-and-scatter with no reallocation at steady state.
        self.sorted.resize(
            total,
            TallyRecord {
                photon: 0,
                bounce: 0,
                patch_id: 0,
                point: BinPoint::new(0.0, 0.0, 0.0, 0.0),
                energy: Rgb::BLACK,
            },
        );
        self.cursors.clear();
        self.cursors.resize(lists.len(), 0);
        let stride = lists.len() as u64;
        for j in start..start + count {
            let t = ((j - start) % stride) as usize;
            let list = lists[t];
            let cur = &mut self.cursors[t];
            while *cur < list.len() && list[*cur].photon == j {
                let rec = list[*cur];
                let slot = &mut self.counts[rec.patch_id as usize];
                self.sorted[*slot] = rec;
                *slot += 1;
                *cur += 1;
            }
        }
        debug_assert!(
            self.cursors.iter().zip(lists).all(|(c, l)| *c == l.len()),
            "partition consumed every record"
        );
    }

    /// The records of `run`, in serial order.
    #[inline]
    pub fn run_records(&self, run: &PatchRun) -> &[TallyRecord] {
        &self.sorted[run.start..run.start + run.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::BinForest;
    use crate::sim::{SimConfig, Simulator};
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::{Patch, Vec3};
    use photon_rng::{Lcg48, PhotonRng};

    fn tiny_box() -> Scene {
        let g = Rgb::gray(0.6);
        let mk = |o: Vec3, e1: Vec3, e2: Vec3, m: Material| {
            SurfacePatch::new(Patch::from_origin_edges(o, e1, e2), m)
        };
        let patches = vec![
            mk(
                Vec3::ZERO,
                Vec3::X * 2.0,
                Vec3::new(0.0, 0.0, 2.0),
                Material::matte(g),
            ),
            mk(
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::X * 2.0,
                Material::matte(g),
            ),
            mk(
                Vec3::ZERO,
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::X * 2.0,
                Material::matte(g),
            ),
            mk(
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::X * 2.0,
                Vec3::new(0.0, 2.0, 0.0),
                Material::matte(g),
            ),
            mk(
                Vec3::ZERO,
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(0.0, 2.0, 0.0),
                Material::matte(g),
            ),
            mk(
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 2.0),
                Material::matte(g),
            ),
            mk(
                Vec3::new(0.3, 1.99, 0.3),
                Vec3::new(0.5, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 0.5),
                Material::emitter(Rgb::WHITE),
            ),
        ];
        Scene::new(
            patches,
            vec![Luminaire {
                patch_id: 6,
                power: Rgb::gray(100.0),
                collimation: 1.0,
            }],
        )
    }

    /// Serial reference: trace the batch inline and collect the tally stream.
    fn serial_records(scene: &Scene, seed: u64, start: u64, count: u64) -> Vec<TallyRecord> {
        let generator = PhotonGenerator::new(scene);
        let mut out = Vec::new();
        let mut stats = SimStats::default();
        trace_strided(
            scene, &generator, seed, start, count, 0, 1, &mut out, &mut stats,
        );
        out
    }

    #[test]
    fn strided_traces_cover_the_batch_exactly() {
        let scene = tiny_box();
        let generator = PhotonGenerator::new(&scene);
        let serial = serial_records(&scene, 7, 100, 64);
        for threads in [1usize, 2, 3, 8] {
            let mut merged = Vec::new();
            let mut stats = SimStats::default();
            for t in 0..threads {
                let mut out = Vec::new();
                trace_strided(
                    &scene,
                    &generator,
                    7,
                    100,
                    64,
                    t as u64,
                    threads as u64,
                    &mut out,
                    &mut stats,
                );
                // Each worker's list is sorted by (photon, bounce).
                for w in out.windows(2) {
                    assert!((w[0].photon, w[0].bounce) < (w[1].photon, w[1].bounce));
                }
                merged.extend(out);
            }
            assert_eq!(stats.emitted, 64);
            merged.sort_by_key(|r| (r.photon, r.bounce));
            assert_eq!(merged, serial, "threads={threads}");
        }
    }

    #[test]
    fn partition_reproduces_serial_per_patch_order() {
        let scene = tiny_box();
        let generator = PhotonGenerator::new(&scene);
        let (start, count) = (5u64, 200u64);
        let serial = serial_records(&scene, 11, start, count);
        for threads in [1usize, 2, 5] {
            let mut lists = Vec::new();
            for t in 0..threads {
                let mut out = Vec::new();
                let mut stats = SimStats::default();
                trace_strided(
                    &scene,
                    &generator,
                    11,
                    start,
                    count,
                    t as u64,
                    threads as u64,
                    &mut out,
                    &mut stats,
                );
                lists.push(out);
            }
            let refs: Vec<&[TallyRecord]> = lists.iter().map(|l| l.as_slice()).collect();
            let mut scratch = PartitionScratch::new(scene.polygon_count());
            scratch.partition(&refs, start, count);
            assert_eq!(scratch.sorted.len(), serial.len());
            // Runs are disjoint, ascending, and cover the sorted buffer.
            let mut covered = 0usize;
            let mut last_patch = None;
            for run in &scratch.runs {
                assert_eq!(run.start, covered);
                assert!(last_patch < Some(run.patch_id));
                last_patch = Some(run.patch_id);
                covered += run.len;
                let records = scratch.run_records(run);
                // Every record belongs to the run's patch, in serial order.
                let expect: Vec<&TallyRecord> = serial
                    .iter()
                    .filter(|r| r.patch_id == run.patch_id)
                    .collect();
                assert_eq!(records.len(), expect.len());
                for (got, want) in records.iter().zip(expect) {
                    assert_eq!(got, want, "threads={threads} patch={}", run.patch_id);
                }
            }
            assert_eq!(covered, serial.len());
        }
    }

    #[test]
    fn applying_runs_matches_the_inline_serial_forest() {
        let scene = tiny_box();
        let generator = PhotonGenerator::new(&scene);
        let count = 3000u64;
        // Inline serial reference.
        let mut sim = Simulator::new(
            scene.clone(),
            SimConfig {
                seed: 3,
                ..Default::default()
            },
        );
        sim.run_photons(count);
        // Batched: trace on 4 strides, partition, apply run-by-run.
        let threads = 4usize;
        let mut lists = Vec::new();
        for t in 0..threads {
            let mut out = Vec::new();
            let mut stats = SimStats::default();
            trace_strided(
                &scene,
                &generator,
                3,
                0,
                count,
                t as u64,
                threads as u64,
                &mut out,
                &mut stats,
            );
            lists.push(out);
        }
        let refs: Vec<&[TallyRecord]> = lists.iter().map(|l| l.as_slice()).collect();
        let mut scratch = PartitionScratch::new(scene.polygon_count());
        scratch.partition(&refs, 0, count);
        let mut forest = BinForest::new(scene.polygon_count(), Default::default());
        for run in &scratch.runs {
            forest.tally_run(run.patch_id, scratch.run_records(run));
        }
        let export =
            |f: &BinForest| -> Vec<_> { f.iter().map(|(_, t)| t.export_nodes()).collect() };
        assert_eq!(export(&forest), export(sim.forest()));
    }

    #[test]
    fn partition_handles_empty_and_tiny_batches() {
        let mut scratch = PartitionScratch::new(4);
        scratch.partition(&[&[], &[]], 0, 0);
        assert!(scratch.runs.is_empty());
        assert!(scratch.sorted.is_empty());
        // A single record lands in a single run.
        let rec = TallyRecord {
            photon: 9,
            bounce: 0,
            patch_id: 2,
            point: BinPoint::new(0.5, 0.5, 1.0, 0.5),
            energy: Rgb::WHITE,
        };
        scratch.partition(&[&[rec], &[]], 9, 1);
        assert_eq!(
            scratch.runs,
            vec![PatchRun {
                patch_id: 2,
                start: 0,
                len: 1
            }]
        );
        assert_eq!(scratch.sorted, vec![rec]);
    }

    #[test]
    fn partition_is_reusable_without_growing() {
        // Feeding the same batch shape twice must not grow the buffers.
        let mut rng = Lcg48::new(99);
        let mk_lists = |rng: &mut Lcg48| -> Vec<Vec<TallyRecord>> {
            let threads = 2u64;
            (0..threads)
                .map(|t| {
                    let mut v = Vec::new();
                    for j in (t..40).step_by(threads as usize) {
                        for b in 0..2u32 {
                            v.push(TallyRecord {
                                photon: j,
                                bounce: b,
                                patch_id: (rng.next_f64() * 4.0) as u32,
                                point: BinPoint::new(0.1, 0.2, 0.3, 0.4),
                                energy: Rgb::WHITE,
                            });
                        }
                    }
                    v
                })
                .collect()
        };
        let mut scratch = PartitionScratch::new(4);
        let lists = mk_lists(&mut rng);
        let refs: Vec<&[TallyRecord]> = lists.iter().map(|l| l.as_slice()).collect();
        scratch.partition(&refs, 0, 40);
        let cap_sorted = scratch.sorted.capacity();
        let cap_runs = scratch.runs.capacity();
        let lists = mk_lists(&mut rng);
        let refs: Vec<&[TallyRecord]> = lists.iter().map(|l| l.as_slice()).collect();
        scratch.partition(&refs, 0, 40);
        assert_eq!(scratch.sorted.capacity(), cap_sorted);
        assert_eq!(scratch.runs.capacity(), cap_runs);
    }
}
