//! Engine checkpoints: freeze a running solve, resume it *bit-identically*.
//!
//! A Photon solve is pure accumulation: every backend draws photon `j` from
//! the same per-photon block substream ([`crate::photon_stream`]), folds its
//! tallies into the bin forest, and moves to photon `j + 1`. The complete
//! resumable state is therefore tiny in kind (if not in bytes): the forest
//! (with each leaf's speculative split statistics), the cumulative photon
//! counters, and the photon-index cursor the next batch starts from. An
//! [`EngineCheckpoint`] captures exactly that, and
//! [`SolverEngine::checkpoint`](crate::SolverEngine::checkpoint) /
//! [`SolverEngine::restore`](crate::SolverEngine::restore) move it in and
//! out of any backend.
//!
//! **The resume invariant.** For the order-preserving backends — the serial
//! [`Simulator`](crate::Simulator) and `photon_par::ParEngine` in
//! deterministic-tally mode — checkpoint at photon `N`, restore into either
//! backend (same or different), and step to `M`: the resulting
//! [`Answer`] is **bit-identical** to an uninterrupted `N + M` solve.
//! `photon_dist::DistEngine` resumes bit-identically into a freshly booted
//! world of the same configuration (its tally order is rank-partitioned, so
//! cross-backend equality weakens to the usual photon-set invariants:
//! identical counters and tally totals). The equivalence suite in
//! `photon-serve` enforces all of this.
//!
//! **On disk.** [`EngineCheckpoint::write_to`] serializes to the `PHOTCK1`
//! format, a sibling of the answer store's `PHOTANS1`: a 7-byte magic, a
//! version byte, the header fields, then each tree in the shared tree-block
//! encoding. Reads validate magic, version, node graphs, photon-counter
//! conservation, and reject trailing garbage.
//!
//! ```
//! use photon_core::{EngineCheckpoint, SimConfig, Simulator, SolverEngine};
//!
//! let scene = photon_scenes::cornell_box();
//! let cfg = SimConfig { seed: 7, ..Default::default() };
//!
//! // Solve 2000 photons, checkpoint, and round-trip through the codec.
//! let mut sim = Simulator::new(scene.clone(), cfg);
//! sim.step(2_000);
//! let bytes = sim.checkpoint().to_bytes();
//! let ck = EngineCheckpoint::from_bytes(&bytes).unwrap();
//!
//! // A fresh engine resumes exactly where the old one stopped...
//! let mut resumed = Simulator::new(scene.clone(), cfg);
//! resumed.restore(&ck).unwrap();
//! resumed.step(1_000);
//!
//! // ...and lands bit-identically on an uninterrupted 3000-photon solve.
//! let mut straight = Simulator::new(scene, cfg);
//! straight.step(3_000);
//! let encode = |a: &photon_core::Answer| {
//!     let mut buf = Vec::new();
//!     a.write_to(&mut buf).unwrap();
//!     buf
//! };
//! assert_eq!(encode(&resumed.snapshot()), encode(&straight.snapshot()));
//! ```

use crate::answer::{bad_data, read_tree, read_u32, read_u64, tree_encoded_size, write_tree};
use crate::forest::BinForest;
use crate::sim::SimStats;
use crate::Answer;
use photon_hist::{BinTree, SplitConfig, SplitRule};
use std::io::{self, Read, Write};
use std::path::Path;

/// Magic bytes of the checkpoint-file format (version follows as one byte).
const MAGIC: &[u8; 7] = b"PHOTCK1";

/// Format version written after the magic; bump on layout changes.
const VERSION: u8 = 1;

/// Fixed header size: magic (7) + version (1) + seed (8) + cursor (8) +
/// stats (5 × 8) + split rule (8 + 4) + max depth (2) + patch count (4).
const HEADER_BYTES: u64 = 7 + 1 + 8 + 8 + 40 + 8 + 4 + 2 + 4;

/// The frozen state of a running solve: forest, counters, and the photon
/// cursor — everything a backend needs to continue the exact photon stream.
///
/// Obtain one from [`SolverEngine::checkpoint`](crate::SolverEngine::checkpoint),
/// persist it with [`save`](EngineCheckpoint::save) /
/// [`write_to`](EngineCheckpoint::write_to), and hand it to
/// [`SolverEngine::restore`](crate::SolverEngine::restore) on any engine
/// built over the same scene, seed, and split policy.
#[derive(Clone, Debug)]
pub struct EngineCheckpoint {
    seed: u64,
    cursor: u64,
    stats: SimStats,
    split: SplitConfig,
    trees: Vec<BinTree>,
}

impl EngineCheckpoint {
    /// Assembles a checkpoint from an engine's parts. `cursor` is the next
    /// *global photon index* the engine would trace — equal to
    /// `stats.emitted` for the serial and shared-memory engines, and to the
    /// main-loop photon count for the distributed engine (whose pilot-phase
    /// photons count in `stats` but not in the stream cursor).
    pub fn new(
        seed: u64,
        cursor: u64,
        stats: SimStats,
        split: SplitConfig,
        trees: Vec<BinTree>,
    ) -> Self {
        EngineCheckpoint {
            seed,
            cursor,
            stats,
            split,
            trees,
        }
    }

    /// Seed of the photon stream this solve draws from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next global photon index to trace after restoring.
    pub fn cursor(&self) -> u64 {
        self.cursor
    }

    /// Cumulative photon counters at checkpoint time.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Photons emitted when the checkpoint was taken.
    pub fn emitted(&self) -> u64 {
        self.stats.emitted
    }

    /// The split policy the forest was grown under (a restore target must
    /// match it, or its future splits would diverge).
    pub fn split(&self) -> SplitConfig {
        self.split
    }

    /// Number of patches (trees) in the checkpointed forest.
    pub fn patch_count(&self) -> usize {
        self.trees.len()
    }

    /// Total leaf bins across the checkpointed forest.
    pub fn total_leaf_bins(&self) -> u64 {
        self.trees.iter().map(|t| t.leaf_count() as u64).sum()
    }

    /// A fresh forest holding the checkpointed trees (cloned).
    pub fn forest(&self) -> BinForest {
        BinForest::from_trees(self.trees.clone())
    }

    /// The checkpoint's solution as a renderable [`Answer`] — what a
    /// progressive publish of the interrupted solve would have produced.
    pub fn to_answer(&self) -> Answer {
        Answer::from_forest(&self.forest(), self.stats.emitted)
    }

    /// Exact size of the `PHOTCK1` encoding, in bytes, without encoding.
    pub fn encoded_size(&self) -> u64 {
        HEADER_BYTES + self.trees.iter().map(tree_encoded_size).sum::<u64>()
    }

    /// Writes the `PHOTCK1` binary encoding.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&[VERSION])?;
        w.write_all(&self.seed.to_le_bytes())?;
        w.write_all(&self.cursor.to_le_bytes())?;
        for c in [
            self.stats.emitted,
            self.stats.absorbed,
            self.stats.escaped,
            self.stats.capped,
            self.stats.reflections,
        ] {
            w.write_all(&c.to_le_bytes())?;
        }
        w.write_all(&self.split.rule.sigmas.to_le_bytes())?;
        w.write_all(&self.split.rule.min_count.to_le_bytes())?;
        w.write_all(&self.split.max_depth.to_le_bytes())?;
        w.write_all(&(self.trees.len() as u32).to_le_bytes())?;
        for tree in &self.trees {
            write_tree(w, tree)?;
        }
        Ok(())
    }

    /// Reads a `PHOTCK1` checkpoint written by
    /// [`write_to`](EngineCheckpoint::write_to), validating magic, version,
    /// counter conservation, and every tree's node graph. The reader must
    /// end exactly at the encoding's last byte — trailing garbage is
    /// rejected, so a corrupt concatenation cannot half-parse.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<EngineCheckpoint> {
        let mut magic = [0u8; 7];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_data("not a Photon checkpoint file"));
        }
        let mut version = [0u8; 1];
        r.read_exact(&mut version)?;
        if version[0] != VERSION {
            return Err(bad_data(&format!(
                "unsupported checkpoint version {} (expected {VERSION})",
                version[0]
            )));
        }
        let seed = read_u64(r)?;
        let cursor = read_u64(r)?;
        let stats = SimStats {
            emitted: read_u64(r)?,
            absorbed: read_u64(r)?,
            escaped: read_u64(r)?,
            capped: read_u64(r)?,
            reflections: read_u64(r)?,
        };
        if !stats.is_conserved() {
            return Err(bad_data("checkpoint counters are not conserved"));
        }
        // Every backend's cursor is bounded by its emitted count (equal on
        // the order-preserving engines; the distributed cursor excludes
        // the pilot photons counted in `stats`), so a cursor beyond it is
        // corruption that would silently resume at the wrong stream index.
        if cursor > stats.emitted {
            return Err(bad_data("checkpoint cursor exceeds emitted photons"));
        }
        let mut sigmas = [0u8; 8];
        r.read_exact(&mut sigmas)?;
        let sigmas = f64::from_le_bytes(sigmas);
        if !sigmas.is_finite() || sigmas <= 0.0 {
            return Err(bad_data("bad split rule"));
        }
        let min_count = read_u32(r)?;
        let mut depth = [0u8; 2];
        r.read_exact(&mut depth)?;
        let split = SplitConfig {
            rule: SplitRule { sigmas, min_count },
            max_depth: u16::from_le_bytes(depth),
        };
        let npatches = read_u32(r)? as usize;
        // Untrusted count: clamp the pre-allocation (a lying header fails
        // in `read_exact`, not in the allocator).
        let mut trees = Vec::with_capacity(npatches.min(crate::answer::PREALLOC_CAP));
        for _ in 0..npatches {
            trees.push(read_tree(r, split)?);
        }
        // EOF probe with `read_exact` semantics: retry interrupted reads
        // so a signal landing on the final syscall can't fail a valid load.
        let mut probe = [0u8; 1];
        loop {
            match r.read(&mut probe) {
                Ok(0) => break,
                Ok(_) => return Err(bad_data("trailing garbage after checkpoint")),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(EngineCheckpoint {
            seed,
            cursor,
            stats,
            split,
            trees,
        })
    }

    /// The `PHOTCK1` encoding as a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.encoded_size() as usize);
        self.write_to(&mut buf).expect("Vec writes cannot fail");
        buf
    }

    /// [`to_bytes`](EngineCheckpoint::to_bytes) with the encode duration
    /// recorded into `hub` under [`Stage::CheckpointEncode`] — what the
    /// serve tier calls so checkpoint encode cost shows up in the stage
    /// histograms.
    ///
    /// [`Stage::CheckpointEncode`]: crate::obs::Stage::CheckpointEncode
    pub fn to_bytes_observed(&self, hub: &crate::ObsHub) -> Vec<u8> {
        hub.time(crate::Stage::CheckpointEncode, || self.to_bytes())
    }

    /// Decodes a byte slice produced by [`to_bytes`](EngineCheckpoint::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> io::Result<EngineCheckpoint> {
        EngineCheckpoint::read_from(&mut &bytes[..])
    }

    /// Saves the checkpoint to a file (buffered).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut w = io::BufWriter::new(std::fs::File::create(path)?);
        self.write_to(&mut w)?;
        w.flush()
    }

    /// Loads a checkpoint file written by [`save`](EngineCheckpoint::save).
    pub fn load<P: AsRef<Path>>(path: P) -> io::Result<EngineCheckpoint> {
        let mut r = io::BufReader::new(std::fs::File::open(path)?);
        EngineCheckpoint::read_from(&mut r)
    }
}

/// Why a checkpoint cannot restore into a given engine: the checkpoint only
/// means something against the scene, stream, and split policy it froze.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The engine's scene has a different patch count than the checkpoint.
    PatchCountMismatch {
        /// Patches in the engine's scene.
        engine: usize,
        /// Trees in the checkpoint.
        checkpoint: usize,
    },
    /// The engine was built over a different photon-stream seed, so the
    /// checkpoint's cursor would index into the wrong stream.
    SeedMismatch {
        /// The engine's seed.
        engine: u64,
        /// The checkpoint's seed.
        checkpoint: u64,
    },
    /// The engine's split policy differs, so resumed trees would refine
    /// differently than the originals.
    SplitMismatch,
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::PatchCountMismatch { engine, checkpoint } => write!(
                f,
                "checkpoint holds {checkpoint} trees but the engine's scene has {engine} patches"
            ),
            RestoreError::SeedMismatch { engine, checkpoint } => write!(
                f,
                "checkpoint was taken under seed {checkpoint} but the engine runs seed {engine}"
            ),
            RestoreError::SplitMismatch => {
                write!(f, "checkpoint and engine disagree on the split policy")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl EngineCheckpoint {
    /// The restore preamble every backend runs before adopting this
    /// checkpoint's state: the target engine's scene patch count, stream
    /// seed, and split policy must all match what the checkpoint froze.
    pub fn compatible_with(
        &self,
        patch_count: usize,
        seed: u64,
        split: SplitConfig,
    ) -> Result<(), RestoreError> {
        if self.patch_count() != patch_count {
            return Err(RestoreError::PatchCountMismatch {
                engine: patch_count,
                checkpoint: self.patch_count(),
            });
        }
        if self.seed() != seed {
            return Err(RestoreError::SeedMismatch {
                engine: seed,
                checkpoint: self.seed(),
            });
        }
        if self.split() != split {
            return Err(RestoreError::SplitMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_hist::BinPoint;
    use photon_math::Rgb;
    use photon_rng::{Lcg48, PhotonRng};
    use std::f64::consts::TAU;

    fn sample_checkpoint() -> EngineCheckpoint {
        let mut forest = BinForest::new(3, SplitConfig::default());
        let mut rng = Lcg48::new(41);
        for _ in 0..20_000 {
            let pid = rng.index(3) as u32;
            let p = BinPoint::new(
                rng.next_f64().powi(2),
                rng.next_f64(),
                rng.next_f64() * TAU,
                rng.next_f64(),
            );
            forest.tally(pid, &p, Rgb::new(1.0, 0.5, 0.25));
        }
        EngineCheckpoint::new(
            99,
            6_000,
            SimStats {
                emitted: 6_000,
                absorbed: 4_000,
                escaped: 1_500,
                capped: 500,
                reflections: 14_000,
            },
            SplitConfig::default(),
            forest.into_trees(),
        )
    }

    #[test]
    fn encoded_size_is_exact() {
        let ck = sample_checkpoint();
        assert_eq!(ck.to_bytes().len() as u64, ck.encoded_size());
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = EngineCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.seed(), ck.seed());
        assert_eq!(back.cursor(), ck.cursor());
        assert_eq!(back.stats(), ck.stats());
        assert_eq!(back.split(), ck.split());
        assert_eq!(back.patch_count(), ck.patch_count());
        assert_eq!(back.total_leaf_bins(), ck.total_leaf_bins());
        // Byte-stable: re-encoding the decoded checkpoint is identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn to_answer_matches_the_forest_snapshot() {
        let ck = sample_checkpoint();
        let a = ck.to_answer();
        assert_eq!(a.emitted(), ck.emitted());
        assert_eq!(a.total_leaf_bins(), ck.total_leaf_bins());
    }

    #[test]
    fn restore_compatibility_is_checked() {
        let ck = sample_checkpoint();
        assert_eq!(
            ck.compatible_with(2, 99, SplitConfig::default()),
            Err(RestoreError::PatchCountMismatch {
                engine: 2,
                checkpoint: 3
            })
        );
        assert_eq!(
            ck.compatible_with(3, 7, SplitConfig::default()),
            Err(RestoreError::SeedMismatch {
                engine: 7,
                checkpoint: 99
            })
        );
        let strict = SplitConfig {
            max_depth: 5,
            ..Default::default()
        };
        assert_eq!(
            ck.compatible_with(3, 99, strict),
            Err(RestoreError::SplitMismatch)
        );
        assert_eq!(ck.compatible_with(3, 99, SplitConfig::default()), Ok(()));
    }
}
