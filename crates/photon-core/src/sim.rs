//! The serial Photon simulator — the paper's Fig 4.1 driver, and the
//! "best serial version" against which all speedups are defined.

use crate::answer::Answer;
use crate::checkpoint::{EngineCheckpoint, RestoreError};
use crate::engine::{photon_stream, BatchReport, SolverEngine};
use crate::forest::BinForest;
use crate::generate::PhotonGenerator;
use crate::perf::{MemoryTrace, SpeedTrace};
use crate::trace::{trace_photon, Termination};
use photon_geom::Scene;
use photon_hist::SplitConfig;
use std::time::Instant;

/// Simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Seed of the global random stream.
    pub seed: u64,
    /// Bin splitting policy.
    pub split: SplitConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x5EED,
            split: SplitConfig::default(),
        }
    }
}

/// Aggregate counters of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Photons emitted.
    pub emitted: u64,
    /// Photons terminated by absorption.
    pub absorbed: u64,
    /// Photons that left the scene.
    pub escaped: u64,
    /// Photons stopped by the bounce cap.
    pub capped: u64,
    /// Total reflections tallied.
    pub reflections: u64,
}

impl SimStats {
    /// Conservation check: every emitted photon terminated exactly one way.
    pub fn is_conserved(&self) -> bool {
        self.emitted == self.absorbed + self.escaped + self.capped
    }

    /// Accounts one traced photon.
    #[inline]
    pub fn record(&mut self, outcome: &crate::trace::TraceOutcome) {
        self.emitted += 1;
        self.reflections += outcome.bounces as u64;
        match outcome.termination {
            Termination::Absorbed => self.absorbed += 1,
            Termination::Escaped => self.escaped += 1,
            Termination::BounceCapped => self.capped += 1,
        }
    }

    /// Folds another counter set into this one (worker/rank aggregation).
    pub fn merge(&mut self, other: &SimStats) {
        self.emitted += other.emitted;
        self.absorbed += other.absorbed;
        self.escaped += other.escaped;
        self.capped += other.capped;
        self.reflections += other.reflections;
    }
}

/// Serial Monte Carlo light-transport simulator.
///
/// Photon `j` of a run draws from block substream `j` of the seeded base
/// stream ([`photon_stream`]), so the photon set depends only on
/// `(seed, count)` — the property the parallel backends rely on to
/// reproduce a serial run exactly.
#[derive(Clone, Debug)]
pub struct Simulator {
    scene: Scene,
    generator: PhotonGenerator,
    forest: BinForest,
    seed: u64,
    split: photon_hist::SplitConfig,
    /// Next global photon index to trace. Tracks `stats.emitted` for a
    /// fresh run; they diverge only after restoring a checkpoint whose
    /// counters include photons outside the main stream (the distributed
    /// backend's pilot phase).
    cursor: u64,
    stats: SimStats,
    speed: SpeedTrace,
    memory: MemoryTrace,
    started: Option<Instant>,
    /// Forest node count at the last arena compaction. `step` re-compacts
    /// once the arenas have grown ~50% past it, so splits stay cheap
    /// appends while steady-state traversal converges to the canonical
    /// cache-resident order. Layout only — never affects answers.
    compact_watermark: u64,
}

impl Simulator {
    /// Creates a simulator over `scene`.
    pub fn new(scene: Scene, config: SimConfig) -> Self {
        let generator = PhotonGenerator::new(&scene);
        let forest = BinForest::new(scene.polygon_count(), config.split);
        let compact_watermark = forest.total_nodes();
        Simulator {
            generator,
            forest,
            seed: config.seed,
            split: config.split,
            cursor: 0,
            scene,
            stats: SimStats::default(),
            speed: SpeedTrace::new(),
            memory: MemoryTrace::new(),
            started: None,
            compact_watermark,
        }
    }

    /// The scene being simulated.
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// The bin forest accumulated so far.
    pub fn forest(&self) -> &BinForest {
        &self.forest
    }

    /// Counters so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Speed-vs-time trace (one sample per `run_batch` call).
    pub fn speed_trace(&self) -> &SpeedTrace {
        &self.speed
    }

    /// Memory-vs-photons trace (one sample per `run_batch` call).
    pub fn memory_trace(&self) -> &MemoryTrace {
        &self.memory
    }

    /// Simulates `n` photons (no batch bookkeeping).
    pub fn run_photons(&mut self, n: u64) {
        for _ in 0..n {
            let mut rng = photon_stream(self.seed, self.cursor);
            let out = trace_photon(&self.scene, &self.generator, &mut rng, &mut self.forest);
            self.stats.record(&out);
            self.cursor += 1;
        }
    }

    /// Simulates a batch of `n` photons, recording speed and memory samples
    /// (the paper's per-batch rate trace).
    pub fn run_batch(&mut self, n: u64) {
        let _ = self.step(n);
    }

    /// Finishes the run, producing the answer database.
    pub fn into_answer(self) -> Answer {
        Answer::from_forest(&self.forest, self.stats.emitted)
    }

    /// Borrow-based snapshot of the answer (keeps simulating afterwards).
    pub fn answer_snapshot(&self) -> Answer {
        Answer::from_forest(&self.forest, self.stats.emitted)
    }
}

impl SolverEngine for Simulator {
    fn step(&mut self, batch: u64) -> BatchReport {
        let t0 = *self.started.get_or_insert_with(Instant::now);
        let batch_start = Instant::now();
        self.run_photons(batch);
        // Batch boundary: no cursors outstanding, so the arenas may be
        // re-clustered. Gate on ~50% growth to amortize the rebuild.
        let nodes = self.forest.total_nodes();
        if nodes > self.compact_watermark + self.compact_watermark / 2 {
            self.forest.compact();
            self.compact_watermark = nodes;
        }
        let batch_seconds = batch_start.elapsed().as_secs_f64();
        let elapsed_seconds = t0.elapsed().as_secs_f64();
        self.speed.push_batch(elapsed_seconds, batch, batch_seconds);
        self.memory
            .push(self.stats.emitted, self.forest.memory_bytes());
        BatchReport {
            batch_photons: batch,
            emitted_total: self.stats.emitted,
            leaf_bins: self.forest.total_leaf_bins(),
            batch_seconds,
            trace_seconds: batch_seconds,
            apply_seconds: 0.0,
            elapsed_seconds,
            stats: self.stats,
            footprint: self.forest.footprint(),
        }
    }

    fn snapshot(&self) -> Answer {
        self.answer_snapshot()
    }

    fn stats(&self) -> SimStats {
        self.stats
    }

    fn checkpoint(&self) -> EngineCheckpoint {
        EngineCheckpoint::new(
            self.seed,
            self.cursor,
            self.stats,
            self.split,
            self.forest.clone().into_trees(),
        )
    }

    fn restore(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), RestoreError> {
        checkpoint.compatible_with(self.scene.polygon_count(), self.seed, self.split)?;
        self.forest = checkpoint.forest();
        self.stats = checkpoint.stats();
        self.cursor = checkpoint.cursor();
        self.compact_watermark = self.forest.total_nodes();
        // The discarded run's perf traces and clock go with it — rates
        // reported after a resume describe the resumed solve only.
        self.speed = SpeedTrace::new();
        self.memory = MemoryTrace::new();
        self.started = None;
        Ok(())
    }

    fn backend(&self) -> &'static str {
        "serial"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_geom::{Luminaire, Material, SurfacePatch};
    use photon_math::{Patch, Rgb, Vec3};

    fn tiny_box() -> Scene {
        let g = Rgb::gray(0.6);
        let mk = |o: Vec3, e1: Vec3, e2: Vec3, m: Material| {
            SurfacePatch::new(Patch::from_origin_edges(o, e1, e2), m)
        };
        let patches = vec![
            mk(
                Vec3::ZERO,
                Vec3::X * 2.0,
                Vec3::new(0.0, 0.0, 2.0),
                Material::matte(g),
            ),
            mk(
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::X * 2.0,
                Material::matte(g),
            ),
            mk(
                Vec3::ZERO,
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::X * 2.0,
                Material::matte(g),
            ),
            mk(
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::X * 2.0,
                Vec3::new(0.0, 2.0, 0.0),
                Material::matte(g),
            ),
            mk(
                Vec3::ZERO,
                Vec3::new(0.0, 0.0, 2.0),
                Vec3::new(0.0, 2.0, 0.0),
                Material::matte(g),
            ),
            mk(
                Vec3::new(2.0, 0.0, 0.0),
                Vec3::new(0.0, 2.0, 0.0),
                Vec3::new(0.0, 0.0, 2.0),
                Material::matte(g),
            ),
            // light panel faces down into the room (x edge first).
            mk(
                Vec3::new(0.3, 1.99, 0.3),
                Vec3::new(0.5, 0.0, 0.0),
                Vec3::new(0.0, 0.0, 0.5),
                Material::emitter(Rgb::WHITE),
            ),
        ];
        Scene::new(
            patches,
            vec![Luminaire {
                patch_id: 6,
                power: Rgb::gray(100.0),
                collimation: 1.0,
            }],
        )
    }

    #[test]
    fn stats_conserve_photons() {
        let mut sim = Simulator::new(
            tiny_box(),
            SimConfig {
                seed: 1,
                ..Default::default()
            },
        );
        sim.run_photons(5000);
        let s = sim.stats();
        assert_eq!(s.emitted, 5000);
        assert!(s.is_conserved(), "{s:?}");
        assert!(s.absorbed > s.escaped, "closed box should absorb");
    }

    #[test]
    fn determinism_per_seed() {
        let cfg = SimConfig {
            seed: 42,
            ..Default::default()
        };
        let mut a = Simulator::new(tiny_box(), cfg);
        let mut b = Simulator::new(tiny_box(), cfg);
        a.run_photons(3000);
        b.run_photons(3000);
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.forest().total_leaf_bins(), b.forest().total_leaf_bins());
        assert_eq!(a.forest().total_tallies(), b.forest().total_tallies());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Simulator::new(
            tiny_box(),
            SimConfig {
                seed: 1,
                ..Default::default()
            },
        );
        let mut b = Simulator::new(
            tiny_box(),
            SimConfig {
                seed: 2,
                ..Default::default()
            },
        );
        a.run_photons(3000);
        b.run_photons(3000);
        assert_ne!(a.stats().reflections, b.stats().reflections);
    }

    #[test]
    fn batches_record_traces() {
        let mut sim = Simulator::new(tiny_box(), SimConfig::default());
        for _ in 0..5 {
            sim.run_batch(1000);
        }
        assert_eq!(sim.speed_trace().samples().len(), 5);
        assert_eq!(sim.memory_trace().samples().len(), 5);
        assert_eq!(sim.stats().emitted, 5000);
    }

    #[test]
    fn checkpoint_resume_is_bit_identical_to_uninterrupted() {
        let cfg = SimConfig {
            seed: 77,
            ..Default::default()
        };
        let mut straight = Simulator::new(tiny_box(), cfg);
        straight.run_photons(4_000);
        let mut first = Simulator::new(tiny_box(), cfg);
        first.run_photons(1_500);
        let ck = first.checkpoint();
        assert_eq!(ck.cursor(), 1_500);
        assert_eq!(ck.emitted(), 1_500);
        let mut resumed = Simulator::new(tiny_box(), cfg);
        resumed.restore(&ck).unwrap();
        resumed.run_photons(2_500);
        assert_eq!(resumed.stats(), straight.stats());
        let bytes = |s: &Simulator| {
            let mut buf = Vec::new();
            s.answer_snapshot().write_to(&mut buf).unwrap();
            buf
        };
        assert_eq!(bytes(&resumed), bytes(&straight));
    }

    #[test]
    fn restore_rejects_a_foreign_checkpoint() {
        let mut sim = Simulator::new(
            tiny_box(),
            SimConfig {
                seed: 1,
                ..Default::default()
            },
        );
        sim.run_photons(100);
        let ck = sim.checkpoint();
        let mut other_seed = Simulator::new(
            tiny_box(),
            SimConfig {
                seed: 2,
                ..Default::default()
            },
        );
        assert!(other_seed.restore(&ck).is_err());
        // The failed restore must not have touched the engine.
        assert_eq!(other_seed.stats().emitted, 0);
    }

    #[test]
    fn forest_refines_under_light() {
        // The corner light panel creates a strong spatial gradient on the
        // floor and walls, which the adaptive bins must track.
        let mut sim = Simulator::new(tiny_box(), SimConfig::default());
        sim.run_photons(100_000);
        assert!(
            sim.forest().total_leaf_bins() > 25,
            "{}",
            sim.forest().total_leaf_bins()
        );
    }
}
