//! `PHOTSTRM1`: the length-prefixed streaming wire format.
//!
//! The third member of the codec family (`PHOTANS1` answers, `PHOTCK1`
//! checkpoints): frames that carry a progressive render's tile deltas to
//! off-box subscribers. A connection speaks length-prefixed frames
//! ([`write_frame`] / [`read_frame`]); every frame body opens with the
//! shared magic, a version byte, and a kind tag, then one of:
//!
//! | kind | frame | direction |
//! |------|-------|-----------|
//! | [`KIND_DELTA`] | one epoch's changed tiles ([`encode_delta`]) | server → client |
//! | [`KIND_SUBSCRIBE`] | scene + camera + payload mode ([`SubscribeFrame`]) | client → server |
//! | [`KIND_ERROR`] | a refusal message ([`encode_error`]) | server → client |
//!
//! Delta payloads come in two modes. [`WireMode::Lossless`] ships raw
//! little-endian `f64` pixels — decode is **bit-identical** to the encoded
//! frame, so every equivalence suite built on exact reassembly holds over
//! the wire. [`WireMode::Quantized`] is the opt-in lossy mode: each tile
//! stores per-channel min/max bounds and 16-bit quantized pixels, and the
//! quantized planes of the whole frame are squeezed through an adaptive
//! order-0 range coder. Roundtrip error is bounded by half a quantization
//! step (`(max - min) / 65535 / 2` per channel) and fully deterministic —
//! the same frame always encodes to the same bytes.
//!
//! Decoding validates magic, version, kind, mode, tile bounds, and payload
//! sizes, and rejects truncated input and trailing garbage — same
//! discipline as the sibling codecs, because stream bytes arrive from a
//! network socket, the least trusted input the system reads.

use crate::answer::{bad_data, read_f64, read_u32, read_u64, PREALLOC_CAP};
use crate::view::{Camera, Tile};
use photon_math::{Rgb, Vec3};
use std::io::{self, Cursor, Read, Write};

/// Magic bytes opening every frame body (version follows as one byte).
pub const MAGIC: &[u8; 8] = b"PHOTSTRM";

/// Format version written after the magic; bump on layout changes.
pub const VERSION: u8 = 1;

/// Frame kind: one epoch's tile delta (server → client).
pub const KIND_DELTA: u8 = 0;

/// Frame kind: a subscribe request (client → server).
pub const KIND_SUBSCRIBE: u8 = 1;

/// Frame kind: a refusal message (server → client, then close).
pub const KIND_ERROR: u8 = 2;

/// Hard cap on a length-prefixed frame (256 MiB): large enough for any
/// real frame, small enough that a corrupt length prefix cannot ask the
/// reader to buffer gigabytes.
pub const MAX_FRAME_BYTES: u32 = 1 << 28;

/// Delta payload encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireMode {
    /// Raw `f64` pixels — decode reassembles bit-identically.
    Lossless,
    /// Per-tile min/max quantization to `u16` + adaptive range coding.
    /// Lossy but bounded and deterministic.
    Quantized,
}

impl WireMode {
    fn tag(self) -> u8 {
        match self {
            WireMode::Lossless => 0,
            WireMode::Quantized => 1,
        }
    }

    fn from_tag(tag: u8) -> io::Result<Self> {
        match tag {
            0 => Ok(WireMode::Lossless),
            1 => Ok(WireMode::Quantized),
            _ => Err(bad_data("unknown wire mode")),
        }
    }

    /// Stable kebab-case name (bench and metric label value).
    pub fn name(self) -> &'static str {
        match self {
            WireMode::Lossless => "lossless",
            WireMode::Quantized => "quantized",
        }
    }
}

/// A decoded delta frame: one epoch's changed tiles, ready to blit.
#[derive(Clone, Debug)]
pub struct WireDelta {
    /// Store epoch this delta advances the subscriber to.
    pub epoch: u64,
    /// Full frame width in pixels.
    pub width: usize,
    /// Full frame height in pixels.
    pub height: usize,
    /// Payload mode the frame was encoded with.
    pub mode: WireMode,
    /// Changed tiles with their new pixels (dequantized in lossy mode).
    pub tiles: Vec<(Tile, Vec<Rgb>)>,
}

/// A decoded subscribe request: which scene, through which camera, in
/// which payload mode.
#[derive(Clone, Debug)]
pub struct SubscribeFrame {
    /// Raw scene id in the server's answer store.
    pub scene: u32,
    /// Delta payload mode the client wants.
    pub mode: WireMode,
    /// Viewpoint to stream.
    pub camera: Camera,
}

/// Any frame a `PHOTSTRM1` peer can receive.
#[derive(Clone, Debug)]
pub enum WireFrame {
    /// One epoch's tile delta.
    Delta(WireDelta),
    /// A subscribe request.
    Subscribe(SubscribeFrame),
    /// A refusal message.
    Error(String),
}

// ---------------------------------------------------------------------------
// Length-prefixed framing
// ---------------------------------------------------------------------------

/// Writes one length-prefixed frame: `u32` payload length, then the payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES as usize,
        "frame exceeds MAX_FRAME_BYTES"
    );
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one length-prefixed frame, rejecting lengths over
/// [`MAX_FRAME_BYTES`]. An EOF before the length prefix surfaces as
/// `UnexpectedEof` — a cleanly closed peer.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_FRAME_BYTES {
        return Err(bad_data("frame length over MAX_FRAME_BYTES"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

fn write_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(kind);
}

fn read_header(cur: &mut Cursor<&[u8]>) -> io::Result<u8> {
    let mut magic = [0u8; 8];
    cur.read_exact(&mut magic)
        .map_err(|_| bad_data("frame shorter than the PHOTSTRM header"))?;
    if &magic != MAGIC {
        return Err(bad_data("not a PHOTSTRM frame"));
    }
    let mut rest = [0u8; 2];
    cur.read_exact(&mut rest)
        .map_err(|_| bad_data("frame shorter than the PHOTSTRM header"))?;
    if rest[0] != VERSION {
        return Err(bad_data("unsupported PHOTSTRM version"));
    }
    Ok(rest[1])
}

/// Decodes any frame body, dispatching on its kind tag.
pub fn decode_frame(bytes: &[u8]) -> io::Result<WireFrame> {
    let mut cur = Cursor::new(bytes);
    let kind = read_header(&mut cur)?;
    let frame = match kind {
        KIND_DELTA => WireFrame::Delta(decode_delta_body(&mut cur)?),
        KIND_SUBSCRIBE => WireFrame::Subscribe(decode_subscribe_body(&mut cur)?),
        KIND_ERROR => WireFrame::Error(decode_error_body(&mut cur)?),
        _ => return Err(bad_data("unknown PHOTSTRM frame kind")),
    };
    if cur.position() != bytes.len() as u64 {
        return Err(bad_data("trailing garbage after PHOTSTRM frame"));
    }
    Ok(frame)
}

// ---------------------------------------------------------------------------
// Delta frames
// ---------------------------------------------------------------------------

/// Encodes one epoch's tile delta as a `PHOTSTRM1` frame body.
///
/// Layout: header, mode (`u8`), epoch (`u64`), width/height (`u32`), tile
/// count (`u32`), the tile rectangles (4 × `u32` each), then the pixel
/// payload — raw `f64`s in lossless mode; per-tile channel bounds plus one
/// range-coded block of `u16` planes in quantized mode.
///
/// # Panics
/// Panics if a tile lies outside `width × height` or a buffer's length
/// does not match its tile — deltas come from the renderer's own diff, so
/// a mismatch is a caller bug, not a data error.
pub fn encode_delta(
    epoch: u64,
    width: usize,
    height: usize,
    tiles: &[(Tile, Vec<Rgb>)],
    mode: WireMode,
) -> Vec<u8> {
    let pixels: usize = tiles.iter().map(|(t, _)| t.pixel_count()).sum();
    let mut out = Vec::with_capacity(64 + tiles.len() * 16 + pixels * 24);
    write_header(&mut out, KIND_DELTA);
    out.push(mode.tag());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(width as u32).to_le_bytes());
    out.extend_from_slice(&(height as u32).to_le_bytes());
    out.extend_from_slice(&(tiles.len() as u32).to_le_bytes());
    for (tile, buf) in tiles {
        assert!(
            tile.x0 < tile.x1 && tile.y0 < tile.y1 && tile.x1 <= width && tile.y1 <= height,
            "tile outside the frame"
        );
        assert_eq!(buf.len(), tile.pixel_count(), "tile buffer size mismatch");
        for v in [tile.x0, tile.y0, tile.x1, tile.y1] {
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
    }
    match mode {
        WireMode::Lossless => {
            for (_, buf) in tiles {
                for px in buf {
                    for c in [px.r, px.g, px.b] {
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
        }
        WireMode::Quantized => {
            let mut planes = Vec::with_capacity(pixels * 6);
            for (_, buf) in tiles {
                let bounds = channel_bounds(buf);
                for (lo, hi) in bounds {
                    out.extend_from_slice(&lo.to_le_bytes());
                    out.extend_from_slice(&hi.to_le_bytes());
                }
                for px in buf {
                    for (c, (lo, hi)) in [px.r, px.g, px.b].into_iter().zip(bounds) {
                        planes.extend_from_slice(&quantize(c, lo, hi).to_le_bytes());
                    }
                }
            }
            let coded = entropy_encode(&planes);
            out.extend_from_slice(&(planes.len() as u32).to_le_bytes());
            out.extend_from_slice(&(coded.len() as u32).to_le_bytes());
            out.extend_from_slice(&coded);
        }
    }
    out
}

fn decode_delta_body(cur: &mut Cursor<&[u8]>) -> io::Result<WireDelta> {
    let mut tag = [0u8; 1];
    cur.read_exact(&mut tag)?;
    let mode = WireMode::from_tag(tag[0])?;
    let epoch = read_u64(cur)?;
    let width = read_u32(cur)? as usize;
    let height = read_u32(cur)? as usize;
    if width == 0 || height == 0 {
        return Err(bad_data("zero-sized frame"));
    }
    let ntiles = read_u32(cur)? as usize;
    let mut rects = Vec::with_capacity(ntiles.min(PREALLOC_CAP));
    for _ in 0..ntiles {
        let tile = Tile {
            x0: read_u32(cur)? as usize,
            y0: read_u32(cur)? as usize,
            x1: read_u32(cur)? as usize,
            y1: read_u32(cur)? as usize,
        };
        if tile.x0 >= tile.x1 || tile.y0 >= tile.y1 || tile.x1 > width || tile.y1 > height {
            return Err(bad_data("tile outside the frame"));
        }
        rects.push(tile);
    }
    let mut tiles = Vec::with_capacity(rects.len());
    match mode {
        WireMode::Lossless => {
            for tile in rects {
                let n = tile.pixel_count();
                let mut buf = Vec::with_capacity(n.min(PREALLOC_CAP));
                for _ in 0..n {
                    buf.push(Rgb::new(read_f64(cur)?, read_f64(cur)?, read_f64(cur)?));
                }
                tiles.push((tile, buf));
            }
        }
        WireMode::Quantized => {
            let mut bounds = Vec::with_capacity(rects.len());
            // Frame layout interleaves each tile's bounds ahead of the
            // shared plane block, so bounds all parse first.
            for _ in 0..rects.len() {
                let mut b = [(0.0, 0.0); 3];
                for ch in &mut b {
                    *ch = (read_f64(cur)?, read_f64(cur)?);
                }
                bounds.push(b);
            }
            let raw_len = read_u32(cur)? as usize;
            let coded_len = read_u32(cur)? as usize;
            let expect: usize = rects.iter().map(|t| t.pixel_count() * 6).sum();
            if raw_len != expect {
                return Err(bad_data("quantized plane length mismatch"));
            }
            let mut coded = vec![0u8; coded_len];
            cur.read_exact(&mut coded)?;
            let planes = entropy_decode(&coded, raw_len)?;
            let mut off = 0;
            for (tile, b) in rects.into_iter().zip(bounds) {
                let mut buf = Vec::with_capacity(tile.pixel_count().min(PREALLOC_CAP));
                for _ in 0..tile.pixel_count() {
                    let mut ch = [0.0; 3];
                    for (c, (lo, hi)) in ch.iter_mut().zip(b) {
                        let q = u16::from_le_bytes([planes[off], planes[off + 1]]);
                        off += 2;
                        *c = dequantize(q, lo, hi);
                    }
                    buf.push(Rgb::new(ch[0], ch[1], ch[2]));
                }
                tiles.push((tile, buf));
            }
        }
    }
    Ok(WireDelta {
        epoch,
        width,
        height,
        mode,
        tiles,
    })
}

// ---------------------------------------------------------------------------
// Subscribe and error frames
// ---------------------------------------------------------------------------

/// Encodes a subscribe request as a `PHOTSTRM1` frame body.
pub fn encode_subscribe(req: &SubscribeFrame) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    write_header(&mut out, KIND_SUBSCRIBE);
    out.extend_from_slice(&req.scene.to_le_bytes());
    out.push(req.mode.tag());
    let cam = &req.camera;
    for v in [cam.eye, cam.target, cam.up] {
        for c in [v.x, v.y, v.z] {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }
    out.extend_from_slice(&cam.vfov_deg.to_le_bytes());
    out.extend_from_slice(&(cam.width as u32).to_le_bytes());
    out.extend_from_slice(&(cam.height as u32).to_le_bytes());
    out
}

fn decode_subscribe_body(cur: &mut Cursor<&[u8]>) -> io::Result<SubscribeFrame> {
    let scene = read_u32(cur)?;
    let mut tag = [0u8; 1];
    cur.read_exact(&mut tag)?;
    let mode = WireMode::from_tag(tag[0])?;
    let mut vecs = [Vec3::ZERO; 3];
    for v in &mut vecs {
        *v = Vec3::new(read_f64(cur)?, read_f64(cur)?, read_f64(cur)?);
    }
    let vfov_deg = read_f64(cur)?;
    let width = read_u32(cur)? as usize;
    let height = read_u32(cur)? as usize;
    if width == 0 || height == 0 {
        return Err(bad_data("zero-sized camera"));
    }
    Ok(SubscribeFrame {
        scene,
        mode,
        camera: Camera {
            eye: vecs[0],
            target: vecs[1],
            up: vecs[2],
            vfov_deg,
            width,
            height,
        },
    })
}

/// Encodes a refusal message as a `PHOTSTRM1` frame body.
pub fn encode_error(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + msg.len());
    write_header(&mut out, KIND_ERROR);
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
    out
}

fn decode_error_body(cur: &mut Cursor<&[u8]>) -> io::Result<String> {
    let len = read_u32(cur)? as usize;
    let mut bytes = vec![0u8; len.min(MAX_FRAME_BYTES as usize)];
    cur.read_exact(&mut bytes)?;
    String::from_utf8(bytes).map_err(|_| bad_data("error message is not UTF-8"))
}

// ---------------------------------------------------------------------------
// Quantization
// ---------------------------------------------------------------------------

/// Per-channel `(min, max)` over a tile's pixels.
fn channel_bounds(buf: &[Rgb]) -> [(f64, f64); 3] {
    let mut b = [(f64::INFINITY, f64::NEG_INFINITY); 3];
    for px in buf {
        for (ch, c) in b.iter_mut().zip([px.r, px.g, px.b]) {
            ch.0 = ch.0.min(c);
            ch.1 = ch.1.max(c);
        }
    }
    if buf.is_empty() {
        return [(0.0, 0.0); 3];
    }
    b
}

fn quantize(v: f64, lo: f64, hi: f64) -> u16 {
    if hi <= lo {
        return 0;
    }
    (((v - lo) / (hi - lo) * 65535.0).round()).clamp(0.0, 65535.0) as u16
}

fn dequantize(q: u16, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return lo;
    }
    lo + q as f64 / 65535.0 * (hi - lo)
}

/// The worst-case roundtrip error of one channel quantized over `[lo, hi]`:
/// half a quantization step.
pub fn quantization_error_bound(lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        0.0
    } else {
        (hi - lo) / 65535.0 * 0.5
    }
}

// ---------------------------------------------------------------------------
// Adaptive order-0 range coder (carryless, Subbotin style)
// ---------------------------------------------------------------------------

const RC_TOP: u32 = 1 << 24;
const RC_BOT: u32 = 1 << 16;

/// Adaptive order-0 byte model: per-symbol frequencies, incremented on
/// every coded byte and halved when the total nears the coder's precision
/// limit. Encoder and decoder evolve the model identically, so no table
/// ships on the wire.
struct ByteModel {
    freq: [u32; 256],
    total: u32,
}

impl ByteModel {
    fn new() -> Self {
        ByteModel {
            freq: [1; 256],
            total: 256,
        }
    }

    /// `(cumulative frequency below sym, sym's frequency)`.
    fn span(&self, sym: u8) -> (u32, u32) {
        let cum = self.freq[..sym as usize].iter().sum();
        (cum, self.freq[sym as usize])
    }

    /// The symbol whose span covers cumulative value `target`.
    fn symbol_at(&self, target: u32) -> (u8, u32, u32) {
        let mut cum = 0u32;
        for (sym, &f) in self.freq.iter().enumerate() {
            if target < cum + f {
                return (sym as u8, cum, f);
            }
            cum += f;
        }
        (255, self.total - self.freq[255], self.freq[255])
    }

    fn update(&mut self, sym: u8) {
        self.freq[sym as usize] += 32;
        self.total += 32;
        if self.total >= RC_BOT {
            self.total = 0;
            for f in &mut self.freq {
                *f -= *f >> 1; // halve, floor 1
                self.total += *f;
            }
        }
    }
}

/// Compresses `bytes` with the adaptive model. Deterministic: equal input,
/// equal output.
pub fn entropy_encode(bytes: &[u8]) -> Vec<u8> {
    let mut model = ByteModel::new();
    let mut low: u32 = 0;
    let mut range: u32 = u32::MAX;
    let mut out = Vec::with_capacity(bytes.len() / 2 + 16);
    for &sym in bytes {
        let (cum, freq) = model.span(sym);
        let r = range / model.total;
        low = low.wrapping_add(r.wrapping_mul(cum));
        range = r * freq;
        loop {
            if (low ^ low.wrapping_add(range)) < RC_TOP {
                // Top byte settled.
            } else if range < RC_BOT {
                // Underflow: pin the range to the next BOT boundary.
                range = low.wrapping_neg() & (RC_BOT - 1);
            } else {
                break;
            }
            out.push((low >> 24) as u8);
            low <<= 8;
            range <<= 8;
        }
        model.update(sym);
    }
    for _ in 0..4 {
        out.push((low >> 24) as u8);
        low <<= 8;
    }
    out
}

/// Decompresses an [`entropy_encode`] stream back into `expect_len` bytes.
pub fn entropy_decode(coded: &[u8], expect_len: usize) -> io::Result<Vec<u8>> {
    if expect_len > 0 && coded.len() < 4 {
        return Err(bad_data("range-coded block truncated"));
    }
    let mut model = ByteModel::new();
    let mut low: u32 = 0;
    let mut range: u32 = u32::MAX;
    let mut pos = 0usize;
    let next_byte = |pos: &mut usize| -> u8 {
        let b = coded.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b
    };
    let mut code: u32 = 0;
    for _ in 0..4 {
        code = (code << 8) | next_byte(&mut pos) as u32;
    }
    let mut out = Vec::with_capacity(expect_len.min(PREALLOC_CAP * 16));
    for _ in 0..expect_len {
        let r = range / model.total;
        let target = (code.wrapping_sub(low) / r).min(model.total - 1);
        let (sym, cum, freq) = model.symbol_at(target);
        low = low.wrapping_add(r.wrapping_mul(cum));
        range = r * freq;
        loop {
            if (low ^ low.wrapping_add(range)) < RC_TOP {
            } else if range < RC_BOT {
                range = low.wrapping_neg() & (RC_BOT - 1);
            } else {
                break;
            }
            code = (code << 8) | next_byte(&mut pos) as u32;
            low <<= 8;
            range <<= 8;
        }
        model.update(sym);
        out.push(sym);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::tiles;

    fn ramp_pixels(tile: Tile) -> Vec<Rgb> {
        (0..tile.pixel_count())
            .map(|i| {
                let t = i as f64 / tile.pixel_count().max(1) as f64;
                Rgb::new(t, 1.0 - t, 0.25 + t * 0.5)
            })
            .collect()
    }

    fn sample_tiles(width: usize, height: usize) -> Vec<(Tile, Vec<Rgb>)> {
        tiles(width, height, 8)
            .into_iter()
            .step_by(2)
            .map(|t| (t, ramp_pixels(t)))
            .collect()
    }

    #[test]
    fn entropy_coder_round_trips() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0],
            vec![255; 10_000],
            (0..=255u8).cycle().take(5_000).collect(),
            (0..20_000u32)
                .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
                .collect(),
            b"aaaaabbbbbcccccaaaaa".to_vec(),
        ];
        for raw in cases {
            let coded = entropy_encode(&raw);
            let back = entropy_decode(&coded, raw.len()).unwrap();
            assert_eq!(back, raw, "roundtrip failed for {} bytes", raw.len());
            assert_eq!(
                coded,
                entropy_encode(&raw),
                "encoding must be deterministic"
            );
        }
    }

    #[test]
    fn entropy_coder_compresses_skewed_input() {
        let raw = vec![7u8; 100_000];
        let coded = entropy_encode(&raw);
        assert!(
            coded.len() < raw.len() / 20,
            "constant input barely compressed: {} bytes",
            coded.len()
        );
    }

    #[test]
    fn lossless_delta_round_trips_bit_identically() {
        let tiles = sample_tiles(40, 24);
        let body = encode_delta(9, 40, 24, &tiles, WireMode::Lossless);
        let WireFrame::Delta(delta) = decode_frame(&body).unwrap() else {
            panic!("wrong frame kind");
        };
        assert_eq!(delta.epoch, 9);
        assert_eq!((delta.width, delta.height), (40, 24));
        assert_eq!(delta.mode, WireMode::Lossless);
        assert_eq!(delta.tiles.len(), tiles.len());
        for ((ta, ba), (tb, bb)) in delta.tiles.iter().zip(&tiles) {
            assert_eq!(ta, tb);
            assert_eq!(ba, bb, "lossless pixels must be bit-identical");
        }
    }

    #[test]
    fn quantized_delta_error_is_bounded_and_deterministic() {
        let tiles = sample_tiles(40, 24);
        let body = encode_delta(3, 40, 24, &tiles, WireMode::Quantized);
        assert_eq!(
            body,
            encode_delta(3, 40, 24, &tiles, WireMode::Quantized),
            "quantized encoding must be deterministic"
        );
        let WireFrame::Delta(delta) = decode_frame(&body).unwrap() else {
            panic!("wrong frame kind");
        };
        for ((_, orig), (_, back)) in tiles.iter().zip(&delta.tiles) {
            let bounds = channel_bounds(orig);
            for (o, b) in orig.iter().zip(back) {
                for ((oc, bc), (lo, hi)) in
                    [(o.r, b.r), (o.g, b.g), (o.b, b.b)].into_iter().zip(bounds)
                {
                    let tol = quantization_error_bound(lo, hi) * (1.0 + 1e-9);
                    assert!(
                        (oc - bc).abs() <= tol,
                        "channel error {} over bound {}",
                        (oc - bc).abs(),
                        tol
                    );
                }
            }
        }
        // Decoding the decoded pixels' re-encode is a fixed point: the
        // quantized values themselves roundtrip exactly.
        let again = encode_delta(3, 40, 24, &delta.tiles, WireMode::Quantized);
        let WireFrame::Delta(twice) = decode_frame(&again).unwrap() else {
            panic!("wrong frame kind");
        };
        for ((_, a), (_, b)) in delta.tiles.iter().zip(&twice.tiles) {
            assert_eq!(a, b, "quantized values must be a roundtrip fixed point");
        }
    }

    #[test]
    fn empty_delta_round_trips() {
        for mode in [WireMode::Lossless, WireMode::Quantized] {
            let body = encode_delta(5, 16, 16, &[], mode);
            let WireFrame::Delta(delta) = decode_frame(&body).unwrap() else {
                panic!("wrong frame kind");
            };
            assert_eq!(delta.epoch, 5);
            assert!(delta.tiles.is_empty());
        }
    }

    #[test]
    fn subscribe_round_trips() {
        let req = SubscribeFrame {
            scene: 42,
            mode: WireMode::Quantized,
            camera: Camera {
                eye: Vec3::new(1.0, 2.5, -4.0),
                target: Vec3::new(0.0, 0.5, 0.0),
                up: Vec3::Y,
                vfov_deg: 50.0,
                width: 96,
                height: 72,
            },
        };
        let body = encode_subscribe(&req);
        let WireFrame::Subscribe(back) = decode_frame(&body).unwrap() else {
            panic!("wrong frame kind");
        };
        assert_eq!(back.scene, 42);
        assert_eq!(back.mode, WireMode::Quantized);
        assert_eq!(back.camera.eye, req.camera.eye);
        assert_eq!(back.camera.target, req.camera.target);
        assert_eq!(back.camera.up, req.camera.up);
        assert_eq!(back.camera.vfov_deg, req.camera.vfov_deg);
        assert_eq!(
            (back.camera.width, back.camera.height),
            (req.camera.width, req.camera.height)
        );
    }

    #[test]
    fn error_frame_round_trips() {
        let body = encode_error("scene 7 not registered");
        let WireFrame::Error(msg) = decode_frame(&body).unwrap() else {
            panic!("wrong frame kind");
        };
        assert_eq!(msg, "scene 7 not registered");
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let tiles = sample_tiles(16, 16);
        let good = encode_delta(1, 16, 16, &tiles, WireMode::Lossless);
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(decode_frame(&bad).is_err());
        // Bad version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(decode_frame(&bad).is_err());
        // Unknown kind.
        let mut bad = good.clone();
        bad[9] = 77;
        assert!(decode_frame(&bad).is_err());
        // Truncation.
        assert!(decode_frame(&good[..good.len() - 1]).is_err());
        // Trailing garbage.
        let mut bad = good.clone();
        bad.push(0);
        assert!(decode_frame(&bad).is_err());
        // Tile outside the claimed frame: shrink the declared width.
        let mut bad = good.clone();
        bad[19..23].copy_from_slice(&4u32.to_le_bytes());
        assert!(decode_frame(&bad).is_err());
    }

    #[test]
    fn framing_round_trips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cur = Cursor::new(buf.as_slice());
        assert_eq!(read_frame(&mut cur).unwrap(), b"hello");
        assert_eq!(read_frame(&mut cur).unwrap(), b"");
        assert!(
            read_frame(&mut cur).is_err(),
            "EOF must surface as an error"
        );
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        assert!(read_frame(&mut Cursor::new(huge.as_slice())).is_err());
    }
}
