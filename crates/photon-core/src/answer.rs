//! Answer files: the stored global-illumination solution.
//!
//! "Photon determines all the light interactions and stores them in a
//! database. Once the simulation is finished, all that remains is to
//! determine what is displayed" (ch. 4). The [`Answer`] owns a snapshot of
//! every patch's bin tree plus the emitted-photon normalization; the viewer
//! renders any number of viewpoints from it without re-simulating
//! (Fig 4.10).
//!
//! The on-disk format is a small hand-rolled binary codec (magic +
//! little-endian fields), keeping the workspace free of serialization
//! dependencies.

use crate::forest::BinForest;
use photon_geom::Scene;
use photon_hist::{BinPoint, BinTree, ExportNode, LeafStats, SplitConfig};
use photon_math::{CylDir, Onb, Rgb, Vec3};
use std::io::{self, Read, Write};

/// Magic bytes of the answer-file format.
const MAGIC: &[u8; 8] = b"PHOTANS1";

/// A stored global-illumination solution.
#[derive(Clone, Debug)]
pub struct Answer {
    trees: Vec<BinTree>,
    emitted: u64,
}

impl Answer {
    /// Snapshots a forest at `emitted` photons. The snapshot trees are deep
    /// copies in the canonical subtree-clustered arena order, so render-time
    /// lookups against the answer walk memory nearly sequentially.
    pub fn from_forest(forest: &BinForest, emitted: u64) -> Self {
        let trees = forest.iter().map(|(_, t)| t.compacted_clone()).collect();
        Answer { trees, emitted }
    }

    /// An answer with `patch_count` unrefined trees and zero photons — the
    /// placeholder a progressive solve publishes over (renders black).
    pub fn empty(patch_count: usize) -> Self {
        Answer {
            trees: (0..patch_count)
                .map(|_| BinTree::new(SplitConfig::default()))
                .collect(),
            emitted: 0,
        }
    }

    /// Photons the solution was built from.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Number of patches.
    pub fn patch_count(&self) -> usize {
        self.trees.len()
    }

    /// Tree of one patch.
    pub fn tree(&self, patch_id: u32) -> &BinTree {
        &self.trees[patch_id as usize]
    }

    /// Total leaf bins — Table 5.1's "view-dependent polygons".
    pub fn total_leaf_bins(&self) -> u64 {
        self.trees.iter().map(|t| t.leaf_count() as u64).sum()
    }

    /// Radiance leaving patch `patch_id` at bilinear `(s, t)` in the world
    /// direction `dir` (which must point away from the surface).
    ///
    /// Estimator: a leaf bin holding tallied energy `E` over area fraction
    /// `f_A` of a patch with area `A`, and Lambertian solid-angle fraction
    /// `f_Ω`, estimates
    /// `L = (E / N) / (A · f_A · π · f_Ω)`
    /// (the `π` is the full hemisphere's cosine-weighted measure).
    pub fn radiance(&self, scene: &Scene, patch_id: u32, s: f64, t: f64, dir: Vec3) -> Rgb {
        let sp = scene.patch(patch_id);
        // Choose the frame of the side `dir` leaves from.
        let frame = if dir.dot(sp.frame.w) >= 0.0 {
            sp.frame
        } else {
            Onb {
                u: sp.frame.u,
                v: -sp.frame.v,
                w: -sp.frame.w,
            }
        };
        let cyl = CylDir::from_world(dir.normalized(), &frame);
        let point = BinPoint::new(s, t, cyl.theta, cyl.r_sq);
        let (stats, range) = self.trees[patch_id as usize].lookup(&point);
        self.leaf_radiance(
            stats,
            range.area_fraction(),
            range.solid_angle_fraction(),
            sp.area,
        )
    }

    /// Radiance of a known leaf (shared by `radiance` and the mesh export).
    fn leaf_radiance(
        &self,
        stats: &LeafStats,
        area_fraction: f64,
        solid_angle_fraction: f64,
        patch_area: f64,
    ) -> Rgb {
        if self.emitted == 0 || stats.n_total == 0 {
            return Rgb::BLACK;
        }
        let denom = self.emitted as f64
            * patch_area.max(1e-12)
            * area_fraction.max(1e-12)
            * std::f64::consts::PI
            * solid_angle_fraction.max(1e-12);
        stats.rgb / denom
    }

    /// Mean radiance over a whole patch (all directions) — a cheap exposure
    /// reference for the viewer.
    pub fn mean_patch_radiance(&self, scene: &Scene, patch_id: u32) -> Rgb {
        let sp = scene.patch(patch_id);
        let tree = &self.trees[patch_id as usize];
        if self.emitted == 0 {
            return Rgb::BLACK;
        }
        let mut total = Rgb::BLACK;
        tree.for_each_leaf(|_, stats| total += stats.rgb);
        total / (self.emitted as f64 * sp.area.max(1e-12) * std::f64::consts::PI)
    }

    /// Writes the binary answer file.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        w.write_all(&(self.trees.len() as u32).to_le_bytes())?;
        w.write_all(&self.emitted.to_le_bytes())?;
        for tree in &self.trees {
            write_tree(w, tree)?;
        }
        Ok(())
    }

    /// Reads a binary answer file written by [`Answer::write_to`].
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<Answer> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad_data("not a Photon answer file"));
        }
        let npatches = read_u32(r)? as usize;
        let emitted = read_u64(r)?;
        let mut trees = Vec::with_capacity(npatches.min(PREALLOC_CAP));
        for _ in 0..npatches {
            trees.push(read_tree(r, SplitConfig::default())?);
        }
        Ok(Answer { trees, emitted })
    }
}

/// An `InvalidData` error (shared by the `PHOTANS1` and `PHOTCK1` codecs).
pub(crate) fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Cap on `Vec::with_capacity` for counts read from untrusted bytes: big
/// enough to never reallocate on real files' tree blocks, small enough
/// that a corrupt count cannot abort the process on allocation.
pub(crate) const PREALLOC_CAP: usize = 1 << 16;

/// Exact encoded size of one tree under [`write_tree`], in bytes.
pub(crate) fn tree_encoded_size(tree: &BinTree) -> u64 {
    // node count (4) + per node: tag (1) + leaf payload (52) or
    // internal payload (9).
    let nodes = tree.node_count() as u64;
    let leaves = tree.leaf_count() as u64;
    let internals = nodes - leaves;
    4 + leaves * 53 + internals * 10
}

/// Writes one tree as `node count (u32) + nodes in canonical order`, the
/// shared tree block of the `PHOTANS1` and `PHOTCK1` codecs. The encoding
/// captures the *complete* node state — including each leaf's speculative
/// split statistics (`stat_n`, per-axis `left` counts) — so a decoded tree
/// continues tallying and splitting exactly like the original. The node
/// order is [`BinTree::export_nodes`]'s canonical subtree-clustered order, a
/// pure function of the logical tree: the same solve state encodes to the
/// same bytes no matter how its arenas grew or compacted.
pub(crate) fn write_tree<W: Write>(w: &mut W, tree: &BinTree) -> io::Result<()> {
    let nodes = tree.export_nodes();
    w.write_all(&(nodes.len() as u32).to_le_bytes())?;
    for n in nodes {
        match n {
            ExportNode::Leaf(s) => {
                w.write_all(&[0u8])?;
                w.write_all(&s.n_total.to_le_bytes())?;
                for c in [s.rgb.r, s.rgb.g, s.rgb.b] {
                    w.write_all(&c.to_le_bytes())?;
                }
                w.write_all(&s.stat_n.to_le_bytes())?;
                for l in s.left {
                    w.write_all(&l.to_le_bytes())?;
                }
            }
            ExportNode::Internal { axis, children } => {
                w.write_all(&[1u8])?;
                w.write_all(&[axis as u8])?;
                w.write_all(&children[0].to_le_bytes())?;
                w.write_all(&children[1].to_le_bytes())?;
            }
        }
    }
    Ok(())
}

/// Reads one tree block written by [`write_tree`], validating tags, axes,
/// and the node graph.
pub(crate) fn read_tree<R: Read>(r: &mut R, config: SplitConfig) -> io::Result<BinTree> {
    let nnodes = read_u32(r)? as usize;
    if nnodes == 0 {
        return Err(bad_data("empty tree"));
    }
    // The count is untrusted until the nodes actually parse: clamp the
    // pre-allocation so a corrupt header cannot request gigabytes and
    // abort — a truncated stream fails in `read_exact` instead.
    let mut nodes = Vec::with_capacity(nnodes.min(PREALLOC_CAP));
    for _ in 0..nnodes {
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        match tag[0] {
            0 => {
                let n_total = read_u64(r)?;
                let rgb = Rgb::new(read_f64(r)?, read_f64(r)?, read_f64(r)?);
                let stat_n = read_u32(r)?;
                let left = [read_u32(r)?, read_u32(r)?, read_u32(r)?, read_u32(r)?];
                nodes.push(ExportNode::Leaf(LeafStats {
                    n_total,
                    rgb,
                    stat_n,
                    left,
                }));
            }
            1 => {
                let mut ax = [0u8; 1];
                r.read_exact(&mut ax)?;
                if ax[0] > 3 {
                    return Err(bad_data("bad axis"));
                }
                let axis = photon_hist::Axis::from_index(ax[0] as usize);
                let children = [read_u32(r)?, read_u32(r)?];
                nodes.push(ExportNode::Internal { axis, children });
            }
            _ => return Err(bad_data("bad node tag")),
        }
    }
    BinTree::from_export(nodes, config).ok_or_else(|| bad_data("malformed tree"))
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_hist::SplitConfig;
    use photon_rng::{Lcg48, PhotonRng};
    use std::f64::consts::TAU;

    fn sample_forest() -> BinForest {
        let mut f = BinForest::new(3, SplitConfig::default());
        let mut rng = Lcg48::new(9);
        for _ in 0..30_000 {
            let pid = rng.index(3) as u32;
            let p = BinPoint::new(
                rng.next_f64().powi(2),
                rng.next_f64(),
                rng.next_f64() * TAU,
                rng.next_f64(),
            );
            f.tally(pid, &p, Rgb::new(1.0, 0.5, 0.25));
        }
        f
    }

    #[test]
    fn codec_round_trip_preserves_everything() {
        let forest = sample_forest();
        let answer = Answer::from_forest(&forest, 30_000);
        let mut buf = Vec::new();
        answer.write_to(&mut buf).unwrap();
        let back = Answer::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.emitted(), answer.emitted());
        assert_eq!(back.patch_count(), answer.patch_count());
        assert_eq!(back.total_leaf_bins(), answer.total_leaf_bins());
        // Identical lookups everywhere.
        let mut rng = Lcg48::new(10);
        for _ in 0..200 {
            let p = BinPoint::new(
                rng.next_f64(),
                rng.next_f64(),
                rng.next_f64() * TAU,
                rng.next_f64(),
            );
            for pid in 0..3u32 {
                let (a, ra) = answer.tree(pid).lookup(&p);
                let (b, rb) = back.tree(pid).lookup(&p);
                assert_eq!(a.n_total, b.n_total);
                assert_eq!(ra, rb);
                assert_eq!(a.rgb, b.rgb);
            }
        }
    }

    #[test]
    fn rejects_garbage() {
        let garbage = b"NOTMAGIC????????";
        assert!(Answer::read_from(&mut garbage.as_slice()).is_err());
        let empty: &[u8] = &[];
        assert!(Answer::read_from(&mut &empty[..]).is_err());
    }

    #[test]
    fn truncated_file_errors_cleanly() {
        let forest = sample_forest();
        let answer = Answer::from_forest(&forest, 30_000);
        let mut buf = Vec::new();
        answer.write_to(&mut buf).unwrap();
        let cut = &buf[..buf.len() / 2];
        assert!(Answer::read_from(&mut &cut[..]).is_err());
    }

    #[test]
    fn empty_answer_is_black() {
        let f = BinForest::new(1, SplitConfig::default());
        let a = Answer::from_forest(&f, 0);
        // Radiance of an empty solution is black everywhere (no div by 0).
        assert_eq!(a.total_leaf_bins(), 1);
    }
}
