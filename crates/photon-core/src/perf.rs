//! Performance traces: speed-vs-time and memory-vs-photons.
//!
//! The dissertation presents "the full speedup picture as a function of
//! execution time" (ch. 5): a run is divided into batches; after each batch
//! the instantaneous rate (photons/second) is plotted against elapsed time,
//! one curve per processor count, with speedup read off against the best
//! *serial* version. [`SpeedTrace`] records exactly those points; the bench
//! binaries print them as CSV series for every speedup figure (5.6–5.15).
//!
//! [`MemoryTrace`] records bin-forest bytes against photons simulated
//! (Fig 5.4).
//!
//! A [`SpeedTrace`] is bounded: past [`SPEED_TRACE_CAP`] samples it
//! coalesces adjacent pairs, halving its resolution but never its span, so
//! a week-long solve cannot grow it without limit. `total_photons` stays
//! exact through coalescing.

/// One batch sample of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedSample {
    /// Elapsed time at the *end* of the batch (seconds; wall or virtual).
    pub elapsed: f64,
    /// Photons completed in this batch (across all processors).
    pub photons: u64,
    /// Instantaneous rate of this batch (photons/second).
    pub rate: f64,
}

/// Samples a [`SpeedTrace`] retains before coalescing adjacent pairs.
pub const SPEED_TRACE_CAP: usize = 4096;

/// Speed-vs-time trace of one run.
#[derive(Clone, Debug, Default)]
pub struct SpeedTrace {
    samples: Vec<SpeedSample>,
    total_photons: u64,
}

impl SpeedTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a batch that finished at `elapsed` seconds, having simulated
    /// `photons` photons in `batch_seconds`.
    ///
    /// When the trace reaches [`SPEED_TRACE_CAP`] samples, adjacent pairs
    /// are merged (summed photons and durations, the later endpoint),
    /// halving resolution while keeping the full time span and the exact
    /// photon total — a long-lived solve's trace stays a fixed size.
    pub fn push_batch(&mut self, elapsed: f64, photons: u64, batch_seconds: f64) {
        let rate = if batch_seconds > 0.0 {
            photons as f64 / batch_seconds
        } else {
            0.0
        };
        if self.samples.len() >= SPEED_TRACE_CAP {
            self.coalesce();
        }
        self.samples.push(SpeedSample {
            elapsed,
            photons,
            rate,
        });
        self.total_photons += photons;
    }

    /// Merges adjacent sample pairs in place, halving the sample count.
    /// Each merged sample covers both batches: photons add, the batch
    /// durations (reconstructed as `photons / rate`) add to form the new
    /// rate, and the later batch's endpoint carries over.
    fn coalesce(&mut self) {
        let mut merged = Vec::with_capacity(self.samples.len().div_ceil(2));
        for pair in self.samples.chunks(2) {
            if pair.len() == 1 {
                merged.push(pair[0]);
                continue;
            }
            let (a, b) = (pair[0], pair[1]);
            let photons = a.photons + b.photons;
            let seconds = [a, b]
                .iter()
                .map(|s| {
                    if s.rate > 0.0 {
                        s.photons as f64 / s.rate
                    } else {
                        0.0
                    }
                })
                .sum::<f64>();
            let rate = if seconds > 0.0 {
                photons as f64 / seconds
            } else {
                0.0
            };
            merged.push(SpeedSample {
                elapsed: b.elapsed,
                photons,
                rate,
            });
        }
        self.samples = merged;
    }

    /// All samples.
    pub fn samples(&self) -> &[SpeedSample] {
        &self.samples
    }

    /// Total photons across batches.
    pub fn total_photons(&self) -> u64 {
        self.total_photons
    }

    /// Total elapsed time (end of last batch), or 0 for an empty trace.
    pub fn total_elapsed(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.elapsed)
    }

    /// Rate interpolated at `time` (piecewise-constant per batch; the
    /// paper's "interpolate fixed-time speedup by examining the graph").
    pub fn rate_at(&self, time: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut last = None;
        for s in &self.samples {
            if s.elapsed <= time {
                last = Some(s.rate);
            } else if last.is_none() {
                // Before the first sample completes, the first batch's rate
                // is the best estimate.
                return Some(s.rate);
            }
        }
        last.or_else(|| self.samples.last().map(|s| s.rate))
    }

    /// Steady-state rate: mean of the last half of the samples (skips
    /// startup/load-balance transients).
    pub fn steady_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let half = &self.samples[self.samples.len() / 2..];
        half.iter().map(|s| s.rate).sum::<f64>() / half.len() as f64
    }

    /// Fixed-time speedup of `self` over `reference` at `time`.
    pub fn speedup_over(&self, reference: &SpeedTrace, time: f64) -> Option<f64> {
        let mine = self.rate_at(time)?;
        let base = reference.rate_at(time)?;
        if base > 0.0 {
            Some(mine / base)
        } else {
            None
        }
    }

    /// CSV rows `elapsed,rate,photons` (header not included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!("{:.6},{:.3},{}\n", s.elapsed, s.rate, s.photons));
        }
        out
    }
}

/// Memory-vs-photons trace (Fig 5.4).
#[derive(Clone, Debug, Default)]
pub struct MemoryTrace {
    samples: Vec<(u64, usize)>,
}

impl MemoryTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that after `photons` photons the structure held `bytes`.
    pub fn push(&mut self, photons: u64, bytes: usize) {
        self.samples.push((photons, bytes));
    }

    /// All `(photons, bytes)` samples.
    pub fn samples(&self) -> &[(u64, usize)] {
        &self.samples
    }

    /// True when growth over the second half of the trace is sublinear in
    /// photons (the paper's qualitative claim for the bin forest).
    pub fn is_sublinear(&self) -> bool {
        if self.samples.len() < 4 {
            return false;
        }
        let mid = self.samples.len() / 2;
        let (p0, b0) = self.samples[mid];
        let (p1, b1) = *self.samples.last().unwrap();
        if p1 <= p0 || b0 == 0 {
            return false;
        }
        let photon_growth = p1 as f64 / p0 as f64;
        let byte_growth = b1 as f64 / b0 as f64;
        byte_growth < photon_growth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rates: &[(f64, u64, f64)]) -> SpeedTrace {
        let mut t = SpeedTrace::new();
        for &(e, p, s) in rates {
            t.push_batch(e, p, s);
        }
        t
    }

    #[test]
    fn rates_are_computed_per_batch() {
        let t = trace(&[(1.0, 500, 1.0), (3.0, 500, 2.0)]);
        assert_eq!(t.samples()[0].rate, 500.0);
        assert_eq!(t.samples()[1].rate, 250.0);
        assert_eq!(t.total_photons(), 1000);
        assert_eq!(t.total_elapsed(), 3.0);
    }

    #[test]
    fn rate_at_interpolates_piecewise() {
        let t = trace(&[(1.0, 100, 1.0), (2.0, 300, 1.0)]);
        assert_eq!(t.rate_at(0.5), Some(100.0)); // before first completion
        assert_eq!(t.rate_at(1.5), Some(100.0));
        assert_eq!(t.rate_at(2.5), Some(300.0)); // past the end
        assert!(SpeedTrace::new().rate_at(1.0).is_none());
    }

    #[test]
    fn speedup_is_rate_ratio() {
        let serial = trace(&[(1.0, 100, 1.0), (2.0, 100, 1.0)]);
        let par = trace(&[(1.0, 380, 1.0), (2.0, 400, 1.0)]);
        let s = par.speedup_over(&serial, 2.0).unwrap();
        assert!((s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn steady_rate_skips_warmup() {
        let t = trace(&[
            (1.0, 10, 1.0),
            (2.0, 100, 1.0),
            (3.0, 100, 1.0),
            (4.0, 100, 1.0),
        ]);
        assert_eq!(t.steady_rate(), 100.0);
    }

    #[test]
    fn memory_sublinearity_detection() {
        let mut m = MemoryTrace::new();
        // Bytes grow like sqrt(photons): sublinear.
        for i in 1..=16u64 {
            m.push(i * 1000, ((i as f64).sqrt() * 1000.0) as usize);
        }
        assert!(m.is_sublinear());
        let mut lin = MemoryTrace::new();
        for i in 1..=16u64 {
            lin.push(i * 1000, (i * 1000) as usize);
        }
        assert!(!lin.is_sublinear());
    }

    #[test]
    fn cap_coalesces_but_keeps_totals_exact() {
        let mut t = SpeedTrace::new();
        let n = (SPEED_TRACE_CAP * 3) as u64;
        for i in 0..n {
            // Odd photon counts so any lossy accounting would show up.
            t.push_batch((i + 1) as f64 * 0.5, 3 * i + 1, 0.5);
        }
        assert!(t.samples().len() <= SPEED_TRACE_CAP);
        let exact: u64 = (0..n).map(|i| 3 * i + 1).sum();
        assert_eq!(t.total_photons(), exact);
        // Sum of per-sample photons also stays exact (merging adds).
        assert_eq!(t.samples().iter().map(|s| s.photons).sum::<u64>(), exact);
        // The span survives: last endpoint is the last batch's.
        assert_eq!(t.total_elapsed(), n as f64 * 0.5);
        // Samples stay time-ordered.
        assert!(t.samples().windows(2).all(|w| w[0].elapsed < w[1].elapsed));
        // Constant-rate input coalesces to the same constant rate.
        let mut c = SpeedTrace::new();
        for i in 0..(SPEED_TRACE_CAP as u64 + 10) {
            c.push_batch((i + 1) as f64, 1000, 1.0);
        }
        for s in c.samples() {
            assert!((s.rate - 1000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn csv_has_one_row_per_batch() {
        let t = trace(&[(1.0, 100, 1.0), (2.0, 100, 1.0)]);
        assert_eq!(t.to_csv().lines().count(), 2);
    }
}
