//! Performance traces: speed-vs-time and memory-vs-photons.
//!
//! The dissertation presents "the full speedup picture as a function of
//! execution time" (ch. 5): a run is divided into batches; after each batch
//! the instantaneous rate (photons/second) is plotted against elapsed time,
//! one curve per processor count, with speedup read off against the best
//! *serial* version. [`SpeedTrace`] records exactly those points; the bench
//! binaries print them as CSV series for every speedup figure (5.6–5.15).
//!
//! [`MemoryTrace`] records bin-forest bytes against photons simulated
//! (Fig 5.4).

/// One batch sample of a run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpeedSample {
    /// Elapsed time at the *end* of the batch (seconds; wall or virtual).
    pub elapsed: f64,
    /// Photons completed in this batch (across all processors).
    pub photons: u64,
    /// Instantaneous rate of this batch (photons/second).
    pub rate: f64,
}

/// Speed-vs-time trace of one run.
#[derive(Clone, Debug, Default)]
pub struct SpeedTrace {
    samples: Vec<SpeedSample>,
    total_photons: u64,
}

impl SpeedTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a batch that finished at `elapsed` seconds, having simulated
    /// `photons` photons in `batch_seconds`.
    pub fn push_batch(&mut self, elapsed: f64, photons: u64, batch_seconds: f64) {
        let rate = if batch_seconds > 0.0 {
            photons as f64 / batch_seconds
        } else {
            0.0
        };
        self.samples.push(SpeedSample {
            elapsed,
            photons,
            rate,
        });
        self.total_photons += photons;
    }

    /// All samples.
    pub fn samples(&self) -> &[SpeedSample] {
        &self.samples
    }

    /// Total photons across batches.
    pub fn total_photons(&self) -> u64 {
        self.total_photons
    }

    /// Total elapsed time (end of last batch), or 0 for an empty trace.
    pub fn total_elapsed(&self) -> f64 {
        self.samples.last().map_or(0.0, |s| s.elapsed)
    }

    /// Rate interpolated at `time` (piecewise-constant per batch; the
    /// paper's "interpolate fixed-time speedup by examining the graph").
    pub fn rate_at(&self, time: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut last = None;
        for s in &self.samples {
            if s.elapsed <= time {
                last = Some(s.rate);
            } else if last.is_none() {
                // Before the first sample completes, the first batch's rate
                // is the best estimate.
                return Some(s.rate);
            }
        }
        last.or_else(|| self.samples.last().map(|s| s.rate))
    }

    /// Steady-state rate: mean of the last half of the samples (skips
    /// startup/load-balance transients).
    pub fn steady_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let half = &self.samples[self.samples.len() / 2..];
        half.iter().map(|s| s.rate).sum::<f64>() / half.len() as f64
    }

    /// Fixed-time speedup of `self` over `reference` at `time`.
    pub fn speedup_over(&self, reference: &SpeedTrace, time: f64) -> Option<f64> {
        let mine = self.rate_at(time)?;
        let base = reference.rate_at(time)?;
        if base > 0.0 {
            Some(mine / base)
        } else {
            None
        }
    }

    /// CSV rows `elapsed,rate,photons` (header not included).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!("{:.6},{:.3},{}\n", s.elapsed, s.rate, s.photons));
        }
        out
    }
}

/// Memory-vs-photons trace (Fig 5.4).
#[derive(Clone, Debug, Default)]
pub struct MemoryTrace {
    samples: Vec<(u64, usize)>,
}

impl MemoryTrace {
    /// Empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that after `photons` photons the structure held `bytes`.
    pub fn push(&mut self, photons: u64, bytes: usize) {
        self.samples.push((photons, bytes));
    }

    /// All `(photons, bytes)` samples.
    pub fn samples(&self) -> &[(u64, usize)] {
        &self.samples
    }

    /// True when growth over the second half of the trace is sublinear in
    /// photons (the paper's qualitative claim for the bin forest).
    pub fn is_sublinear(&self) -> bool {
        if self.samples.len() < 4 {
            return false;
        }
        let mid = self.samples.len() / 2;
        let (p0, b0) = self.samples[mid];
        let (p1, b1) = *self.samples.last().unwrap();
        if p1 <= p0 || b0 == 0 {
            return false;
        }
        let photon_growth = p1 as f64 / p0 as f64;
        let byte_growth = b1 as f64 / b0 as f64;
        byte_growth < photon_growth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(rates: &[(f64, u64, f64)]) -> SpeedTrace {
        let mut t = SpeedTrace::new();
        for &(e, p, s) in rates {
            t.push_batch(e, p, s);
        }
        t
    }

    #[test]
    fn rates_are_computed_per_batch() {
        let t = trace(&[(1.0, 500, 1.0), (3.0, 500, 2.0)]);
        assert_eq!(t.samples()[0].rate, 500.0);
        assert_eq!(t.samples()[1].rate, 250.0);
        assert_eq!(t.total_photons(), 1000);
        assert_eq!(t.total_elapsed(), 3.0);
    }

    #[test]
    fn rate_at_interpolates_piecewise() {
        let t = trace(&[(1.0, 100, 1.0), (2.0, 300, 1.0)]);
        assert_eq!(t.rate_at(0.5), Some(100.0)); // before first completion
        assert_eq!(t.rate_at(1.5), Some(100.0));
        assert_eq!(t.rate_at(2.5), Some(300.0)); // past the end
        assert!(SpeedTrace::new().rate_at(1.0).is_none());
    }

    #[test]
    fn speedup_is_rate_ratio() {
        let serial = trace(&[(1.0, 100, 1.0), (2.0, 100, 1.0)]);
        let par = trace(&[(1.0, 380, 1.0), (2.0, 400, 1.0)]);
        let s = par.speedup_over(&serial, 2.0).unwrap();
        assert!((s - 4.0).abs() < 1e-12);
    }

    #[test]
    fn steady_rate_skips_warmup() {
        let t = trace(&[
            (1.0, 10, 1.0),
            (2.0, 100, 1.0),
            (3.0, 100, 1.0),
            (4.0, 100, 1.0),
        ]);
        assert_eq!(t.steady_rate(), 100.0);
    }

    #[test]
    fn memory_sublinearity_detection() {
        let mut m = MemoryTrace::new();
        // Bytes grow like sqrt(photons): sublinear.
        for i in 1..=16u64 {
            m.push(i * 1000, ((i as f64).sqrt() * 1000.0) as usize);
        }
        assert!(m.is_sublinear());
        let mut lin = MemoryTrace::new();
        for i in 1..=16u64 {
            lin.push(i * 1000, (i * 1000) as usize);
        }
        assert!(!lin.is_sublinear());
    }

    #[test]
    fn csv_has_one_row_per_batch() {
        let t = trace(&[(1.0, 100, 1.0), (2.0, 100, 1.0)]);
        assert_eq!(t.to_csv().lines().count(), 2);
    }
}
