//! The unified solver engine: every Photon backend as an incremental
//! `step → snapshot` machine.
//!
//! The dissertation's three drivers — the serial simulator (Fig 4.1), the
//! shared-memory `forall` loop (Fig 5.2) and the distributed exchange loop
//! (Fig 5.3) — are all the same computation: advance the photon stream by a
//! batch, fold the tallies into the bin forest, repeat until converged.
//! [`SolverEngine`] is that shape as a trait, so the serving layer can
//! drive any backend batch-by-batch and publish progressively refining
//! [`Answer`] snapshots while the solve is still running.
//!
//! **The photon stream.** All engines draw photon `j` from block substream
//! `j` of one seeded base stream ([`photon_stream`]): photon `j` owns draws
//! `[j·S, (j+1)·S)` with `S = `[`PHOTON_DRAW_STRIDE`]. The stream is
//! therefore a property of `(seed, j)` alone — not of the backend, the
//! worker count, or how batches were sized — which is what makes a serial
//! run and a threaded run of the same seed produce *bit-identical* answers
//! (see `photon-par`'s deterministic tally replay).

use crate::answer::Answer;
use crate::checkpoint::{EngineCheckpoint, RestoreError};
use crate::forest::ForestFootprint;
use crate::sim::SimStats;
use photon_rng::Lcg48;

/// Draws reserved per photon in the block-split stream.
///
/// A photon consumes a handful of draws for emission (rejection kernel)
/// plus a few per bounce, capped at [`crate::trace::MAX_BOUNCES`] bounces —
/// comfortably under 2^13 in any physical scene. 2^48 / 2^13 leaves room
/// for 2^35 photons per seed.
pub const PHOTON_DRAW_STRIDE: u64 = 1 << 13;

/// The RNG for global photon `index` of the stream seeded by `seed`.
///
/// Every backend traces photon `index` with exactly this generator, so the
/// photon set of a run depends only on `(seed, photon count)`.
#[inline]
pub fn photon_stream(seed: u64, index: u64) -> Lcg48 {
    Lcg48::new(seed).substream(index, PHOTON_DRAW_STRIDE)
}

/// What one [`SolverEngine::step`] accomplished.
#[derive(Clone, Copy, Debug)]
pub struct BatchReport {
    /// Photons emitted by this step.
    pub batch_photons: u64,
    /// Photons emitted over the engine's whole life.
    pub emitted_total: u64,
    /// Leaf bins in the forest after the step (refinement progress).
    pub leaf_bins: u64,
    /// Time this step took, seconds. Wall clock for the serial and
    /// shared-memory engines; *virtual* time for the distributed engine.
    pub batch_seconds: f64,
    /// Portion of [`BatchReport::batch_seconds`] spent tracing photons.
    /// Backends that tally inline while tracing (serial, distributed) report
    /// the whole step here.
    pub trace_seconds: f64,
    /// Portion of [`BatchReport::batch_seconds`] spent partitioning and
    /// applying tally records (the batched pipeline's partition + apply
    /// phases; see `photon-core::batch`). Zero for inline-tally backends.
    pub apply_seconds: f64,
    /// Time since the engine started, on the same clock as
    /// [`BatchReport::batch_seconds`].
    pub elapsed_seconds: f64,
    /// Cumulative photon counters.
    pub stats: SimStats,
    /// Per-arena resident footprint of the forest after the step (the
    /// distributed engine reports its owned trees — each patch exactly
    /// once across ranks).
    pub footprint: ForestFootprint,
}

/// An incremental global-illumination solver.
///
/// `step` advances the simulation by roughly `batch` photons and reports
/// what happened; `snapshot` freezes the current view-independent solution
/// without stopping the run. Implementations:
///
/// * [`crate::Simulator`] — the serial reference,
/// * `photon_par::ParEngine` — shared-memory threads over a locked forest,
/// * `photon_dist::DistEngine` — message-passing ranks on virtual time.
pub trait SolverEngine: Send {
    /// Advances the solve by about `batch` photons (backends may round to
    /// their worker/rank granularity) and reports the batch.
    fn step(&mut self, batch: u64) -> BatchReport;

    /// The current view-independent solution; the engine keeps solving.
    fn snapshot(&self) -> Answer;

    /// Cumulative photon counters.
    fn stats(&self) -> SimStats;

    /// Photons emitted so far.
    fn emitted(&self) -> u64 {
        self.stats().emitted
    }

    /// Freezes the resumable state: forest, counters, and the photon-index
    /// cursor the next [`step`](SolverEngine::step) would start from.
    ///
    /// Because every backend draws photon `j` from block substream `j`
    /// ([`photon_stream`]), this is the *complete* solve state: restore the
    /// checkpoint into any engine over the same scene, seed, and split
    /// policy and the solve continues the exact photon stream. For the
    /// order-preserving backends (serial, deterministic-tally threaded) the
    /// resumed [`Answer`] is bit-identical to an uninterrupted run.
    fn checkpoint(&self) -> EngineCheckpoint;

    /// Adopts a checkpoint's state, discarding whatever this engine had
    /// solved so far. The engine must have been built over the same scene
    /// (patch count), photon-stream seed, and split policy; the next
    /// [`step`](SolverEngine::step) continues from the checkpoint's cursor.
    fn restore(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), RestoreError>;

    /// Short backend name for logs and progress reports.
    fn backend(&self) -> &'static str;

    /// True when [`BatchReport`] times are virtual (model) seconds rather
    /// than wall clock.
    fn virtual_time(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn photon_stream_sits_at_its_block_boundary() {
        let mut base = Lcg48::new(9);
        base.jump_ahead(3 * PHOTON_DRAW_STRIDE);
        assert_eq!(photon_stream(9, 3).state(), base.state());
    }

    #[test]
    fn photon_stream_is_a_pure_function() {
        let mut x = photon_stream(5, 123);
        let mut y = photon_stream(5, 123);
        assert_eq!(x.next_u48(), y.next_u48());
    }
}
