//! Observability substrate: flight recorder, bounded histograms, stage
//! timings.
//!
//! The paper's whole methodology is measurement — speed-vs-time curves per
//! processor count — and a long-lived serving system needs the same
//! discipline turned inward: *what just happened, in what order, and how
//! long did each stage take?* This module is the shared vocabulary every
//! tier (solve, store, serve, stream, checkpoint) records into:
//!
//! | piece | what it is |
//! |-------|------------|
//! | [`FlightRecorder`] | lock-cheap bounded ring buffer of [`ObsEvent`]s — a post-mortem timeline of every lifecycle edge, filterable by scene/job/tenant/kind |
//! | [`Histogram`] | fixed-size log-bucketed latency histogram: constant memory forever, p50/p90/p99 within one bucket of exact, exact count/sum/max, mergeable |
//! | [`StageTimings`] | one histogram per pipeline [`Stage`] (cache probe, render, diff, reply, solve slice, checkpoint freeze/encode/restore) |
//! | [`ObsHub`] | the `Arc`-shared bundle of all three that instrumented code records into |
//!
//! Everything here is bounded by construction: the recorder drops its
//! oldest event past capacity (counting the drops), and a histogram is 65
//! fixed buckets no matter how many values it absorbs — recording a
//! billion requests costs the same memory as recording ten.
//!
//! Recording is designed for hot paths: histogram recording is three
//! relaxed atomic operations (no lock at all), and a flight-recorder event
//! takes one short mutex hold to push into the ring.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of histogram buckets: bucket `i` holds values whose bit length
/// is `i`, i.e. bucket 0 is exactly `{0}` and bucket `i ≥ 1` covers
/// `[2^(i-1), 2^i - 1]`. 64-bit values need 65 buckets.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Log-bucket index of `v`: its bit length.
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples (microseconds by
/// convention), recordable from any thread without locking.
///
/// Memory is constant: [`HISTOGRAM_BUCKETS`] atomic counters plus an exact
/// sum and an exact max, no matter how many samples are recorded — the
/// replacement for the unbounded `Vec<u64>` a long-lived service cannot
/// afford. Quantiles read from the buckets land within the reporting
/// bucket's width of the exact nearest-rank statistic (see
/// [`HistogramSnapshot::quantile`]).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample — three relaxed atomics, no lock.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in seconds as whole microseconds.
    pub fn record_seconds(&self, seconds: f64) {
        self.record((seconds.max(0.0) * 1e6) as u64);
    }

    /// A point-in-time copy of the buckets and exact aggregates.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: plain counters, mergeable,
/// and the thing quantiles are read from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log bucket (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact sum of all recorded samples.
    pub sum: u64,
    /// Exact largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum as f64 / count as f64
        }
    }

    /// Nearest-rank quantile estimate from the buckets, `q` in `[0, 1]`.
    ///
    /// Returns the upper bound of the bucket holding the nearest-rank
    /// sample, clamped to the exact max — so the estimate is always `≥`
    /// the exact statistic and within the same log bucket (one
    /// bucket-width). The property test in `obs_prop.rs` pins this down.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self`. Merging snapshots is exactly equivalent
    /// to having recorded both sample streams into one histogram. Counts
    /// and sums saturate rather than wrap — a merged aggregate pinned at
    /// `u64::MAX` reads as "astronomical", not as a small number again.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// `(inclusive upper bound, cumulative count)` per non-empty bucket,
    /// in ascending order — what a Prometheus exposition's cumulative
    /// `le` buckets are built from.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cum += n;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }
}

/// Pipeline stages with dedicated duration histograms.
///
/// These split apart the time the dispatcher used to lump into one
/// request latency — render vs diff vs cache probe vs reply — plus the
/// solve tier's slice duration and the checkpoint tier's freeze, encode,
/// and restore costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// View-cache lookup on the request path.
    CacheProbe,
    /// Tile-parallel render of one view.
    Render,
    /// Tile diff of two frames on the streaming path.
    Diff,
    /// Answering a waiter (metrics accounting + channel send).
    Reply,
    /// One scheduler slice: a single `engine.step` call.
    SolveSlice,
    /// The trace phase of a solve slice: photons traced into tally records
    /// (the whole slice for backends that tally inline while tracing).
    SolveTrace,
    /// The tally-apply phase of a solve slice: partitioning buffered records
    /// by patch and folding them into the bin forest (zero for inline-tally
    /// backends).
    TallyApply,
    /// Freezing an engine into an `EngineCheckpoint`.
    CheckpointFreeze,
    /// Encoding a checkpoint to `PHOTCK1` bytes.
    CheckpointEncode,
    /// Restoring an engine from a checkpoint.
    CheckpointRestore,
}

/// Every stage, in display order.
pub const STAGES: [Stage; 10] = [
    Stage::CacheProbe,
    Stage::Render,
    Stage::Diff,
    Stage::Reply,
    Stage::SolveSlice,
    Stage::SolveTrace,
    Stage::TallyApply,
    Stage::CheckpointFreeze,
    Stage::CheckpointEncode,
    Stage::CheckpointRestore,
];

impl Stage {
    /// Stable kebab-case name (metric label value).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::CacheProbe => "cache-probe",
            Stage::Render => "render",
            Stage::Diff => "diff",
            Stage::Reply => "reply",
            Stage::SolveSlice => "solve-slice",
            Stage::SolveTrace => "trace",
            Stage::TallyApply => "tally-apply",
            Stage::CheckpointFreeze => "checkpoint-freeze",
            Stage::CheckpointEncode => "checkpoint-encode",
            Stage::CheckpointRestore => "checkpoint-restore",
        }
    }

    fn index(&self) -> usize {
        STAGES.iter().position(|s| s == self).expect("stage listed")
    }
}

/// One duration [`Histogram`] per [`Stage`].
#[derive(Debug, Default)]
pub struct StageTimings {
    stages: [Histogram; 10],
}

impl StageTimings {
    /// Records `seconds` spent in `stage` (stored as microseconds).
    pub fn record(&self, stage: Stage, seconds: f64) {
        self.stages[stage.index()].record_seconds(seconds);
    }

    /// Point-in-time copy of every stage's histogram.
    pub fn snapshot(&self) -> StageTimingsSnapshot {
        StageTimingsSnapshot {
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
        }
    }
}

/// A point-in-time copy of [`StageTimings`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageTimingsSnapshot {
    /// One snapshot per [`STAGES`] entry, same order.
    pub stages: [HistogramSnapshot; 10],
}

impl StageTimingsSnapshot {
    /// The named stage's histogram.
    pub fn get(&self, stage: Stage) -> &HistogramSnapshot {
        &self.stages[stage.index()]
    }

    /// `(stage, histogram)` pairs in display order.
    pub fn iter(&self) -> impl Iterator<Item = (Stage, &HistogramSnapshot)> {
        STAGES.iter().copied().zip(self.stages.iter())
    }
}

/// Which tier of the system emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsTier {
    /// The solver pool's scheduler and workers.
    Solve,
    /// The answer store (publishes).
    Store,
    /// The render service's dispatcher.
    Serve,
    /// The streaming (epoch subscription) path.
    Stream,
    /// Checkpoint freeze/restore.
    Checkpoint,
}

impl ObsTier {
    /// Stable kebab-case name (metric label value).
    pub fn name(&self) -> &'static str {
        match self {
            ObsTier::Solve => "solve",
            ObsTier::Store => "store",
            ObsTier::Serve => "serve",
            ObsTier::Stream => "stream",
            ObsTier::Checkpoint => "checkpoint",
        }
    }
}

/// Structured event kinds — one per lifecycle edge the system already has.
///
/// `payload` meaning per kind is listed on each variant; it is always a
/// plain `u64` so events stay cheap to record and bounded in size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObsKind {
    /// A solve job entered the scheduler. Payload: target photons.
    JobSubmitted,
    /// The scheduler granted a worker slice. Payload: slice photon cap.
    SliceGranted,
    /// A job parked. Payload: 0 = paused by owner, 1 = quota exhausted.
    SliceParked,
    /// One `engine.step` finished. Payload: photons emitted this batch.
    BatchStepped,
    /// A job retired (converged or canceled). Payload: final photon count.
    JobDone,
    /// The store published a fresher answer. Payload: new epoch.
    EpochPublished,
    /// Stale-epoch view-cache keys purged. Payload: keys purged.
    CachePurged,
    /// One render request answered. Payload: latency in microseconds.
    RequestServed,
    /// A scene's dispatch panicked; the dispatcher survived. Payload:
    /// requests answered with `RenderFailed`.
    DispatchPanic,
    /// A frame delta reached a subscriber. Payload: tile payload bytes.
    DeltaPushed,
    /// A new subscription started receiving deltas. Payload: subscribers
    /// now attached to the scene.
    SubscriberConnected,
    /// A subscriber fell behind its send window; subsequent deltas coalesce
    /// until it catches up. Payload: undelivered deltas in flight.
    SubscriberLagged,
    /// A subscription ended (client dropped its handle). Payload: 0.
    SubscriberDropped,
    /// An engine froze into a checkpoint. Payload: encoded `PHOTCK1` bytes.
    CheckpointFrozen,
    /// An engine restored from a checkpoint. Payload: photons inherited.
    CheckpointRestored,
}

/// Every event kind, in lifecycle order.
pub const OBS_KINDS: [ObsKind; 15] = [
    ObsKind::JobSubmitted,
    ObsKind::SliceGranted,
    ObsKind::SliceParked,
    ObsKind::BatchStepped,
    ObsKind::JobDone,
    ObsKind::EpochPublished,
    ObsKind::CachePurged,
    ObsKind::RequestServed,
    ObsKind::DispatchPanic,
    ObsKind::DeltaPushed,
    ObsKind::SubscriberConnected,
    ObsKind::SubscriberLagged,
    ObsKind::SubscriberDropped,
    ObsKind::CheckpointFrozen,
    ObsKind::CheckpointRestored,
];

impl ObsKind {
    /// Stable kebab-case name (what exports and dumps print).
    pub fn name(&self) -> &'static str {
        match self {
            ObsKind::JobSubmitted => "job-submitted",
            ObsKind::SliceGranted => "slice-granted",
            ObsKind::SliceParked => "slice-parked",
            ObsKind::BatchStepped => "batch-stepped",
            ObsKind::JobDone => "job-done",
            ObsKind::EpochPublished => "epoch-published",
            ObsKind::CachePurged => "cache-purged",
            ObsKind::RequestServed => "request-served",
            ObsKind::DispatchPanic => "dispatch-panic",
            ObsKind::DeltaPushed => "delta-pushed",
            ObsKind::SubscriberConnected => "subscriber-connected",
            ObsKind::SubscriberLagged => "subscriber-lagged",
            ObsKind::SubscriberDropped => "subscriber-dropped",
            ObsKind::CheckpointFrozen => "checkpoint-frozen",
            ObsKind::CheckpointRestored => "checkpoint-restored",
        }
    }

    /// The tier this kind of event comes from.
    pub fn tier(&self) -> ObsTier {
        match self {
            ObsKind::JobSubmitted
            | ObsKind::SliceGranted
            | ObsKind::SliceParked
            | ObsKind::BatchStepped
            | ObsKind::JobDone => ObsTier::Solve,
            ObsKind::EpochPublished => ObsTier::Store,
            ObsKind::CachePurged | ObsKind::RequestServed | ObsKind::DispatchPanic => {
                ObsTier::Serve
            }
            ObsKind::DeltaPushed
            | ObsKind::SubscriberConnected
            | ObsKind::SubscriberLagged
            | ObsKind::SubscriberDropped => ObsTier::Stream,
            ObsKind::CheckpointFrozen | ObsKind::CheckpointRestored => ObsTier::Checkpoint,
        }
    }
}

/// The optional context an event carries; default everything you don't
/// have. `payload`'s meaning is per-[`ObsKind`].
#[derive(Clone, Debug, Default)]
pub struct ObsCtx {
    /// Store scene id the event concerns, if any.
    pub scene: Option<u32>,
    /// Solve job id the event concerns, if any.
    pub job: Option<u64>,
    /// Tenant tag the event concerns, if any.
    pub tenant: Option<String>,
    /// Kind-specific numeric payload (photons, bytes, epoch, µs, …).
    pub payload: u64,
}

/// One recorded lifecycle edge.
#[derive(Clone, Debug)]
pub struct ObsEvent {
    /// Monotone sequence number (never reused, survives ring wrap — gaps
    /// at the front mean old events were dropped).
    pub seq: u64,
    /// Microseconds since the recorder was created.
    pub ts_us: u64,
    /// Emitting tier (derived from `kind`).
    pub tier: ObsTier,
    /// What happened.
    pub kind: ObsKind,
    /// Scene / job / tenant / payload context.
    pub ctx: ObsCtx,
}

struct Ring {
    buf: VecDeque<ObsEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded in-memory event log: the newest `capacity` events, oldest
/// dropped first, with a monotone sequence number so a post-mortem can
/// tell how much history was lost.
///
/// Recording takes one short mutex hold (push + possible pop); draining
/// clones the events out so the recorder is never held open.
pub struct FlightRecorder {
    anchor: Instant,
    capacity: usize,
    state: Mutex<Ring>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap();
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &st.buf.len())
            .field("dropped", &st.dropped)
            .finish()
    }
}

impl FlightRecorder {
    /// A recorder retaining the newest `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            anchor: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(Ring {
                buf: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records one event, timestamped now.
    pub fn record(&self, kind: ObsKind, ctx: ObsCtx) {
        let ts_us = self.anchor.elapsed().as_micros() as u64;
        let mut st = self.state.lock().unwrap();
        let seq = st.next_seq;
        st.next_seq += 1;
        if st.buf.len() == self.capacity {
            st.buf.pop_front();
            st.dropped += 1;
        }
        st.buf.push_back(ObsEvent {
            seq,
            ts_us,
            tier: kind.tier(),
            kind,
            ctx,
        });
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.state.lock().unwrap().buf.iter().cloned().collect()
    }

    /// The newest `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<ObsEvent> {
        let st = self.state.lock().unwrap();
        let skip = st.buf.len().saturating_sub(n);
        st.buf.iter().skip(skip).cloned().collect()
    }

    /// Retained events matching `keep`, oldest first — filter a timeline
    /// down to one scene, tenant, or kind.
    pub fn filtered(&self, keep: impl Fn(&ObsEvent) -> bool) -> Vec<ObsEvent> {
        self.state
            .lock()
            .unwrap()
            .buf
            .iter()
            .filter(|e| keep(e))
            .cloned()
            .collect()
    }

    /// Events recorded over the recorder's lifetime (including dropped).
    pub fn recorded(&self) -> u64 {
        self.state.lock().unwrap().next_seq
    }

    /// Events dropped to stay within capacity.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap().dropped
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The `Arc`-shared observability bundle every tier records into: one
/// flight recorder and one set of stage-duration histograms.
///
/// The serve layer's `AnswerStore` owns one hub and every component built
/// over that store (solver pool, render service, exporters) shares it, so
/// a single timeline spans solve → publish → render → delta → checkpoint.
#[derive(Debug)]
pub struct ObsHub {
    recorder: FlightRecorder,
    stages: StageTimings,
}

/// Default flight-recorder capacity for a hub ([`ObsHub::default`]).
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

impl Default for ObsHub {
    fn default() -> Self {
        Self::new(DEFAULT_RECORDER_CAPACITY)
    }
}

impl ObsHub {
    /// A hub whose recorder retains `capacity` events.
    pub fn new(capacity: usize) -> Self {
        ObsHub {
            recorder: FlightRecorder::new(capacity),
            stages: StageTimings::default(),
        }
    }

    /// Records one lifecycle event.
    pub fn emit(&self, kind: ObsKind, ctx: ObsCtx) {
        self.recorder.record(kind, ctx);
    }

    /// Records `seconds` spent in `stage`.
    pub fn stage(&self, stage: Stage, seconds: f64) {
        self.stages.record(stage, seconds);
    }

    /// Times `f` and records its duration under `stage`.
    pub fn time<R>(&self, stage: Stage, f: impl FnOnce() -> R) -> R {
        let t = Instant::now();
        let out = f();
        self.stages.record(stage, t.elapsed().as_secs_f64());
        out
    }

    /// The event timeline.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Point-in-time copy of every stage histogram.
    pub fn stage_snapshot(&self) -> StageTimingsSnapshot {
        self.stages.snapshot()
    }
}

/// Escapes `s` for embedding in a JSON string literal (no surrounding
/// quotes). Shared by the serve-layer JSON exporter and the bench bins'
/// `--json` output so neither hand-rolls escaping.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_aggregates_are_exact_and_quantiles_bucketed() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.sum, (1..=100u64).map(|v| v * 1000).sum::<u64>());
        assert_eq!(s.max, 100_000);
        // Exact p50 is 50_000 (bucket [32768, 65535]); the estimate is the
        // bucket's upper bound.
        assert_eq!(s.quantile(0.50), 65_535);
        // Exact p99 is 99_000 (bucket [65536, 131071]); clamped to max.
        assert_eq!(s.quantile(0.99), 100_000);
        assert_eq!(s.quantile(1.0), 100_000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn histogram_merge_equals_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [0u64, 1, 7, 900, 4096, u64::MAX] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 3, 65_000] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.count(), 9);
    }

    #[test]
    fn cumulative_skips_empty_buckets() {
        let h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(1000);
        let cum = h.snapshot().cumulative();
        assert_eq!(cum, vec![(1, 2), (1023, 3)]);
    }

    #[test]
    fn recorder_bounds_and_sequences() {
        let r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(
                ObsKind::BatchStepped,
                ObsCtx {
                    payload: i,
                    ..Default::default()
                },
            );
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
        let events = r.events();
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest dropped first, sequence preserved"
        );
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(r.tail(2).len(), 2);
        assert_eq!(r.tail(2)[0].seq, 3);
        assert_eq!(r.filtered(|e| e.ctx.payload >= 3).len(), 2);
    }

    #[test]
    fn kinds_map_to_tiers_and_stable_names() {
        for kind in OBS_KINDS {
            assert!(!kind.name().is_empty());
            assert!(!kind.tier().name().is_empty());
        }
        assert_eq!(ObsKind::EpochPublished.tier(), ObsTier::Store);
        assert_eq!(ObsKind::DeltaPushed.tier(), ObsTier::Stream);
        assert_eq!(ObsKind::CheckpointFrozen.tier(), ObsTier::Checkpoint);
        // Names are unique (they key exporter series).
        let mut names: Vec<_> = OBS_KINDS.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), OBS_KINDS.len());
    }

    #[test]
    fn hub_times_stages() {
        let hub = ObsHub::new(8);
        let out = hub.time(Stage::Render, || 42);
        assert_eq!(out, 42);
        hub.stage(Stage::Render, 0.001);
        let stages = hub.stage_snapshot();
        assert_eq!(stages.get(Stage::Render).count(), 2);
        assert_eq!(stages.get(Stage::Diff).count(), 0);
        assert_eq!(stages.iter().count(), STAGES.len());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
