//! The Photon Monte Carlo light-transport simulator (dissertation ch. 4).
//!
//! Photon simulates light by emitting photons from luminaires and tracing
//! them through the scene until probabilistic absorption. Every reflection is
//! tallied into the owning patch's four-dimensional adaptive histogram
//! ([`photon_hist::BinTree`]), building a discrete, view-*independent* answer
//! to the Rendering Equation: radiance as a function of patch position
//! `(s, t)` and outgoing direction `(θ, r²)`. Rendering afterwards is a
//! single-step ray trace against the stored answer ([`view`]).
//!
//! Module map (the four routines of the paper's Fig 4.1 plus support):
//!
//! | paper routine | module |
//! |---------------|--------|
//! | `GeneratePhoton` | [`generate`] (rejection kernel + Shirley baseline) |
//! | `DetermineIntersection` | `photon_geom::Octree`, driven from [`trace`] |
//! | `Reflect` | [`reflect`] |
//! | `DetermineBin` / `UpdateBinCount` / `Split` | [`forest`] (over `photon_hist`) |
//! | batched trace→partition→apply kernel | [`batch`] |
//! | simulation driver | [`sim`] |
//! | incremental solve loop (all backends) | [`engine`] |
//! | answer files | [`answer`] |
//! | solve checkpoints (freeze/resume) | [`checkpoint`] |
//! | viewing | [`view`], [`img`] |
//! | streaming wire format (`PHOTSTRM1`) | [`wire`] |
//! | performance traces | [`perf`] |
//! | observability (flight recorder, histograms) | [`obs`] |
//! | polarization (the paper's in-progress extension) | [`polar`] |

#![deny(missing_docs)]

pub mod answer;
pub mod batch;
pub mod checkpoint;
pub mod engine;
pub mod forest;
pub mod generate;
pub mod img;
pub mod obs;
pub mod perf;
pub mod polar;
pub mod reflect;
pub mod sim;
pub mod trace;
pub mod view;
pub mod wire;

pub use answer::Answer;
pub use batch::{trace_strided, PartitionScratch, PatchRun, RecordSink, TallyRecord};
pub use checkpoint::{EngineCheckpoint, RestoreError};
pub use engine::{photon_stream, BatchReport, SolverEngine, PHOTON_DRAW_STRIDE};
pub use forest::{BinForest, ForestFootprint};
pub use generate::{EmittedPhoton, PhotonGenerator};
pub use img::Image;
pub use obs::{
    FlightRecorder, Histogram, HistogramSnapshot, ObsCtx, ObsEvent, ObsHub, ObsKind, ObsTier,
    Stage, StageTimings, StageTimingsSnapshot,
};
pub use perf::{MemoryTrace, SpeedTrace, SPEED_TRACE_CAP};
pub use polar::{Polarization, PolarizedBounce};
pub use sim::{SimConfig, SimStats, Simulator};
pub use trace::{trace_photon, TallySink, TraceOutcome};
pub use view::{render, render_tile, squash_tile_runs, tiles, Camera, Tile};
pub use wire::{SubscribeFrame, WireDelta, WireFrame, WireMode};
