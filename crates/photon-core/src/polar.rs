//! Polarization tracking — the paper's in-progress extension.
//!
//! Chapter 4: the He reflection model "includes polarization and
//! masking/self-shadowing effects. Using this model, Photon has the
//! potential to model polarized light … Currently, we are working on
//! determining the impact of incorporating polarization in computer
//! graphics" (the work of Sairam Sankaranarayanan cited there); ch. 6
//! expects polarization to "play a large role in the realism of a rendered
//! scene".
//!
//! This module implements the transport part of that program with a
//! partial-linear-polarization state (a reduced Stokes description —
//! degree + orientation — sufficient for non-circular polarization, which
//! mirror/dielectric scenes do not produce):
//!
//! * emission is unpolarized;
//! * specular/mirror reflection polarizes according to the Fresnel
//!   `R_s`/`R_p` split — maximally at Brewster's angle, where `R_p = 0`;
//! * diffuse scattering depolarizes (multiple subsurface events);
//! * the polarization-aware energy factor modulates specular reflectance
//!   when already-polarized light reflects again (the physical effect
//!   stacked dielectric reflections exhibit).

use photon_math::Vec3;

/// Partial linear polarization of a photon.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Polarization {
    /// Degree of linear polarization in `[0, 1]` (0 = unpolarized).
    pub degree: f64,
    /// Orientation of the polarization ellipse's major axis, measured in
    /// the plane perpendicular to propagation, radians in `[0, π)`.
    /// Meaningless when `degree = 0`.
    pub orientation: f64,
}

impl Polarization {
    /// Unpolarized light (every emitted photon).
    pub const UNPOLARIZED: Polarization = Polarization {
        degree: 0.0,
        orientation: 0.0,
    };

    /// True when the state is physically valid.
    pub fn is_valid(&self) -> bool {
        (0.0..=1.0).contains(&self.degree)
            && (0.0..std::f64::consts::PI + 1e-12).contains(&self.orientation)
    }
}

/// Fresnel power reflectances `(R_s, R_p)` for an air→dielectric interface
/// with relative refraction index `n`, at incidence cosine `cos_i`.
pub fn fresnel_rs_rp(n: f64, cos_i: f64) -> (f64, f64) {
    let cos_i = cos_i.clamp(0.0, 1.0);
    let sin_i_sq = 1.0 - cos_i * cos_i;
    let sin_t_sq = sin_i_sq / (n * n);
    if sin_t_sq >= 1.0 {
        return (1.0, 1.0); // total internal reflection regime
    }
    let cos_t = (1.0 - sin_t_sq).sqrt();
    let rs = (cos_i - n * cos_t) / (cos_i + n * cos_t);
    let rp = (n * cos_i - cos_t) / (n * cos_i + cos_t);
    (rs * rs, rp * rp)
}

/// Brewster's angle for relative index `n` (radians from the normal).
pub fn brewster_angle(n: f64) -> f64 {
    n.atan()
}

/// Result of a polarized specular reflection.
#[derive(Clone, Copy, Debug)]
pub struct PolarizedBounce {
    /// New polarization state of the reflected photon.
    pub polarization: Polarization,
    /// Energy factor relative to the *unpolarized* Fresnel average — the
    /// correction polarization-aware transport applies on top of the
    /// scalar reflection model (1.0 for unpolarized input).
    pub energy_factor: f64,
}

/// Updates polarization across a specular reflection.
///
/// `incoming` is the world-space direction of travel, `normal` the surface
/// normal of the hit side, `n` the surface's effective refraction index.
///
/// The s-axis of the reflection (perpendicular to the plane of incidence)
/// is where reflected light polarizes; incident polarization aligned with
/// s reflects more strongly than p-aligned light — that asymmetry is the
/// `energy_factor`.
pub fn polarized_specular(
    incoming: Vec3,
    normal: Vec3,
    n: f64,
    incident: Polarization,
) -> PolarizedBounce {
    let cos_i = (-incoming.dot(normal)).clamp(0.0, 1.0);
    let (rs, rp) = fresnel_rs_rp(n, cos_i);
    let r_avg = 0.5 * (rs + rp);
    if r_avg <= 0.0 {
        return PolarizedBounce {
            polarization: Polarization::UNPOLARIZED,
            energy_factor: 1.0,
        };
    }
    // s direction: perpendicular to the plane of incidence.
    let s_axis = {
        let s = incoming.cross(normal);
        if s.length_sq() < 1e-18 {
            // Normal incidence: no plane of incidence, no polarizing effect.
            return PolarizedBounce {
                polarization: incident,
                energy_factor: 1.0,
            };
        }
        s.normalized()
    };
    let _ = s_axis; // orientation bookkeeping is relative; axis fixes the zero

    // Decompose incident intensity into s/p fractions. For partially
    // polarized light with degree d at orientation φ (measured from the
    // s axis), the s fraction is (1 + d·cos 2φ)/2.
    let phi = incident.orientation;
    let fs = 0.5 * (1.0 + incident.degree * (2.0 * phi).cos());
    let fp = 1.0 - fs;

    // Reflected intensities per component.
    let is = fs * rs;
    let ip = fp * rp;
    let total = is + ip;
    if total <= 0.0 {
        // Perfect Brewster extinction of a purely p-polarized ray.
        return PolarizedBounce {
            polarization: Polarization::UNPOLARIZED,
            energy_factor: 0.0,
        };
    }
    let degree = ((is - ip) / total).abs().min(1.0);
    let orientation = if is >= ip {
        0.0
    } else {
        std::f64::consts::FRAC_PI_2
    };
    // Energy relative to the scalar (unpolarized-average) model.
    let energy_factor = total / r_avg;
    PolarizedBounce {
        polarization: Polarization {
            degree,
            orientation,
        },
        energy_factor,
    }
}

/// Depolarization across a diffuse bounce: subsurface multiple scattering
/// randomizes orientation; a small residual fraction survives.
pub fn diffuse_depolarize(incident: Polarization) -> Polarization {
    Polarization {
        degree: incident.degree * 0.05,
        orientation: incident.orientation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    const GLASS: f64 = 1.5;

    fn incoming_at(angle: f64) -> Vec3 {
        // Travel direction hitting a +z-normal surface at `angle` from the
        // normal, in the xz plane.
        Vec3::new(angle.sin(), 0.0, -angle.cos())
    }

    #[test]
    fn fresnel_normal_incidence_matches_schlick_base() {
        let (rs, rp) = fresnel_rs_rp(GLASS, 1.0);
        let r0 = ((GLASS - 1.0) / (GLASS + 1.0)).powi(2);
        assert!((rs - r0).abs() < 1e-12);
        assert!((rp - r0).abs() < 1e-12);
    }

    #[test]
    fn fresnel_grazing_reflects_everything() {
        let (rs, rp) = fresnel_rs_rp(GLASS, 0.0);
        assert!(rs > 0.999);
        assert!(rp > 0.999);
    }

    #[test]
    fn rp_vanishes_at_brewster() {
        let theta_b = brewster_angle(GLASS);
        let (rs, rp) = fresnel_rs_rp(GLASS, theta_b.cos());
        assert!(rp < 1e-9, "R_p at Brewster = {rp}");
        assert!(rs > 0.0);
    }

    #[test]
    fn unpolarized_light_polarizes_fully_at_brewster() {
        let theta_b = brewster_angle(GLASS);
        let b = polarized_specular(
            incoming_at(theta_b),
            Vec3::Z,
            GLASS,
            Polarization::UNPOLARIZED,
        );
        assert!(b.polarization.degree > 0.999, "{:?}", b.polarization);
        assert_eq!(b.polarization.orientation, 0.0); // s-aligned
                                                     // Unpolarized input never changes total energy.
        assert!((b.energy_factor - 1.0).abs() < 1e-9);
        assert!(b.polarization.is_valid());
    }

    #[test]
    fn normal_incidence_does_not_polarize() {
        let b = polarized_specular(
            Vec3::new(0.0, 0.0, -1.0),
            Vec3::Z,
            GLASS,
            Polarization::UNPOLARIZED,
        );
        assert_eq!(b.polarization.degree, 0.0);
        assert_eq!(b.energy_factor, 1.0);
    }

    #[test]
    fn s_polarized_light_reflects_stronger_than_p() {
        let angle = 1.0; // past Brewster for glass (0.9828)
        let s_in = Polarization {
            degree: 1.0,
            orientation: 0.0,
        };
        let p_in = Polarization {
            degree: 1.0,
            orientation: FRAC_PI_2,
        };
        let bs = polarized_specular(incoming_at(angle), Vec3::Z, GLASS, s_in);
        let bp = polarized_specular(incoming_at(angle), Vec3::Z, GLASS, p_in);
        assert!(
            bs.energy_factor > bp.energy_factor,
            "s {} vs p {}",
            bs.energy_factor,
            bp.energy_factor
        );
        // Energy factors bracket the unpolarized case.
        assert!(bs.energy_factor > 1.0 && bp.energy_factor < 1.0);
    }

    #[test]
    fn p_polarized_at_brewster_is_extinguished() {
        let theta_b = brewster_angle(GLASS);
        let p_in = Polarization {
            degree: 1.0,
            orientation: FRAC_PI_2,
        };
        let b = polarized_specular(incoming_at(theta_b), Vec3::Z, GLASS, p_in);
        assert!(b.energy_factor < 1e-9, "factor {}", b.energy_factor);
    }

    #[test]
    fn diffuse_bounce_depolarizes() {
        let p = Polarization {
            degree: 0.9,
            orientation: 1.0,
        };
        let d = diffuse_depolarize(p);
        assert!(d.degree < 0.05);
        assert!(d.is_valid());
    }

    #[test]
    fn energy_factor_conserves_on_average() {
        // Averaged over uniformly random incident orientations of fully
        // polarized light, the polarized energy equals the scalar model:
        // E[(1±d cos2φ)/2 weighted rs/rp] = (rs+rp)/2.
        let angle = 0.8;
        let n = 64;
        let mut acc = 0.0;
        for k in 0..n {
            let phi = std::f64::consts::PI * k as f64 / n as f64;
            let pol = Polarization {
                degree: 1.0,
                orientation: phi,
            };
            acc += polarized_specular(incoming_at(angle), Vec3::Z, GLASS, pol).energy_factor;
        }
        let mean = acc / n as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean factor {mean}");
    }

    #[test]
    fn degree_stays_valid_across_random_chains() {
        use photon_rng::{Lcg48, PhotonRng};
        let mut rng = Lcg48::new(5);
        let mut pol = Polarization::UNPOLARIZED;
        for _ in 0..10_000 {
            let angle = rng.next_f64() * 1.5;
            if rng.next_f64() < 0.5 {
                pol = polarized_specular(incoming_at(angle), Vec3::Z, GLASS, pol).polarization;
            } else {
                pol = diffuse_depolarize(pol);
            }
            assert!(pol.is_valid(), "{pol:?}");
        }
    }
}
