//! Streaming views: epoch subscriptions delivering tile deltas.
//!
//! The answer is view-independent and refines progressively — but a client
//! that polls whole frames re-downloads every pixel per publish, paying
//! full-frame bandwidth for refinements that usually touch a fraction of
//! the image. This module inverts the flow: [`RenderService::subscribe`]
//! registers a `(scene, camera)` subscription, and each time the scene's
//! epoch advances the dispatcher renders the fresh answer (through the
//! same cache/coalescing path interactive requests use), diffs it
//! tile-by-tile against the last frame it sent *that subscriber*, and
//! pushes a [`FrameDelta`] carrying only the changed tiles.
//!
//! Reassembly is exact by construction: a delta's tiles are the changed
//! tiles' complete new pixels ([`photon_core::view::diff_tiles`]), and the
//! unchanged tiles are bit-identical between the frames, so blitting each
//! delta onto the previous frame — starting from the black canvas a
//! freshly connected client holds — reproduces every epoch's image
//! bit-for-bit, equal to a full [`crate::render_parallel`] of that epoch.
//!
//! ```text
//! solve job ──publish──▶ AnswerStore ──watcher──▶ dispatcher
//!                                                    │ render fresh epoch
//!                                                    │ diff vs last sent
//! client ◀── FrameDelta { epoch, changed tiles } ────┘
//! ```
//!
//! [`RenderService::subscribe`]: crate::RenderService::subscribe

use crate::service::ServeError;
use crate::store::SceneId;
use photon_core::obs::{ObsCtx, ObsKind};
use photon_core::view::{blit_tile, squash_tile_runs, Tile};
use photon_core::wire::{self, WireMode};
use photon_core::{Camera, Image, ObsHub};
use photon_math::Rgb;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// One subscription: which scene to follow, seen from where.
#[derive(Clone, Copy, Debug)]
pub struct StreamRequest {
    /// The stored solution to follow across epochs.
    pub scene_id: SceneId,
    /// The viewpoint every epoch is rendered from.
    pub camera: Camera,
}

/// One pushed refinement: the tiles that changed between the last frame
/// sent to this subscriber and the named epoch's frame.
///
/// The very first delta of a subscription is diffed against a black canvas
/// (what [`FrameDelta::canvas`] returns), so all-black background tiles
/// are never shipped at all. A delta may carry zero tiles — the bootstrap
/// of an all-black view, or (with `ServeConfig::stream_keepalive` on) an
/// epoch republishing identical pixels — and still announces the epoch
/// advance; by default such empty republish deltas are suppressed.
#[derive(Clone, Debug)]
pub struct FrameDelta {
    /// The publication epoch this delta brings the subscriber up to.
    pub epoch: u64,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Changed tiles and their complete new pixels, in row-major tile
    /// order — the format [`photon_core::view::blit_tile`] consumes.
    pub tiles: Vec<(Tile, Vec<Rgb>)>,
}

impl FrameDelta {
    /// A black canvas of the frame's dimensions — the implicit "previous
    /// frame" of a brand-new subscriber. Apply every received delta in
    /// order to reassemble each epoch's image exactly.
    pub fn canvas(&self) -> Image {
        Image::new(self.width, self.height)
    }

    /// Blits the changed tiles onto `img`, advancing it to this delta's
    /// epoch.
    ///
    /// # Panics
    /// Panics if `img` does not match the frame's dimensions.
    pub fn apply(&self, img: &mut Image) {
        assert_eq!(
            (img.width(), img.height()),
            (self.width, self.height),
            "delta applied to a mismatched canvas"
        );
        for (tile, buf) in &self.tiles {
            blit_tile(img, *tile, buf);
        }
    }

    /// Pixels carried by the changed tiles.
    pub fn tile_pixels(&self) -> usize {
        self.tiles.iter().map(|(t, _)| t.pixel_count()).sum()
    }

    /// Pixel payload bytes carried by the changed tiles.
    pub fn tile_bytes(&self) -> usize {
        self.tile_pixels() * std::mem::size_of::<Rgb>()
    }

    /// Pixel payload bytes a full frame of this view would cost — the
    /// number a frame-per-epoch protocol would have shipped instead.
    pub fn full_frame_bytes(&self) -> usize {
        self.width * self.height * std::mem::size_of::<Rgb>()
    }

    /// True when the epoch advanced without changing any pixel.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }

    /// Squashes a contiguous run of deltas (oldest first) into one delta
    /// whose application is bit-identical to applying each in order — the
    /// slow-consumer coalescing primitive. A tile touched by several
    /// epochs keeps only its newest pixels
    /// ([`photon_core::squash_tile_runs`]), so the squash is bounded by
    /// the distinct tiles touched, not by how many epochs it covers.
    ///
    /// # Panics
    /// Panics on an empty run or mismatched frame dimensions.
    pub fn squash(run: &[FrameDelta]) -> FrameDelta {
        let last = run.last().expect("squash of an empty run");
        assert!(
            run.iter()
                .all(|d| (d.width, d.height) == (last.width, last.height)),
            "squash over mismatched frame dimensions"
        );
        FrameDelta {
            epoch: last.epoch,
            width: last.width,
            height: last.height,
            tiles: squash_tile_runs(run.iter().map(|d| d.tiles.clone())),
        }
    }

    /// Encodes this delta as a `PHOTSTRM1` frame body
    /// ([`photon_core::wire::encode_delta`]). Lossless mode decodes
    /// bit-identically; quantized mode is smaller but lossy (bounded,
    /// deterministic error).
    pub fn encode(&self, mode: WireMode) -> Vec<u8> {
        wire::encode_delta(self.epoch, self.width, self.height, &self.tiles, mode)
    }

    /// Decodes a `PHOTSTRM1` delta frame body back into a delta (pixels
    /// dequantized in lossy mode) plus the mode it was encoded with.
    pub fn decode(bytes: &[u8]) -> io::Result<(FrameDelta, WireMode)> {
        match wire::decode_frame(bytes)? {
            wire::WireFrame::Delta(d) => Ok((
                FrameDelta {
                    epoch: d.epoch,
                    width: d.width,
                    height: d.height,
                    tiles: d.tiles,
                },
                d.mode,
            )),
            _ => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a delta frame",
            )),
        }
    }
}

/// The client end of a subscription: a stream of [`FrameDelta`]s.
///
/// Dropping the handle cancels the subscription — the dispatcher sweeps
/// it out on its next activity (any message, not just a publish to this
/// scene), freeing the retained last frame.
pub struct StreamHandle {
    scene_id: SceneId,
    camera: Camera,
    rx: Receiver<FrameDelta>,
    alive: Arc<AtomicBool>,
    /// Deltas sent but not yet received on this handle — the consumer's
    /// half of the send window: the dispatcher increments on send, every
    /// successful receive decrements, and while the count sits at the
    /// window the dispatcher squashes instead of queueing.
    inflight: Arc<AtomicU64>,
    /// The service's observability hub: dropping the handle is the one
    /// place a subscription's end is certain (the dispatcher only notices
    /// later, on its next sweep), so the `SubscriberDropped` event is
    /// emitted here and nowhere else.
    obs: Option<Arc<ObsHub>>,
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
        if let Some(obs) = self.obs.as_ref() {
            obs.emit(
                ObsKind::SubscriberDropped,
                ObsCtx {
                    scene: Some(self.scene_id.0),
                    ..Default::default()
                },
            );
        }
    }
}

impl StreamHandle {
    pub(crate) fn new(
        request: StreamRequest,
        rx: Receiver<FrameDelta>,
        alive: Arc<AtomicBool>,
        inflight: Arc<AtomicU64>,
        obs: Option<Arc<ObsHub>>,
    ) -> Self {
        StreamHandle {
            scene_id: request.scene_id,
            camera: request.camera,
            rx,
            alive,
            inflight,
            obs,
        }
    }

    /// The scene this subscription follows.
    pub fn scene_id(&self) -> SceneId {
        self.scene_id
    }

    /// The subscribed viewpoint.
    pub fn camera(&self) -> Camera {
        self.camera
    }

    /// Blocks until the next delta. [`ServeError::ServiceStopped`] means
    /// the service shut down (or dropped the subscription); no further
    /// deltas will arrive.
    pub fn recv(&self) -> Result<FrameDelta, ServeError> {
        let delta = self.rx.recv().map_err(|_| ServeError::ServiceStopped)?;
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        Ok(delta)
    }

    /// Waits at most `timeout` for the next delta. On
    /// [`ServeError::TimedOut`] the subscription stays live; a later call
    /// can still receive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<FrameDelta, ServeError> {
        let delta = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServeError::TimedOut,
            RecvTimeoutError::Disconnected => ServeError::ServiceStopped,
        })?;
        self.inflight.fetch_sub(1, Ordering::AcqRel);
        Ok(delta)
    }

    /// Collects the already-delivered deltas without blocking.
    pub fn drain(&self) -> Vec<FrameDelta> {
        let deltas: Vec<FrameDelta> = self.rx.try_iter().collect();
        self.inflight
            .fetch_sub(deltas.len() as u64, Ordering::AcqRel);
        deltas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(x0: usize, y0: usize, x1: usize, y1: usize) -> Tile {
        Tile { x0, y0, x1, y1 }
    }

    #[test]
    fn delta_accounting_and_apply() {
        let t = tile(0, 0, 4, 4);
        let delta = FrameDelta {
            epoch: 3,
            width: 8,
            height: 8,
            tiles: vec![(t, vec![Rgb::WHITE; 16])],
        };
        assert_eq!(delta.tile_pixels(), 16);
        assert_eq!(delta.tile_bytes(), 16 * std::mem::size_of::<Rgb>());
        assert_eq!(delta.full_frame_bytes(), 64 * std::mem::size_of::<Rgb>());
        assert!(!delta.is_empty());
        let mut img = delta.canvas();
        delta.apply(&mut img);
        assert_eq!(img.get(2, 2), Rgb::WHITE);
        assert_eq!(img.get(6, 6), Rgb::BLACK);
    }

    #[test]
    fn squash_keeps_newest_tiles_and_last_epoch() {
        let t = tile(0, 0, 2, 2);
        let u = tile(2, 0, 4, 2);
        let a = FrameDelta {
            epoch: 1,
            width: 4,
            height: 2,
            tiles: vec![(t, vec![Rgb::gray(0.2); 4])],
        };
        let b = FrameDelta {
            epoch: 2,
            width: 4,
            height: 2,
            tiles: vec![(t, vec![Rgb::gray(0.8); 4]), (u, vec![Rgb::WHITE; 4])],
        };
        let squashed = FrameDelta::squash(&[a.clone(), b.clone()]);
        assert_eq!(squashed.epoch, 2);
        assert_eq!(squashed.tiles.len(), 2, "tile t must collapse to newest");
        let mut by_order = a.canvas();
        a.apply(&mut by_order);
        b.apply(&mut by_order);
        let mut by_squash = squashed.canvas();
        squashed.apply(&mut by_squash);
        assert_eq!(by_squash.pixels(), by_order.pixels());
    }

    #[test]
    fn wire_roundtrip_through_the_codec_wrappers() {
        let t = tile(0, 0, 3, 3);
        let delta = FrameDelta {
            epoch: 7,
            width: 6,
            height: 6,
            tiles: vec![(t, (0..9).map(|i| Rgb::gray(i as f64 / 9.0)).collect())],
        };
        let (back, mode) = FrameDelta::decode(&delta.encode(WireMode::Lossless)).unwrap();
        assert_eq!(mode, WireMode::Lossless);
        assert_eq!(back.epoch, 7);
        assert_eq!(back.tiles, delta.tiles, "lossless must be bit-identical");
        let (lossy, mode) = FrameDelta::decode(&delta.encode(WireMode::Quantized)).unwrap();
        assert_eq!(mode, WireMode::Quantized);
        assert_eq!(lossy.tiles.len(), 1);
    }

    #[test]
    #[should_panic(expected = "mismatched canvas")]
    fn apply_rejects_wrong_canvas() {
        let delta = FrameDelta {
            epoch: 0,
            width: 8,
            height: 8,
            tiles: Vec::new(),
        };
        delta.apply(&mut Image::new(4, 4));
    }
}
