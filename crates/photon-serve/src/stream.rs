//! Streaming views: epoch subscriptions delivering tile deltas.
//!
//! The answer is view-independent and refines progressively — but a client
//! that polls whole frames re-downloads every pixel per publish, paying
//! full-frame bandwidth for refinements that usually touch a fraction of
//! the image. This module inverts the flow: [`RenderService::subscribe`]
//! registers a `(scene, camera)` subscription, and each time the scene's
//! epoch advances the dispatcher renders the fresh answer (through the
//! same cache/coalescing path interactive requests use), diffs it
//! tile-by-tile against the last frame it sent *that subscriber*, and
//! pushes a [`FrameDelta`] carrying only the changed tiles.
//!
//! Reassembly is exact by construction: a delta's tiles are the changed
//! tiles' complete new pixels ([`photon_core::view::diff_tiles`]), and the
//! unchanged tiles are bit-identical between the frames, so blitting each
//! delta onto the previous frame — starting from the black canvas a
//! freshly connected client holds — reproduces every epoch's image
//! bit-for-bit, equal to a full [`crate::render_parallel`] of that epoch.
//!
//! ```text
//! solve job ──publish──▶ AnswerStore ──watcher──▶ dispatcher
//!                                                    │ render fresh epoch
//!                                                    │ diff vs last sent
//! client ◀── FrameDelta { epoch, changed tiles } ────┘
//! ```
//!
//! [`RenderService::subscribe`]: crate::RenderService::subscribe

use crate::service::ServeError;
use crate::store::SceneId;
use photon_core::obs::{ObsCtx, ObsKind};
use photon_core::view::{blit_tile, Tile};
use photon_core::{Camera, Image, ObsHub};
use photon_math::Rgb;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::time::Duration;

/// One subscription: which scene to follow, seen from where.
#[derive(Clone, Copy, Debug)]
pub struct StreamRequest {
    /// The stored solution to follow across epochs.
    pub scene_id: SceneId,
    /// The viewpoint every epoch is rendered from.
    pub camera: Camera,
}

/// One pushed refinement: the tiles that changed between the last frame
/// sent to this subscriber and the named epoch's frame.
///
/// The very first delta of a subscription is diffed against a black canvas
/// (what [`FrameDelta::canvas`] returns), so all-black background tiles
/// are never shipped at all. A delta may carry zero tiles — an epoch can
/// republish an identical answer — and still announces the epoch advance.
#[derive(Clone, Debug)]
pub struct FrameDelta {
    /// The publication epoch this delta brings the subscriber up to.
    pub epoch: u64,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Changed tiles and their complete new pixels, in row-major tile
    /// order — the format [`photon_core::view::blit_tile`] consumes.
    pub tiles: Vec<(Tile, Vec<Rgb>)>,
}

impl FrameDelta {
    /// A black canvas of the frame's dimensions — the implicit "previous
    /// frame" of a brand-new subscriber. Apply every received delta in
    /// order to reassemble each epoch's image exactly.
    pub fn canvas(&self) -> Image {
        Image::new(self.width, self.height)
    }

    /// Blits the changed tiles onto `img`, advancing it to this delta's
    /// epoch.
    ///
    /// # Panics
    /// Panics if `img` does not match the frame's dimensions.
    pub fn apply(&self, img: &mut Image) {
        assert_eq!(
            (img.width(), img.height()),
            (self.width, self.height),
            "delta applied to a mismatched canvas"
        );
        for (tile, buf) in &self.tiles {
            blit_tile(img, *tile, buf);
        }
    }

    /// Pixels carried by the changed tiles.
    pub fn tile_pixels(&self) -> usize {
        self.tiles.iter().map(|(t, _)| t.pixel_count()).sum()
    }

    /// Pixel payload bytes carried by the changed tiles.
    pub fn tile_bytes(&self) -> usize {
        self.tile_pixels() * std::mem::size_of::<Rgb>()
    }

    /// Pixel payload bytes a full frame of this view would cost — the
    /// number a frame-per-epoch protocol would have shipped instead.
    pub fn full_frame_bytes(&self) -> usize {
        self.width * self.height * std::mem::size_of::<Rgb>()
    }

    /// True when the epoch advanced without changing any pixel.
    pub fn is_empty(&self) -> bool {
        self.tiles.is_empty()
    }
}

/// The client end of a subscription: a stream of [`FrameDelta`]s.
///
/// Dropping the handle cancels the subscription — the dispatcher sweeps
/// it out on its next activity (any message, not just a publish to this
/// scene), freeing the retained last frame.
pub struct StreamHandle {
    scene_id: SceneId,
    camera: Camera,
    rx: Receiver<FrameDelta>,
    alive: Arc<AtomicBool>,
    /// The service's observability hub: dropping the handle is the one
    /// place a subscription's end is certain (the dispatcher only notices
    /// later, on its next sweep), so the `SubscriberDropped` event is
    /// emitted here and nowhere else.
    obs: Option<Arc<ObsHub>>,
}

impl Drop for StreamHandle {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
        if let Some(obs) = self.obs.as_ref() {
            obs.emit(
                ObsKind::SubscriberDropped,
                ObsCtx {
                    scene: Some(self.scene_id.0),
                    ..Default::default()
                },
            );
        }
    }
}

impl StreamHandle {
    pub(crate) fn new(
        request: StreamRequest,
        rx: Receiver<FrameDelta>,
        alive: Arc<AtomicBool>,
        obs: Option<Arc<ObsHub>>,
    ) -> Self {
        StreamHandle {
            scene_id: request.scene_id,
            camera: request.camera,
            rx,
            alive,
            obs,
        }
    }

    /// The scene this subscription follows.
    pub fn scene_id(&self) -> SceneId {
        self.scene_id
    }

    /// The subscribed viewpoint.
    pub fn camera(&self) -> Camera {
        self.camera
    }

    /// Blocks until the next delta. [`ServeError::ServiceStopped`] means
    /// the service shut down (or dropped the subscription); no further
    /// deltas will arrive.
    pub fn recv(&self) -> Result<FrameDelta, ServeError> {
        self.rx.recv().map_err(|_| ServeError::ServiceStopped)
    }

    /// Waits at most `timeout` for the next delta. On
    /// [`ServeError::TimedOut`] the subscription stays live; a later call
    /// can still receive.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<FrameDelta, ServeError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ServeError::TimedOut,
            RecvTimeoutError::Disconnected => ServeError::ServiceStopped,
        })
    }

    /// Collects the already-delivered deltas without blocking.
    pub fn drain(&self) -> Vec<FrameDelta> {
        self.rx.try_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tile(x0: usize, y0: usize, x1: usize, y1: usize) -> Tile {
        Tile { x0, y0, x1, y1 }
    }

    #[test]
    fn delta_accounting_and_apply() {
        let t = tile(0, 0, 4, 4);
        let delta = FrameDelta {
            epoch: 3,
            width: 8,
            height: 8,
            tiles: vec![(t, vec![Rgb::WHITE; 16])],
        };
        assert_eq!(delta.tile_pixels(), 16);
        assert_eq!(delta.tile_bytes(), 16 * std::mem::size_of::<Rgb>());
        assert_eq!(delta.full_frame_bytes(), 64 * std::mem::size_of::<Rgb>());
        assert!(!delta.is_empty());
        let mut img = delta.canvas();
        delta.apply(&mut img);
        assert_eq!(img.get(2, 2), Rgb::WHITE);
        assert_eq!(img.get(6, 6), Rgb::BLACK);
    }

    #[test]
    #[should_panic(expected = "mismatched canvas")]
    fn apply_rejects_wrong_canvas() {
        let delta = FrameDelta {
            epoch: 0,
            width: 8,
            height: 8,
            tiles: Vec::new(),
        };
        delta.apply(&mut Image::new(4, 4));
    }
}
