//! The solve pipeline: scenes in, progressively refining answers out.
//!
//! Before this layer, photon-serve could only replay answers computed
//! offline. [`SolverPool`] closes the loop: a client submits a
//! [`SolveRequest`] — a scene, a backend choice, and a convergence target —
//! and a pool of background solver threads drives the chosen
//! [`SolverEngine`] batch by batch. After every `publish_every` batches the
//! engine's [`snapshot`](SolverEngine::snapshot) is published into the
//! shared [`AnswerStore`] under the next epoch, so the render path
//! immediately serves views from the freshest solution (its view cache is
//! keyed by epoch — refinement invalidates stale images automatically) and
//! render quality visibly converges while clients keep querying.
//!
//! Backends map onto the three engines:
//!
//! | [`BackendChoice`] | engine | notes |
//! |-------------------|--------|-------|
//! | `Serial` | `photon_core::Simulator` | the reference |
//! | `Threaded` | `photon_par::ParEngine` | deterministic tally replay: bit-identical to `Serial` |
//! | `Distributed` | `photon_dist::DistEngine` | virtual-time ranks; progress reports model seconds |

use crate::store::{AnswerStore, SceneId};
use photon_core::{SimConfig, Simulator, SolverEngine};
use photon_dist::{BalanceMode, BatchMode, DistConfig, DistEngine};
use photon_geom::Scene;
use photon_par::{ParConfig, ParEngine, TallyMode};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which engine solves the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// The serial reference simulator.
    Serial,
    /// Shared-memory threads with deterministic tally replay — the answer
    /// is bit-identical to `Serial` for the same seed and photon count.
    Threaded {
        /// Worker thread count.
        threads: usize,
    },
    /// The message-passing world on virtual time (naive ownership, fixed
    /// batches — progress reports carry model seconds).
    Distributed {
        /// Number of ranks.
        nranks: usize,
    },
}

/// One solve job: a scene, a backend, and a convergence target.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Name for the stored entry (logs, bench reports).
    pub name: String,
    /// The geometry to solve.
    pub scene: Scene,
    /// Which engine runs it.
    pub backend: BackendChoice,
    /// Seed of the photon stream.
    pub seed: u64,
    /// Photons per engine step.
    pub batch_size: u64,
    /// Convergence target: the job completes once this many photons have
    /// been emitted.
    pub target_photons: u64,
    /// Publish a snapshot into the store every this many batches (the
    /// final state always publishes).
    pub publish_every: u64,
}

impl SolveRequest {
    /// A serial job with service defaults; adjust fields as needed.
    pub fn new(name: impl Into<String>, scene: Scene) -> Self {
        SolveRequest {
            name: name.into(),
            scene,
            backend: BackendChoice::Serial,
            seed: 0x5EED,
            batch_size: 2_000,
            target_photons: 20_000,
            publish_every: 1,
        }
    }
}

/// Handle to one queued job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolveJobId(pub u64);

impl std::fmt::Display for SolveJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "solve#{}", self.0)
    }
}

/// One published epoch of a running (or finished) solve.
#[derive(Clone, Copy, Debug)]
pub struct SolveProgress {
    /// The job that published.
    pub job: SolveJobId,
    /// The store entry the answer went into.
    pub scene_id: SceneId,
    /// The epoch this snapshot was published under.
    pub epoch: u64,
    /// Photons emitted so far.
    pub emitted: u64,
    /// Leaf bins in the forest (refinement progress).
    pub leaf_bins: u64,
    /// Solve time so far — wall seconds, or virtual seconds when
    /// [`SolveProgress::virtual_time`] is set.
    pub elapsed_seconds: f64,
    /// True when `elapsed_seconds` is model time (distributed backend).
    pub virtual_time: bool,
    /// True on the job's final publish.
    pub done: bool,
}

/// The client's end of a submitted job: the store id to render against,
/// plus a stream of per-epoch progress reports.
pub struct SolveHandle {
    job: SolveJobId,
    scene_id: SceneId,
    rx: Receiver<SolveProgress>,
}

impl SolveHandle {
    /// The job's id.
    pub fn job_id(&self) -> SolveJobId {
        self.job
    }

    /// The store entry this job publishes into — valid for render requests
    /// immediately (epoch 0 renders black until the first publish).
    pub fn scene_id(&self) -> SceneId {
        self.scene_id
    }

    /// Waits up to `timeout` for the next progress report. `None` when the
    /// timeout passes, or when the job is finished and fully drained.
    pub fn next_progress(&self, timeout: Duration) -> Option<SolveProgress> {
        match self.rx.recv_timeout(timeout) {
            Ok(p) => Some(p),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains progress until a report with `epoch >= epoch` arrives, up to
    /// `timeout` total.
    pub fn wait_epoch(&self, epoch: u64, timeout: Duration) -> Option<SolveProgress> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            let p = self.next_progress(left)?;
            if p.epoch >= epoch {
                return Some(p);
            }
        }
    }

    /// Drains progress until the final (`done`) report, up to `timeout`
    /// total.
    pub fn wait_done(&self, timeout: Duration) -> Option<SolveProgress> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            let p = self.next_progress(left)?;
            if p.done {
                return Some(p);
            }
        }
    }
}

struct QueuedJob {
    id: SolveJobId,
    scene_id: SceneId,
    request: SolveRequest,
    progress: Sender<SolveProgress>,
}

/// A pool of background solver threads feeding an [`AnswerStore`].
///
/// Submission registers the scene immediately (so render requests can
/// target it before the first batch lands) and queues the job; any free
/// worker picks it up, builds the backend engine, and drives it to the
/// convergence target, publishing snapshots along the way. Dropping the
/// pool (or [`SolverPool::shutdown`]) finishes queued jobs first.
pub struct SolverPool {
    store: Arc<AnswerStore>,
    tx: Option<Sender<QueuedJob>>,
    workers: Vec<JoinHandle<()>>,
    next_job: AtomicU64,
}

impl SolverPool {
    /// Starts `workers` solver threads over `store`.
    pub fn start(store: Arc<AnswerStore>, workers: usize) -> Self {
        assert!(workers >= 1, "a solver pool needs at least one worker");
        let (tx, rx) = channel::<QueuedJob>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|w| {
                let rx = Arc::clone(&rx);
                let store = Arc::clone(&store);
                std::thread::Builder::new()
                    .name(format!("photon-solve-{w}"))
                    .spawn(move || loop {
                        // Hold the lock only to pop; solving runs unlocked.
                        let job = match rx.lock().unwrap().recv() {
                            Ok(job) => job,
                            Err(_) => return,
                        };
                        run_job(&store, job);
                    })
                    .expect("spawn solver worker")
            })
            .collect();
        SolverPool {
            store,
            tx: Some(tx),
            workers: handles,
            next_job: AtomicU64::new(0),
        }
    }

    /// The store this pool publishes into.
    pub fn store(&self) -> &Arc<AnswerStore> {
        &self.store
    }

    /// Registers the scene (epoch 0) and queues the solve; returns the
    /// handle carrying the renderable [`SceneId`] and the progress stream.
    pub fn submit(&self, request: SolveRequest) -> SolveHandle {
        let id = SolveJobId(self.next_job.fetch_add(1, Ordering::Relaxed));
        let scene_id = self
            .store
            .register(request.name.clone(), request.scene.clone());
        let (progress, rx) = channel();
        let job = QueuedJob {
            id,
            scene_id,
            request,
            progress,
        };
        if let Some(tx) = &self.tx {
            // A send error means the workers are gone; the dropped progress
            // sender surfaces it as a drained handle.
            let _ = tx.send(job);
        }
        SolveHandle {
            job: id,
            scene_id,
            rx,
        }
    }

    /// Stops accepting jobs, finishes what is queued, and joins the
    /// workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        drop(self.tx.take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds the backend engine and drives it to the convergence target.
fn run_job(store: &AnswerStore, job: QueuedJob) {
    let QueuedJob {
        id,
        scene_id,
        request,
        progress,
    } = job;
    let batch = request.batch_size.max(1);
    let mut engine: Box<dyn SolverEngine> = match request.backend {
        BackendChoice::Serial => Box::new(Simulator::new(
            request.scene,
            SimConfig {
                seed: request.seed,
                ..Default::default()
            },
        )),
        BackendChoice::Threaded { threads } => Box::new(ParEngine::new(
            request.scene,
            ParConfig {
                seed: request.seed,
                threads: threads.max(1),
                tally: TallyMode::Deterministic,
                ..Default::default()
            },
        )),
        BackendChoice::Distributed { nranks } => {
            let nranks = nranks.max(1);
            Box::new(DistEngine::new(
                request.scene,
                DistConfig {
                    seed: request.seed,
                    nranks,
                    // Service jobs skip the pilot so every emitted photon
                    // counts toward the target deterministically. The
                    // Fixed payload is unused on the engine path — ranks
                    // size batches from the step hint; Fixed only means
                    // "no adaptive controller" here.
                    balance: BalanceMode::Naive,
                    batch: BatchMode::Fixed(1),
                    ..Default::default()
                },
            ))
        }
    };
    let every = request.publish_every.max(1);
    let mut batches = 0u64;
    loop {
        let report = engine.step(batch);
        batches += 1;
        let done = report.emitted_total >= request.target_photons;
        if done || batches.is_multiple_of(every) {
            let epoch = store.publish(scene_id, engine.snapshot());
            // A dropped handle is fine; the publish still refreshed the
            // store.
            let _ = progress.send(SolveProgress {
                job: id,
                scene_id,
                epoch,
                emitted: report.emitted_total,
                leaf_bins: report.leaf_bins,
                elapsed_seconds: report.elapsed_seconds,
                virtual_time: engine.virtual_time(),
                done,
            });
        }
        if done {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_scenes::cornell_box;

    fn quick_request(backend: BackendChoice) -> SolveRequest {
        let mut r = SolveRequest::new("cornell", cornell_box());
        r.backend = backend;
        r.seed = 31;
        r.batch_size = 1_000;
        r.target_photons = 3_000;
        r
    }

    #[test]
    fn serial_job_publishes_monotone_epochs_to_done() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let handle = pool.submit(quick_request(BackendChoice::Serial));
        let mut epochs = Vec::new();
        let mut last = None;
        while let Some(p) = handle.next_progress(Duration::from_secs(60)) {
            epochs.push(p.epoch);
            last = Some(p);
        }
        let last = last.expect("at least one publish");
        assert!(last.done);
        assert_eq!(last.emitted, 3_000);
        assert_eq!(epochs, vec![1, 2, 3], "one epoch per batch, in order");
        assert_eq!(store.get(handle.scene_id()).unwrap().epoch, 3);
        assert_eq!(
            store.get(handle.scene_id()).unwrap().answer.emitted(),
            3_000
        );
    }

    #[test]
    fn every_backend_reaches_the_target() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 2);
        let backends = [
            BackendChoice::Serial,
            BackendChoice::Threaded { threads: 3 },
            BackendChoice::Distributed { nranks: 2 },
        ];
        let handles: Vec<SolveHandle> = backends
            .iter()
            .map(|&b| pool.submit(quick_request(b)))
            .collect();
        for (h, b) in handles.iter().zip(&backends) {
            let done = h.wait_done(Duration::from_secs(120)).expect("job finished");
            assert!(done.emitted >= 3_000, "{:?}", done);
            // Only the distributed backend reports model time.
            assert_eq!(
                done.virtual_time,
                matches!(b, BackendChoice::Distributed { .. })
            );
            let entry = store.get(h.scene_id()).unwrap();
            assert!(entry.epoch >= 1);
            assert_eq!(entry.answer.emitted(), done.emitted);
        }
    }

    #[test]
    fn publish_every_coalesces_intermediate_snapshots() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let mut req = quick_request(BackendChoice::Serial);
        req.batch_size = 500;
        req.target_photons = 3_000; // 6 batches
        req.publish_every = 4; // publish at batch 4 and at done
        let handle = pool.submit(req);
        let mut reports = Vec::new();
        while let Some(p) = handle.next_progress(Duration::from_secs(60)) {
            reports.push(p);
        }
        assert_eq!(reports.len(), 2, "{reports:?}");
        assert_eq!(reports[0].emitted, 2_000);
        assert!(reports[1].done && reports[1].emitted == 3_000);
    }

    #[test]
    fn shutdown_finishes_queued_jobs() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let handles: Vec<SolveHandle> = (0..3)
            .map(|i| {
                let mut r = quick_request(BackendChoice::Serial);
                r.seed = i;
                r.target_photons = 1_000;
                pool.submit(r)
            })
            .collect();
        pool.shutdown();
        for h in handles {
            let done = h.wait_done(Duration::from_secs(60)).expect("finished");
            assert!(done.done);
        }
    }
}
