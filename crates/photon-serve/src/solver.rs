//! The solve pipeline: scenes in, progressively refining answers out,
//! scheduled fairly across many concurrent jobs.
//!
//! Before this layer, photon-serve could only replay answers computed
//! offline. [`SolverPool`] closes the loop: a client submits a
//! [`SolveRequest`] — a scene, a backend choice, and a convergence target —
//! and a pool of background solver threads drives the chosen
//! [`SolverEngine`] batch by batch, publishing snapshots into the shared
//! [`AnswerStore`] under increasing epochs so the render path serves views
//! from the freshest solution while the solve is still running.
//!
//! **Scheduling.** The pool is *not* run-to-completion: because every
//! engine is an incremental `step → snapshot` machine that persists
//! between calls, the scheduler's unit of work is one **slice** — a single
//! `engine.step(batch)`. Workers pull slices via weighted round-robin over
//! all runnable jobs, so a 10M-photon tenant and a 20k-photon tenant on a
//! one-worker pool interleave instead of serializing, and the light job
//! finishes while the heavy one keeps refining. Each job carries a
//! [`priority`](SolveRequest::priority) (its round-robin weight) and a
//! [`tenant`](SolveRequest::tenant) tag; per-tenant photon budgets set via
//! [`SolverPool::set_tenant_budget`] are enforced at slice grant — an
//! exhausted tenant's jobs park until more budget arrives, without
//! stalling anyone else.
//!
//! **Lifecycle.** A running job's [`SolveHandle`] can
//! [`pause`](SolveHandle::pause) (parks after the in-flight slice),
//! [`resume`](SolveHandle::resume), and [`cancel`](SolveHandle::cancel)
//! (publishes a final snapshot of whatever was solved and frees the job's
//! slot). Scheduler state — queue depth, per-job photons/sec and
//! epochs/sec, slices granted per tenant — is observable through
//! [`SolverPool::metrics`] or, attached to a `RenderService`, inside every
//! [`crate::MetricsSnapshot`].
//!
//! **Checkpoint & migrate.** The pool freezes a job's engine into an
//! [`EngineCheckpoint`] whenever it parks on pause, whenever cancel or a
//! pool shutdown finalizes it, and on demand via
//! [`SolveHandle::checkpoint`]. Submitting that checkpoint to any pool
//! through [`SolveRequest::resume_from`] (or [`SolveRequest::resume`])
//! continues the solve where it stopped — on the order-preserving backends
//! (`Serial`, `Threaded`) the final answer is bit-identical to a job that
//! was never interrupted, and tenant budgets are charged only for photons
//! emitted on the resuming pool. Checkpoint counts and encoded bytes
//! surface in [`crate::SolverMetricsSnapshot`].
//!
//! Backends map onto the three engines:
//!
//! | [`BackendChoice`] | engine | notes |
//! |-------------------|--------|-------|
//! | `Serial` | `photon_core::Simulator` | the reference |
//! | `Threaded` | `photon_par::ParEngine` | deterministic tally replay: bit-identical to `Serial` |
//! | `Distributed` | `photon_dist::DistEngine` | virtual-time ranks; progress reports model seconds |

use crate::metrics::{SolveJobMetrics, SolverMetricsSnapshot, SolverStatsSource, TenantMetrics};
use crate::store::{AnswerStore, SceneId};
use photon_core::obs::{ObsCtx, ObsKind, Stage};
use photon_core::{EngineCheckpoint, ForestFootprint, ObsHub, SimConfig, Simulator, SolverEngine};
use photon_dist::{BalanceMode, BatchMode, DistConfig, DistEngine};
use photon_geom::Scene;
use photon_par::{ParConfig, ParEngine};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tenant tag used when a request does not set one.
pub const DEFAULT_TENANT: &str = "default";

/// Which engine solves the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendChoice {
    /// The serial reference simulator.
    Serial,
    /// Shared-memory threads with deterministic tally replay — the answer
    /// is bit-identical to `Serial` for the same seed and photon count.
    Threaded {
        /// Worker thread count.
        threads: usize,
    },
    /// The message-passing world on virtual time (naive ownership, fixed
    /// batches — progress reports carry model seconds).
    Distributed {
        /// Number of ranks.
        nranks: usize,
    },
}

/// One solve job: a scene, a backend, a convergence target, and how it
/// shares the pool.
#[derive(Clone, Debug)]
pub struct SolveRequest {
    /// Name for the stored entry (logs, bench reports).
    pub name: String,
    /// The geometry to solve.
    pub scene: Scene,
    /// Which engine runs it.
    pub backend: BackendChoice,
    /// Seed of the photon stream.
    pub seed: u64,
    /// Photons per engine step — also the scheduler's slice size, so it
    /// bounds how long this job can hold a worker before others run.
    pub batch_size: u64,
    /// Convergence target: the job completes once this many photons have
    /// been emitted.
    pub target_photons: u64,
    /// Publish a snapshot into the store every this many batches (the
    /// final state always publishes).
    pub publish_every: u64,
    /// Weighted-round-robin weight: slices granted per scheduling round
    /// relative to other runnable jobs (clamped to ≥ 1).
    pub priority: u32,
    /// Tenant tag for quota accounting and fairness metrics.
    pub tenant: String,
    /// Starting checkpoint: when set, the job's engine restores this state
    /// before its first batch and the solve continues the checkpointed
    /// photon stream — the migration primitive that moves a paused job to
    /// another pool. The checkpoint must match the request's scene (patch
    /// count) and [`seed`](SolveRequest::seed); [`SolverPool::submit`]
    /// panics otherwise. [`target_photons`](SolveRequest::target_photons)
    /// still counts *total* photons, so a checkpoint at or past the target
    /// publishes immediately. Tenant budgets are only charged for photons
    /// emitted on this pool, never for the resumed ones.
    pub resume_from: Option<Arc<EngineCheckpoint>>,
}

impl SolveRequest {
    /// A serial job with service defaults; adjust fields as needed.
    pub fn new(name: impl Into<String>, scene: Scene) -> Self {
        SolveRequest {
            name: name.into(),
            scene,
            backend: BackendChoice::Serial,
            seed: 0x5EED,
            batch_size: 2_000,
            target_photons: 20_000,
            publish_every: 1,
            priority: 1,
            tenant: DEFAULT_TENANT.to_string(),
            resume_from: None,
        }
    }

    /// A request that resumes `checkpoint` over `scene` — seed and split
    /// policy are adopted from the checkpoint so the stream continues.
    pub fn resume(
        name: impl Into<String>,
        scene: Scene,
        checkpoint: Arc<EngineCheckpoint>,
    ) -> Self {
        let mut request = SolveRequest::new(name, scene);
        request.seed = checkpoint.seed();
        request.resume_from = Some(checkpoint);
        request
    }
}

/// Handle to one queued job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SolveJobId(pub u64);

impl std::fmt::Display for SolveJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "solve#{}", self.0)
    }
}

/// One published epoch of a running (or finished) solve.
#[derive(Clone, Copy, Debug)]
pub struct SolveProgress {
    /// The job that published.
    pub job: SolveJobId,
    /// The store entry the answer went into.
    pub scene_id: SceneId,
    /// The epoch this snapshot was published under.
    pub epoch: u64,
    /// Photons emitted so far.
    pub emitted: u64,
    /// Leaf bins in the forest (refinement progress).
    pub leaf_bins: u64,
    /// Solve time so far — wall seconds, or virtual seconds when
    /// [`SolveProgress::virtual_time`] is set.
    pub elapsed_seconds: f64,
    /// True when `elapsed_seconds` is model time (distributed backend).
    pub virtual_time: bool,
    /// True on the job's final publish.
    pub done: bool,
    /// True when the final publish came from [`SolveHandle::cancel`]
    /// rather than reaching the convergence target.
    pub canceled: bool,
}

/// The client's end of a submitted job: the store id to render against, a
/// stream of per-epoch progress reports, and the job's lifecycle controls.
pub struct SolveHandle {
    job: SolveJobId,
    scene_id: SceneId,
    rx: Receiver<SolveProgress>,
    shared: Arc<Shared>,
}

impl SolveHandle {
    /// The job's id.
    pub fn job_id(&self) -> SolveJobId {
        self.job
    }

    /// The store entry this job publishes into — valid for render requests
    /// immediately (epoch 0 renders black until the first publish).
    pub fn scene_id(&self) -> SceneId {
        self.scene_id
    }

    /// Parks the job after its in-flight slice (if any) completes; no
    /// further slices are granted until [`resume`](Self::resume). Pausing
    /// a finished job is a no-op.
    pub fn pause(&self) {
        self.shared.pause(self.job);
    }

    /// Returns a paused job to the run queue.
    pub fn resume(&self) {
        self.shared.resume(self.job);
    }

    /// Cancels the job: a worker publishes one final snapshot of whatever
    /// has been solved (so renders keep the best available answer), sends
    /// a terminal progress report with [`SolveProgress::canceled`] set,
    /// and the job's slot frees for other tenants. Canceling a finished
    /// job is a no-op.
    pub fn cancel(&self) {
        self.shared.cancel(self.job);
    }

    /// The job's latest [`EngineCheckpoint`] — the migration payload that
    /// resumes this solve on any pool via [`SolveRequest::resume_from`].
    ///
    /// The pool checkpoints a job when it parks on [`pause`](Self::pause),
    /// when [`cancel`](Self::cancel) or a pool shutdown finalizes it, and
    /// on demand here whenever the parked engine has advanced past the
    /// stored checkpoint (the freeze runs outside the scheduler lock, so
    /// other jobs keep receiving slices). The handle outlives its pool, so
    /// the checkpoint of a job canceled by shutdown stays fetchable after
    /// the pool is dropped.
    ///
    /// Returns whatever was last recorded — which may be `None` — while a
    /// worker holds the engine mid-slice (pause first, then wait for the
    /// progress stream to quiesce), for a job that never held any state,
    /// and for a job that ran to normal convergence: a converged job's
    /// engine is dropped without a final freeze, because its complete
    /// answer is already published in the store.
    pub fn checkpoint(&self) -> Option<Arc<EngineCheckpoint>> {
        self.shared.checkpoint_of(self.job)
    }

    /// Waits up to `timeout` for the next progress report. `None` when the
    /// timeout passes, or when the job is finished and fully drained.
    pub fn next_progress(&self, timeout: Duration) -> Option<SolveProgress> {
        match self.rx.recv_timeout(timeout) {
            Ok(p) => Some(p),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Drains progress until a report with `epoch >= epoch` arrives, up to
    /// `timeout` total.
    pub fn wait_epoch(&self, epoch: u64, timeout: Duration) -> Option<SolveProgress> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            let p = self.next_progress(left)?;
            if p.epoch >= epoch {
                return Some(p);
            }
        }
    }

    /// Drains progress until the final (`done`) report, up to `timeout`
    /// total.
    pub fn wait_done(&self, timeout: Duration) -> Option<SolveProgress> {
        let deadline = Instant::now() + timeout;
        loop {
            let left = deadline.checked_duration_since(Instant::now())?;
            let p = self.next_progress(left)?;
            if p.done {
                return Some(p);
            }
        }
    }
}

/// Where a job sits in the scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Runnable: in the round-robin queue, waiting for a slice.
    Ready,
    /// A worker holds the engine and is stepping it.
    InSlice,
    /// Parked by [`SolveHandle::pause`].
    Paused,
    /// Parked because the tenant's photon budget ran out.
    QuotaBlocked,
    /// Finished — converged or canceled.
    Done,
}

struct JobState {
    id: SolveJobId,
    scene_id: SceneId,
    tenant: String,
    priority: u32,
    target_photons: u64,
    batch_size: u64,
    publish_every: u64,
    /// Everything needed to construct the backend engine (including the
    /// scene geometry). Consumed at the first slice grant so finished
    /// jobs don't retain a `Scene` copy for the pool's lifetime.
    build: Option<SolveRequest>,
    progress: Option<Sender<SolveProgress>>,
    /// The persistent engine, parked here between slices. `None` before
    /// the first slice (built lazily on a worker) and while leased.
    engine: Option<Box<dyn SolverEngine>>,
    /// Latest checkpoint of this job: the starting checkpoint at submit
    /// (when resuming), refreshed whenever the pool checkpoints the job —
    /// on pause, on cancel/shutdown finalization, and on demand through
    /// [`SolveHandle::checkpoint`].
    checkpoint: Option<Arc<EngineCheckpoint>>,
    /// Photons inherited from [`SolveRequest::resume_from`] (0 otherwise).
    resumed_photons: u64,
    phase: Phase,
    /// Remaining slices this scheduling round (refilled to `priority`).
    credit: u32,
    pause_requested: bool,
    cancel_requested: bool,
    canceled: bool,
    emitted: u64,
    batches: u64,
    slices: u64,
    epochs: u64,
    /// Wall seconds of granted slice time (what the pool spent on it).
    busy_seconds: f64,
    /// Forest arena footprint after the job's latest slice (zero until the
    /// first slice lands).
    footprint: ForestFootprint,
}

impl JobState {
    fn metrics_state(&self) -> &'static str {
        match self.phase {
            Phase::Ready => "queued",
            Phase::InSlice => "running",
            Phase::Paused => "paused",
            Phase::QuotaBlocked => "quota-blocked",
            Phase::Done if self.canceled => "canceled",
            Phase::Done => "done",
        }
    }
}

#[derive(Default)]
struct TenantState {
    /// Photon budget still grantable; `None` = unlimited.
    budget: Option<u64>,
    photons_used: u64,
    slices: u64,
}

/// Scheduler state, guarded by one mutex (slices run unlocked; the lock is
/// only held to grant and return them).
struct Sched {
    jobs: BTreeMap<u64, JobState>,
    /// Round-robin order over `Phase::Ready` jobs — id in `rr` iff Ready.
    rr: VecDeque<u64>,
    tenants: HashMap<String, TenantState>,
    /// Checkpoints taken by this pool, and their total `PHOTCK1` bytes.
    checkpoints_taken: u64,
    checkpoint_bytes: u64,
    draining: bool,
    /// The store's shared observability hub (also held by [`Shared`]);
    /// kept here so grant/park/checkpoint edges can be recorded from
    /// methods that only see the scheduler state.
    obs: Arc<ObsHub>,
}

impl Sched {
    fn job(&mut self, id: SolveJobId) -> Option<&mut JobState> {
        self.jobs.get_mut(&id.0)
    }

    /// Stores `checkpoint` as job `id`'s latest and accounts it.
    fn record_checkpoint(&mut self, id: SolveJobId, checkpoint: Arc<EngineCheckpoint>) {
        self.checkpoints_taken += 1;
        self.checkpoint_bytes += checkpoint.encoded_size();
        self.obs.emit(
            ObsKind::CheckpointFrozen,
            ObsCtx {
                job: Some(id.0),
                payload: checkpoint.encoded_size(),
                ..Default::default()
            },
        );
        if let Some(job) = self.job(id) {
            job.checkpoint = Some(checkpoint);
        }
    }

    fn make_ready(&mut self, id: u64) {
        if let Some(job) = self.jobs.get_mut(&id) {
            job.phase = Phase::Ready;
            if !self.rr.contains(&id) {
                self.rr.push_back(id);
            }
        }
    }

    fn unqueue(&mut self, id: u64) {
        self.rr.retain(|&x| x != id);
    }

    fn tenant_remaining(&self, tenant: &str) -> Option<u64> {
        self.tenants.get(tenant).and_then(|t| t.budget)
    }

    /// Returns `tenant`'s quota-blocked jobs to the run queue (after a
    /// budget top-up, or when a slice's reservation reconciles upward).
    fn unblock_tenant(&mut self, tenant: &str) {
        let blocked: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.phase == Phase::QuotaBlocked && j.tenant == tenant)
            .map(|j| j.id.0)
            .collect();
        for id in blocked {
            self.make_ready(id);
        }
    }

    /// Weighted round-robin slice grant: cycle the ready queue, spending
    /// one credit per grant; when every ready job is out of credit, refill
    /// each to its priority and go again. A job with priority `p` thus
    /// receives `p` slices per round — interleaved, not bursty. A granted
    /// job leaves the queue ([`Phase::InSlice`]) and rejoins at the tail
    /// when its slice returns, which is what rotates the ring.
    fn grant(&mut self) -> Option<Lease> {
        for pass in 0..2 {
            let mut saw_zero_credit = false;
            for _ in 0..self.rr.len() {
                let Some(id) = self.rr.pop_front() else { break };
                let Some(job) = self.jobs.get(&id) else {
                    continue;
                };
                debug_assert_eq!(job.phase, Phase::Ready, "rr holds only ready jobs");
                let tenant_name = job.tenant.clone();
                let batch = job.batch_size.max(1);
                let cancel = job.cancel_requested;
                let credit = job.credit;
                let remaining = self.tenant_remaining(&tenant_name);
                if !cancel {
                    if remaining == Some(0) {
                        // Parked out of rr until budget arrives.
                        let job = self.jobs.get_mut(&id).unwrap();
                        job.phase = Phase::QuotaBlocked;
                        self.obs.emit(
                            ObsKind::SliceParked,
                            ObsCtx {
                                scene: Some(job.scene_id.0),
                                job: Some(id),
                                tenant: Some(tenant_name),
                                payload: 1, // quota exhausted
                            },
                        );
                        continue;
                    }
                    if credit == 0 {
                        saw_zero_credit = true;
                        self.rr.push_back(id);
                        continue;
                    }
                }
                let job = self.jobs.get_mut(&id).unwrap();
                job.phase = Phase::InSlice;
                if cancel {
                    // Finalization outranks fairness: free the slot now.
                    return Some(Lease {
                        id: job.id,
                        scene_id: job.scene_id,
                        engine: job.engine.take(),
                        build: job.build.take(),
                        kind: LeaseKind::Finalize,
                    });
                }
                job.credit -= 1;
                job.slices += 1;
                let slice = remaining.map_or(batch, |left| batch.min(left));
                let lease = Lease {
                    id: job.id,
                    scene_id: job.scene_id,
                    engine: job.engine.take(),
                    build: job.build.take(),
                    kind: LeaseKind::Step { slice },
                };
                let tenant = self.tenants.entry(tenant_name).or_default();
                tenant.slices += 1;
                // Reserve the slice's photons up front so concurrent
                // workers of one tenant cannot over-grant the budget; the
                // reservation is reconciled against the photons actually
                // emitted when the slice returns.
                if let Some(budget) = tenant.budget.as_mut() {
                    *budget -= slice; // slice ≤ remaining by construction
                }
                return Some(lease);
            }
            if pass == 0 && saw_zero_credit {
                let ready: Vec<u64> = self.rr.iter().copied().collect();
                for id in ready {
                    if let Some(job) = self.jobs.get_mut(&id) {
                        job.credit = job.priority.max(1);
                    }
                }
            } else {
                break;
            }
        }
        None
    }

    /// At drain time, parked jobs can never run again on their own; mark
    /// the first one canceled and runnable so a worker finalizes it.
    fn cancel_one_parked(&mut self) -> bool {
        let parked = self
            .jobs
            .values()
            .find(|j| matches!(j.phase, Phase::Paused | Phase::QuotaBlocked))
            .map(|j| j.id.0);
        match parked {
            Some(id) => {
                if let Some(job) = self.jobs.get_mut(&id) {
                    job.cancel_requested = true;
                }
                self.make_ready(id);
                true
            }
            None => false,
        }
    }

    fn all_done(&self) -> bool {
        self.jobs.values().all(|j| j.phase == Phase::Done)
    }

    fn snapshot(&self) -> SolverMetricsSnapshot {
        let mut snap = SolverMetricsSnapshot {
            checkpoints_taken: self.checkpoints_taken,
            checkpoint_bytes: self.checkpoint_bytes,
            ..Default::default()
        };
        for job in self.jobs.values() {
            match job.phase {
                Phase::Ready => snap.queue_depth += 1,
                Phase::InSlice => snap.running += 1,
                Phase::Paused => snap.paused += 1,
                Phase::QuotaBlocked => snap.quota_blocked += 1,
                Phase::Done => snap.done += 1,
            }
            let rate = |count: u64| {
                if job.busy_seconds > 0.0 {
                    count as f64 / job.busy_seconds
                } else {
                    0.0
                }
            };
            snap.forest_node_bytes += job.footprint.node_bytes;
            snap.forest_leaf_bytes += job.footprint.leaf_bytes;
            snap.forest_leaf_bins += job.footprint.leaf_bins;
            snap.jobs.push(SolveJobMetrics {
                job: job.id.0,
                tenant: job.tenant.clone(),
                priority: job.priority.max(1),
                state: job.metrics_state(),
                emitted: job.emitted,
                resumed_photons: job.resumed_photons,
                target_photons: job.target_photons,
                slices: job.slices,
                epochs: job.epochs,
                photons_per_sec: rate(job.emitted),
                epochs_per_sec: rate(job.epochs),
                forest_node_bytes: job.footprint.node_bytes,
                forest_leaf_bytes: job.footprint.leaf_bytes,
                forest_leaf_bins: job.footprint.leaf_bins,
            });
        }
        let mut tenants: BTreeMap<&str, TenantMetrics> = BTreeMap::new();
        for (name, t) in &self.tenants {
            tenants.insert(
                name,
                TenantMetrics {
                    tenant: name.clone(),
                    slices: t.slices,
                    photons_used: t.photons_used,
                    budget_remaining: t.budget,
                    quota_blocked_jobs: 0,
                },
            );
        }
        for job in self.jobs.values() {
            if job.phase == Phase::QuotaBlocked {
                if let Some(t) = tenants.get_mut(job.tenant.as_str()) {
                    t.quota_blocked_jobs += 1;
                }
            }
        }
        snap.tenants = tenants.into_values().collect();
        snap
    }
}

/// What a worker took out of the scheduler for one unlocked unit of work.
struct Lease {
    id: SolveJobId,
    scene_id: SceneId,
    engine: Option<Box<dyn SolverEngine>>,
    /// The build request, present only on the job's first grant (the
    /// engine does not exist yet); a `Finalize` lease drops it unused.
    build: Option<SolveRequest>,
    kind: LeaseKind,
}

enum LeaseKind {
    /// Step the engine by up to `slice` photons.
    Step { slice: u64 },
    /// Publish the final snapshot of a canceled job and retire it.
    Finalize,
}

struct Shared {
    state: Mutex<Sched>,
    work: Condvar,
    /// The store's observability hub, reachable without the scheduler
    /// lock for emits on the unlocked slice path.
    obs: Arc<ObsHub>,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Sched> {
        self.state.lock().unwrap()
    }

    fn pause(&self, id: SolveJobId) {
        let mut st = self.lock();
        let Some(job) = st.job(id) else { return };
        let scene = job.scene_id.0;
        let parked = match job.phase {
            Phase::Ready => {
                job.phase = Phase::Paused;
                st.unqueue(id.0);
                true
            }
            Phase::InSlice => {
                job.pause_requested = true;
                false
            }
            // A quota-blocked job is pausable too — otherwise a later
            // budget top-up would resume a job its owner explicitly
            // paused.
            Phase::QuotaBlocked => {
                job.phase = Phase::Paused;
                true
            }
            Phase::Paused | Phase::Done => false,
        };
        if parked {
            st.obs.emit(
                ObsKind::SliceParked,
                ObsCtx {
                    scene: Some(scene),
                    job: Some(id.0),
                    payload: 0, // paused by owner
                    ..Default::default()
                },
            );
        }
    }

    fn resume(&self, id: SolveJobId) {
        let mut st = self.lock();
        let Some(job) = st.job(id) else { return };
        match job.phase {
            Phase::Paused => {
                st.make_ready(id.0);
                self.work.notify_all();
            }
            Phase::InSlice => job.pause_requested = false,
            Phase::Ready | Phase::QuotaBlocked | Phase::Done => {}
        }
    }

    fn cancel(&self, id: SolveJobId) {
        let mut st = self.lock();
        let Some(job) = st.job(id) else { return };
        match job.phase {
            Phase::Done => {}
            Phase::InSlice => job.cancel_requested = true,
            Phase::Ready | Phase::Paused | Phase::QuotaBlocked => {
                job.cancel_requested = true;
                st.make_ready(id.0);
                self.work.notify_all();
            }
        }
    }

    /// The job's latest checkpoint, taking a fresh one when the parked
    /// engine has advanced past what was stored. Freezing a large forest
    /// is not cheap, so the engine is *leased* out of the scheduler
    /// (exactly like a worker slice) and checkpointed outside the lock —
    /// other jobs keep getting slices granted meanwhile; pause/resume/
    /// cancel requests arriving during the freeze are honored when the
    /// engine returns, just as after a step.
    fn checkpoint_of(&self, id: SolveJobId) -> Option<Arc<EngineCheckpoint>> {
        let mut st = self.lock();
        let (engine, tenant_name) = {
            let job = st.job(id)?;
            let stored_emitted = job.checkpoint.as_ref().map(|ck| ck.emitted());
            let stale = match job.engine.as_ref() {
                Some(engine) => stored_emitted != Some(engine.emitted()),
                None => false,
            };
            if !stale || job.phase == Phase::InSlice {
                // Done/unstarted jobs and mid-slice fetches fall back to
                // whatever was last recorded (the submit-time checkpoint,
                // or the pause/cancel freeze).
                return job.checkpoint.clone();
            }
            if job.phase == Phase::Paused {
                // Re-park after the freeze unless a resume lands meanwhile
                // (which clears the flag, exactly as during a slice).
                job.pause_requested = true;
            }
            job.phase = Phase::InSlice;
            let engine = job.engine.take().expect("parked engine present");
            (engine, job.tenant.clone())
        };
        st.unqueue(id.0);
        drop(st);
        let ck = self
            .obs
            .time(Stage::CheckpointFreeze, || Arc::new(engine.checkpoint()));
        let mut st = self.lock();
        st.record_checkpoint(id, Arc::clone(&ck));
        let quota_empty = st.tenant_remaining(&tenant_name) == Some(0);
        let flags = st.job(id).map(|job| {
            job.engine = Some(engine);
            (job.cancel_requested, job.pause_requested)
        });
        match flags {
            Some((true, _)) => st.make_ready(id.0),
            Some((false, true)) => {
                let job = st.job(id).expect("job still exists");
                job.pause_requested = false;
                job.phase = Phase::Paused;
            }
            Some((false, false)) if quota_empty => {
                st.job(id).expect("job still exists").phase = Phase::QuotaBlocked;
            }
            Some((false, false)) => st.make_ready(id.0),
            None => {}
        }
        drop(st);
        self.work.notify_all();
        Some(ck)
    }
}

impl SolverStatsSource for Shared {
    fn solver_snapshot(&self) -> SolverMetricsSnapshot {
        self.lock().snapshot()
    }
}

/// A pool of background solver threads feeding an [`AnswerStore`],
/// scheduling all submitted jobs fairly at batch granularity.
///
/// Submission registers the scene immediately (so render requests can
/// target it before the first batch lands) and enters the job into the
/// shared weighted-round-robin run queue; workers repeatedly grant one
/// slice (one `engine.step`) to the next runnable job. Dropping the pool
/// (or [`SolverPool::shutdown`]) finishes runnable jobs first and cancels
/// paused or quota-blocked ones (each still publishes its final snapshot).
pub struct SolverPool {
    store: Arc<AnswerStore>,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next_job: Mutex<u64>,
}

impl SolverPool {
    /// Starts `workers` solver threads over `store`. The pool records into
    /// the store's observability hub ([`AnswerStore::obs`]), so its events
    /// land on the same timeline as the serve and stream tiers'.
    pub fn start(store: Arc<AnswerStore>, workers: usize) -> Self {
        assert!(workers >= 1, "a solver pool needs at least one worker");
        let obs = store.obs();
        let shared = Arc::new(Shared {
            state: Mutex::new(Sched {
                jobs: BTreeMap::new(),
                rr: VecDeque::new(),
                tenants: HashMap::new(),
                checkpoints_taken: 0,
                checkpoint_bytes: 0,
                draining: false,
                obs: Arc::clone(&obs),
            }),
            work: Condvar::new(),
            obs,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                let store = Arc::clone(&store);
                std::thread::Builder::new()
                    .name(format!("photon-solve-{w}"))
                    .spawn(move || worker_loop(&store, &shared))
                    .expect("spawn solver worker")
            })
            .collect();
        SolverPool {
            store,
            shared,
            workers: handles,
            next_job: Mutex::new(0),
        }
    }

    /// The store this pool publishes into.
    pub fn store(&self) -> &Arc<AnswerStore> {
        &self.store
    }

    /// Registers the scene (epoch 0) and enters the job into the run
    /// queue; returns the handle carrying the renderable [`SceneId`], the
    /// progress stream, and the pause/resume/cancel controls.
    ///
    /// # Panics
    /// Panics when [`SolveRequest::resume_from`] carries a checkpoint that
    /// cannot continue this request's solve — wrong patch count for the
    /// scene, or a different photon-stream seed. (A checkpoint is only
    /// meaningful against the geometry and stream it froze; accepting it
    /// would silently corrupt the answer.)
    pub fn submit(&self, request: SolveRequest) -> SolveHandle {
        if let Some(ck) = request.resume_from.as_deref() {
            // Only the scene and stream are checkable here; the split
            // policy cannot mismatch because `build_engine` adopts the
            // checkpoint's.
            assert_eq!(
                ck.patch_count(),
                request.scene.polygon_count(),
                "resume checkpoint must match the request's scene"
            );
            assert_eq!(
                ck.seed(),
                request.seed,
                "resume checkpoint must match the request's seed"
            );
        }
        let id = {
            let mut next = self.next_job.lock().unwrap();
            let id = SolveJobId(*next);
            *next += 1;
            id
        };
        let scene_id = self
            .store
            .register(request.name.clone(), request.scene.clone());
        let (progress, rx) = channel();
        let mut st = self.shared.lock();
        // A draining pool accepts no jobs; dropping the progress sender
        // surfaces it as an immediately-drained handle.
        if !st.draining {
            let priority = request.priority.max(1);
            let resumed_photons = request.resume_from.as_ref().map_or(0, |ck| ck.emitted());
            let (tenant, target) = (request.tenant.clone(), request.target_photons);
            st.tenants.entry(request.tenant.clone()).or_default();
            st.jobs.insert(
                id.0,
                JobState {
                    id,
                    scene_id,
                    tenant: request.tenant.clone(),
                    priority,
                    target_photons: request.target_photons,
                    batch_size: request.batch_size.max(1),
                    publish_every: request.publish_every.max(1),
                    checkpoint: request.resume_from.clone(),
                    resumed_photons,
                    build: Some(request),
                    progress: Some(progress),
                    engine: None,
                    phase: Phase::Ready,
                    credit: priority,
                    pause_requested: false,
                    cancel_requested: false,
                    canceled: false,
                    emitted: resumed_photons,
                    batches: 0,
                    slices: 0,
                    epochs: 0,
                    busy_seconds: 0.0,
                    footprint: ForestFootprint::default(),
                },
            );
            st.rr.push_back(id.0);
            self.shared.obs.emit(
                ObsKind::JobSubmitted,
                ObsCtx {
                    scene: Some(scene_id.0),
                    job: Some(id.0),
                    tenant: Some(tenant),
                    payload: target,
                },
            );
            self.work_notify();
        }
        drop(st);
        SolveHandle {
            job: id,
            scene_id,
            rx,
            shared: Arc::clone(&self.shared),
        }
    }

    fn work_notify(&self) {
        self.shared.work.notify_all();
    }

    /// Sets tenant `tenant`'s remaining photon budget. Each slice grant
    /// *reserves* its photons against the budget (so concurrent workers
    /// cannot over-grant it) and reconciles to what the engine actually
    /// emitted when the slice returns; at zero the tenant's jobs park
    /// until more budget arrives. Unknown tenants are created, so quotas
    /// can be configured before the first submit.
    pub fn set_tenant_budget(&self, tenant: &str, photons: u64) {
        let mut st = self.shared.lock();
        st.tenants.entry(tenant.to_string()).or_default().budget = Some(photons);
        if photons > 0 {
            st.unblock_tenant(tenant);
            self.work_notify();
        }
    }

    /// Adds `photons` to tenant `tenant`'s remaining budget, waking any of
    /// its quota-blocked jobs. A tenant with no configured budget is
    /// unlimited; adding to it sets a finite budget of `photons`.
    pub fn add_tenant_budget(&self, tenant: &str, photons: u64) {
        let mut st = self.shared.lock();
        let t = st.tenants.entry(tenant.to_string()).or_default();
        t.budget = Some(t.budget.unwrap_or(0).saturating_add(photons));
        if photons > 0 {
            st.unblock_tenant(tenant);
            self.work_notify();
        }
    }

    /// Current scheduler state: queue depth, per-job rates, per-tenant
    /// slice and quota accounting.
    pub fn metrics(&self) -> SolverMetricsSnapshot {
        self.shared.solver_snapshot()
    }

    /// The pool's scheduler as a metrics source, for
    /// [`crate::RenderService::attach_solver`] — the render-side
    /// [`crate::MetricsSnapshot`] then carries the solve-tier state too.
    pub fn stats_source(&self) -> Arc<dyn SolverStatsSource> {
        Arc::clone(&self.shared) as Arc<dyn SolverStatsSource>
    }

    /// Stops accepting jobs, finishes runnable jobs, cancels parked ones
    /// (publishing their final snapshots), and joins the workers.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.draining = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SolverPool {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Builds the backend engine for one job, restoring the request's starting
/// checkpoint when one is attached. A resumed engine adopts the
/// checkpoint's split policy so the restored trees keep refining exactly
/// as they would have, uninterrupted. The restore (when any) is timed into
/// `obs` and recorded as a [`ObsKind::CheckpointRestored`] event.
fn build_engine(request: &SolveRequest, obs: &ObsHub, id: SolveJobId) -> Box<dyn SolverEngine> {
    let split = request
        .resume_from
        .as_deref()
        .map_or_else(Default::default, |ck| ck.split());
    let mut engine: Box<dyn SolverEngine> = match request.backend {
        BackendChoice::Serial => Box::new(Simulator::new(
            request.scene.clone(),
            SimConfig {
                seed: request.seed,
                split,
            },
        )),
        BackendChoice::Threaded { threads } => Box::new(ParEngine::new(
            request.scene.clone(),
            // The default batched pipeline is deterministic: bit-identical
            // to serial at any thread count.
            ParConfig {
                seed: request.seed,
                threads: threads.max(1),
                split,
                ..Default::default()
            },
        )),
        BackendChoice::Distributed { nranks } => {
            let nranks = nranks.max(1);
            Box::new(DistEngine::new(
                request.scene.clone(),
                DistConfig {
                    seed: request.seed,
                    nranks,
                    // Service jobs skip the pilot so every emitted photon
                    // counts toward the target deterministically. The
                    // Fixed payload is unused on the engine path — ranks
                    // size batches from the step hint; Fixed only means
                    // "no adaptive controller" here.
                    balance: BalanceMode::Naive,
                    batch: BatchMode::Fixed(1),
                    split,
                    ..Default::default()
                },
            ))
        }
    };
    if let Some(ck) = request.resume_from.as_deref() {
        obs.time(Stage::CheckpointRestore, || {
            engine
                .restore(ck)
                .expect("checkpoint compatibility was validated at submit");
        });
        obs.emit(
            ObsKind::CheckpointRestored,
            ObsCtx {
                job: Some(id.0),
                payload: ck.emitted(),
                ..Default::default()
            },
        );
    }
    engine
}

/// The worker loop: grant a slice, run it unlocked, return it; park on the
/// condvar when nothing is runnable.
fn worker_loop(store: &AnswerStore, shared: &Shared) {
    loop {
        let lease = {
            let mut st = shared.lock();
            loop {
                if let Some(lease) = st.grant() {
                    break lease;
                }
                if st.draining {
                    if st.cancel_one_parked() {
                        continue;
                    }
                    if st.all_done() {
                        return;
                    }
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        run_slice(store, shared, lease);
        shared.work.notify_all();
    }
}

/// Runs one granted slice (or cancel finalization) outside the scheduler
/// lock, then returns the engine and accounts the outcome.
fn run_slice(store: &AnswerStore, shared: &Shared, lease: Lease) {
    let Lease {
        id,
        scene_id,
        engine,
        build,
        kind,
    } = lease;
    let slice_start = Instant::now();
    if let LeaseKind::Step { slice } = kind {
        shared.obs.emit(
            ObsKind::SliceGranted,
            ObsCtx {
                scene: Some(scene_id.0),
                job: Some(id.0),
                payload: slice,
                ..Default::default()
            },
        );
    }
    // Parameters are read under the lock; the step and publish run free.
    let (target, publish_every) = {
        let mut st = shared.lock();
        let job = st.job(id).expect("leased job exists");
        (job.target_photons, job.publish_every)
    };

    let finalize = |engine: &dyn SolverEngine,
                    emitted: u64,
                    elapsed: f64,
                    canceled: bool|
     -> (u64, SolveProgress) {
        let answer = engine.snapshot();
        let leaf_bins = answer.total_leaf_bins();
        let epoch = store.publish(scene_id, answer);
        (
            epoch,
            SolveProgress {
                job: id,
                scene_id,
                epoch,
                emitted,
                leaf_bins,
                elapsed_seconds: elapsed,
                virtual_time: engine.virtual_time(),
                done: true,
                canceled,
            },
        )
    };

    match kind {
        LeaseKind::Finalize => {
            let busy = shared.lock().job(id).map_or(0.0, |j| j.busy_seconds);
            match engine {
                // Cancel publishes whatever was solved so renders keep
                // the best snapshot, then retires the job.
                Some(engine) => {
                    // The engine is about to drop: freeze its state (so a
                    // canceled or shutdown-drained job can migrate via its
                    // handle's checkpoint) — unless the stored checkpoint
                    // is already at this photon count, as it is for a
                    // paused job drained by shutdown; re-freezing would
                    // clone the whole forest again for identical bytes.
                    let emitted = engine.emitted();
                    let stored_emitted = shared
                        .lock()
                        .job(id)
                        .and_then(|j| j.checkpoint.as_ref().map(|ck| ck.emitted()));
                    if stored_emitted != Some(emitted) {
                        let ck = shared
                            .obs
                            .time(Stage::CheckpointFreeze, || Arc::new(engine.checkpoint()));
                        shared.lock().record_checkpoint(id, ck);
                    }
                    let (_, progress) = finalize(engine.as_ref(), emitted, busy, true);
                    drop(engine);
                    retire(
                        shared,
                        id,
                        Some(emitted),
                        Some(progress),
                        true,
                        true,
                        slice_start,
                    );
                }
                // The job never received a slice: there is nothing to
                // publish (the registered epoch-0 entry already serves),
                // and building a backend just to snapshot an empty answer
                // would be waste — `build` drops here, freeing the scene.
                None => {
                    let epoch = store.get(scene_id).map_or(0, |entry| entry.epoch);
                    let progress = SolveProgress {
                        job: id,
                        scene_id,
                        epoch,
                        emitted: 0,
                        leaf_bins: 0,
                        elapsed_seconds: busy,
                        virtual_time: false,
                        done: true,
                        canceled: true,
                    };
                    retire(shared, id, None, Some(progress), true, true, slice_start);
                }
            }
        }
        LeaseKind::Step { slice } => {
            // A resumed job whose checkpoint already meets the target
            // needs no engine at all: the published answer is derivable
            // from the checkpoint, so skip booting a worker pool or rank
            // world just to snapshot and drop it.
            if engine.is_none() {
                let met = build
                    .as_ref()
                    .and_then(|b| b.resume_from.clone())
                    .filter(|ck| ck.emitted() >= target);
                if let Some(ck) = met {
                    let busy = refund_reservation(shared, id, slice);
                    let answer = ck.to_answer();
                    let leaf_bins = answer.total_leaf_bins();
                    let epoch = store.publish(scene_id, answer);
                    let progress = SolveProgress {
                        job: id,
                        scene_id,
                        epoch,
                        emitted: ck.emitted(),
                        leaf_bins,
                        elapsed_seconds: busy,
                        virtual_time: false,
                        done: true,
                        canceled: false,
                    };
                    retire(
                        shared,
                        id,
                        Some(ck.emitted()),
                        Some(progress),
                        false,
                        true,
                        slice_start,
                    );
                    return;
                }
            }
            // The engine persists across slices; build it on first grant.
            let mut engine = engine.unwrap_or_else(|| {
                build_engine(
                    &build.expect("first slice carries the build request"),
                    &shared.obs,
                    id,
                )
            });
            // Check the target *before* stepping: a target that is already
            // met (target_photons: 0, or met by a previous slice's
            // overshoot) must publish immediately, not emit another batch.
            if engine.emitted() >= target {
                let busy = refund_reservation(shared, id, slice);
                let emitted = engine.emitted();
                let (_, progress) = finalize(engine.as_ref(), emitted, busy, false);
                drop(engine);
                retire(
                    shared,
                    id,
                    Some(emitted),
                    Some(progress),
                    false,
                    true,
                    slice_start,
                );
                return;
            }
            let step_start = Instant::now();
            let report = engine.step(slice);
            shared
                .obs
                .stage(Stage::SolveSlice, step_start.elapsed().as_secs_f64());
            // Phase split of the slice: where the time went inside the
            // engine (trace vs partition+apply of the batched pipeline).
            shared.obs.stage(Stage::SolveTrace, report.trace_seconds);
            shared.obs.stage(Stage::TallyApply, report.apply_seconds);
            shared.obs.emit(
                ObsKind::BatchStepped,
                ObsCtx {
                    scene: Some(scene_id.0),
                    job: Some(id.0),
                    payload: report.batch_photons,
                    ..Default::default()
                },
            );
            let done = report.emitted_total >= target;
            // Account the slice (time, photons, quota) and read the flags
            // that arrived while the step ran unlocked.
            let (publish_now, cancel_now, pause_now, tenant_name) = {
                let mut st = shared.lock();
                let job = st.job(id).expect("leased job exists");
                job.batches += 1;
                job.emitted = report.emitted_total;
                job.footprint = report.footprint;
                job.busy_seconds += slice_start.elapsed().as_secs_f64();
                let cancel_now = job.cancel_requested;
                let pause_now = job.pause_requested;
                let publish_now = done || job.batches.is_multiple_of(publish_every);
                let tenant_name = job.tenant.clone();
                let tenant = st.tenants.entry(tenant_name.clone()).or_default();
                tenant.photons_used += report.batch_photons;
                // Reconcile the grant-time reservation (`slice` photons)
                // against what the engine actually emitted — backends may
                // round a batch to their worker/rank granularity.
                let mut wake_tenant = false;
                if let Some(budget) = tenant.budget.as_mut() {
                    *budget = budget
                        .saturating_add(slice)
                        .saturating_sub(report.batch_photons);
                    wake_tenant = *budget > 0;
                }
                if wake_tenant {
                    // An upward reconcile can revive jobs that parked on
                    // the reservation; the worker notifies after this
                    // slice returns.
                    st.unblock_tenant(&tenant_name);
                }
                (publish_now, cancel_now, pause_now, tenant_name)
            };
            if cancel_now {
                // The step advanced past any stored checkpoint: freeze the
                // engine before it drops so the canceled job can migrate.
                let ck = shared
                    .obs
                    .time(Stage::CheckpointFreeze, || Arc::new(engine.checkpoint()));
                shared.lock().record_checkpoint(id, ck);
                let busy = shared.lock().job(id).map_or(0.0, |j| j.busy_seconds);
                let (_, progress) = finalize(engine.as_ref(), report.emitted_total, busy, true);
                drop(engine);
                retire(
                    shared,
                    id,
                    Some(report.emitted_total),
                    Some(progress),
                    true,
                    false,
                    slice_start,
                );
                return;
            }
            if done {
                let (_, progress) = finalize(
                    engine.as_ref(),
                    report.emitted_total,
                    report.elapsed_seconds,
                    false,
                );
                drop(engine);
                retire(
                    shared,
                    id,
                    Some(report.emitted_total),
                    Some(progress),
                    false,
                    false,
                    slice_start,
                );
                return;
            }
            let progress = publish_now.then(|| {
                let answer = engine.snapshot();
                let epoch = store.publish(scene_id, answer);
                SolveProgress {
                    job: id,
                    scene_id,
                    epoch,
                    emitted: report.emitted_total,
                    leaf_bins: report.leaf_bins,
                    elapsed_seconds: report.elapsed_seconds,
                    virtual_time: engine.virtual_time(),
                    done: false,
                    canceled: false,
                }
            });
            // A job about to park on pause gets checkpointed while the
            // engine is still leased (outside the scheduler lock) — the
            // freeze that lets its owner migrate it to another pool.
            let park_checkpoint = pause_now.then(|| {
                shared
                    .obs
                    .time(Stage::CheckpointFreeze, || Arc::new(engine.checkpoint()))
            });
            // Return the engine and park or requeue per pending requests.
            let mut st = shared.lock();
            if let Some(ck) = park_checkpoint {
                st.record_checkpoint(id, ck);
            }
            let quota_empty = st.tenant_remaining(&tenant_name) == Some(0);
            let job = st.job(id).expect("leased job exists");
            job.engine = Some(engine);
            if let Some(p) = progress {
                job.epochs += 1;
                if let Some(tx) = job.progress.as_ref() {
                    // A dropped handle is fine; the publish still
                    // refreshed the store.
                    let _ = tx.send(p);
                }
            }
            let job = st.job(id).expect("leased job exists");
            if job.cancel_requested {
                st.make_ready(id.0);
            } else if job.pause_requested {
                job.pause_requested = false;
                job.phase = Phase::Paused;
                st.obs.emit(
                    ObsKind::SliceParked,
                    ObsCtx {
                        scene: Some(scene_id.0),
                        job: Some(id.0),
                        payload: 0, // paused by owner
                        ..Default::default()
                    },
                );
            } else if quota_empty {
                job.phase = Phase::QuotaBlocked;
                st.obs.emit(
                    ObsKind::SliceParked,
                    ObsCtx {
                        scene: Some(scene_id.0),
                        job: Some(id.0),
                        tenant: Some(tenant_name),
                        payload: 1, // quota exhausted
                    },
                );
            } else {
                st.make_ready(id.0);
            }
        }
    }
}

/// Returns one slice's grant-time photon reservation to the tenant budget
/// (for paths that retire without emitting anything) and reports the job's
/// accumulated busy seconds.
fn refund_reservation(shared: &Shared, id: SolveJobId, slice: u64) -> f64 {
    let mut st = shared.lock();
    let Some(job) = st.job(id) else { return 0.0 };
    let busy = job.busy_seconds;
    let tenant_name = job.tenant.clone();
    let tenant = st.tenants.entry(tenant_name.clone()).or_default();
    let mut wake_tenant = false;
    if let Some(budget) = tenant.budget.as_mut() {
        *budget = budget.saturating_add(slice);
        wake_tenant = *budget > 0;
    }
    if wake_tenant {
        st.unblock_tenant(&tenant_name);
    }
    busy
}

/// Marks a leased job finished (callers drop the engine first; `emitted`
/// is its final photon count, `None` when the job never held an engine and
/// published nothing), sends its terminal progress report, and drops the
/// progress sender. `account_time` is false when the caller's slice
/// accounting already added this lease's wall time — adding
/// `slice_start.elapsed()` again would double-count the step.
fn retire(
    shared: &Shared,
    id: SolveJobId,
    emitted: Option<u64>,
    progress: Option<SolveProgress>,
    canceled: bool,
    account_time: bool,
    slice_start: Instant,
) {
    shared.obs.emit(
        ObsKind::JobDone,
        ObsCtx {
            job: Some(id.0),
            payload: emitted.unwrap_or(0),
            ..Default::default()
        },
    );
    let mut st = shared.lock();
    let Some(job) = st.job(id) else { return };
    if account_time {
        job.busy_seconds += slice_start.elapsed().as_secs_f64();
    }
    if let Some(emitted) = emitted {
        job.emitted = emitted.max(job.emitted);
    }
    job.phase = Phase::Done;
    job.canceled = canceled;
    job.engine = None;
    job.build = None;
    if let Some(p) = progress {
        // An engine-less finalize published nothing, so it counts no
        // epoch; every other retirement path just published a snapshot.
        if emitted.is_some() {
            job.epochs += 1;
        }
        if let Some(tx) = job.progress.take() {
            let _ = tx.send(p);
        }
    } else {
        job.progress = None;
    }
    st.unqueue(id.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_scenes::cornell_box;

    fn quick_request(backend: BackendChoice) -> SolveRequest {
        let mut r = SolveRequest::new("cornell", cornell_box());
        r.backend = backend;
        r.seed = 31;
        r.batch_size = 1_000;
        r.target_photons = 3_000;
        r
    }

    #[test]
    fn serial_job_publishes_monotone_epochs_to_done() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let handle = pool.submit(quick_request(BackendChoice::Serial));
        let mut epochs = Vec::new();
        let mut last = None;
        while let Some(p) = handle.next_progress(Duration::from_secs(60)) {
            epochs.push(p.epoch);
            last = Some(p);
        }
        let last = last.expect("at least one publish");
        assert!(last.done);
        assert!(!last.canceled);
        assert_eq!(last.emitted, 3_000);
        assert_eq!(epochs, vec![1, 2, 3], "one epoch per batch, in order");
        assert_eq!(store.get(handle.scene_id()).unwrap().epoch, 3);
        assert_eq!(
            store.get(handle.scene_id()).unwrap().answer.emitted(),
            3_000
        );
    }

    #[test]
    fn every_backend_reaches_the_target() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 2);
        let backends = [
            BackendChoice::Serial,
            BackendChoice::Threaded { threads: 3 },
            BackendChoice::Distributed { nranks: 2 },
        ];
        let handles: Vec<SolveHandle> = backends
            .iter()
            .map(|&b| pool.submit(quick_request(b)))
            .collect();
        for (h, b) in handles.iter().zip(&backends) {
            let done = h.wait_done(Duration::from_secs(120)).expect("job finished");
            assert!(done.emitted >= 3_000, "{:?}", done);
            // Only the distributed backend reports model time.
            assert_eq!(
                done.virtual_time,
                matches!(b, BackendChoice::Distributed { .. })
            );
            let entry = store.get(h.scene_id()).unwrap();
            assert!(entry.epoch >= 1);
            assert_eq!(entry.answer.emitted(), done.emitted);
        }
    }

    #[test]
    fn publish_every_coalesces_intermediate_snapshots() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let mut req = quick_request(BackendChoice::Serial);
        req.batch_size = 500;
        req.target_photons = 3_000; // 6 batches
        req.publish_every = 4; // publish at batch 4 and at done
        let handle = pool.submit(req);
        let mut reports = Vec::new();
        while let Some(p) = handle.next_progress(Duration::from_secs(60)) {
            reports.push(p);
        }
        assert_eq!(reports.len(), 2, "{reports:?}");
        assert_eq!(reports[0].emitted, 2_000);
        assert!(reports[1].done && reports[1].emitted == 3_000);
    }

    #[test]
    fn shutdown_finishes_queued_jobs() {
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let handles: Vec<SolveHandle> = (0..3)
            .map(|i| {
                let mut r = quick_request(BackendChoice::Serial);
                r.seed = i;
                r.target_photons = 1_000;
                pool.submit(r)
            })
            .collect();
        pool.shutdown();
        for h in handles {
            let done = h.wait_done(Duration::from_secs(60)).expect("finished");
            assert!(done.done);
        }
    }

    #[test]
    fn one_worker_interleaves_two_jobs() {
        // The tentpole in miniature: with a single worker, a job submitted
        // second must publish epochs before the first job finishes.
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let mut heavy = quick_request(BackendChoice::Serial);
        heavy.target_photons = 12_000; // 12 slices
        let heavy = pool.submit(heavy);
        let mut light = quick_request(BackendChoice::Serial);
        light.target_photons = 2_000; // 2 slices
        let light = pool.submit(light);
        let light_done = light.wait_done(Duration::from_secs(60)).expect("light job");
        assert_eq!(light_done.emitted, 2_000);
        // When the light job finished, the heavy one was still short of
        // its target — FIFO run-to-completion would have solved all 12k
        // photons first.
        let heavy_mid = store.get(heavy.scene_id()).unwrap().answer.emitted();
        assert!(
            heavy_mid < 12_000,
            "heavy job already done ({heavy_mid}) — no interleaving"
        );
        let heavy_done = heavy.wait_done(Duration::from_secs(60)).expect("heavy job");
        assert_eq!(heavy_done.emitted, 12_000);
    }

    #[test]
    fn priority_weights_slice_shares() {
        // Two equal jobs, priorities 3:1 — the favored job must finish
        // first on one worker even though it was submitted second.
        let store = Arc::new(AnswerStore::new());
        let pool = SolverPool::start(Arc::clone(&store), 1);
        let mut slow = quick_request(BackendChoice::Serial);
        slow.target_photons = 8_000;
        slow.priority = 1;
        let slow = pool.submit(slow);
        let mut fast = quick_request(BackendChoice::Serial);
        fast.target_photons = 8_000;
        fast.priority = 3;
        let fast = pool.submit(fast);
        fast.wait_done(Duration::from_secs(60)).expect("fast job");
        let slow_mid = store.get(slow.scene_id()).unwrap().answer.emitted();
        assert!(
            slow_mid < 8_000,
            "priority-1 job ({slow_mid}) kept pace with the priority-3 job"
        );
        slow.wait_done(Duration::from_secs(60)).expect("slow job");
    }
}
