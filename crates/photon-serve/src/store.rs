//! The answer registry: stored global-illumination solutions paired with
//! their scenes.
//!
//! The paper's central artifact is the view-independent answer file: "once
//! the simulation is finished, all that remains is to determine what is
//! displayed". One simulation therefore serves unlimited viewpoints — the
//! store is the service-side shelf those solutions live on. Each entry
//! pairs an [`Answer`] with its [`Scene`] (the codec stores bin trees only;
//! radiance reconstruction needs patch geometry) and caches the
//! auto-exposure so every request against the same solution maps radiance
//! to display range identically.
//!
//! Persistence reuses the existing `PHOTANS1` codec unchanged
//! ([`Answer::write_to`] / [`Answer::read_from`]); the store adds the
//! scene-consistency check a service needs before answering queries from a
//! file of unknown provenance.
//!
//! **Epochs.** A progressive solve publishes successive snapshots of one
//! scene's answer while the simulation is still running:
//! [`AnswerStore::register`] creates the entry (epoch 0, empty answer) and
//! each [`AnswerStore::publish`] swaps in a fresher answer under the next
//! epoch. The render path keys its view cache by `(scene, epoch, camera)`,
//! so every publish atomically invalidates stale images — readers holding
//! an older entry `Arc` keep a consistent (scene, answer, exposure, epoch)
//! tuple until they resolve the entry again.

use photon_core::view::auto_exposure;
use photon_core::Answer;
use photon_geom::Scene;
use std::io::{self, Read, Write};
use std::sync::{Arc, RwLock};

/// Handle to one stored solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SceneId(pub u32);

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scene#{}", self.0)
    }
}

/// One stored solution: scene + answer + display calibration.
#[derive(Debug)]
pub struct StoredAnswer {
    /// Human-readable name (for logs and bench reports).
    pub name: String,
    /// The scene geometry the answer was simulated in.
    pub scene: Arc<Scene>,
    /// The view-independent solution.
    pub answer: Arc<Answer>,
    /// Exposure mapping mean lit radiance to mid-gray, fixed at insert time
    /// so all views of one solution are consistently calibrated.
    pub exposure: f64,
    /// Publication epoch: 0 for a registered-but-unsolved scene, then +1
    /// per [`AnswerStore::publish`] (an [`AnswerStore::insert`] is epoch 1).
    pub epoch: u64,
}

/// A concurrent registry of stored answers, indexed by [`SceneId`].
///
/// Reads (the hot path — every render request resolves its entry here) take
/// a shared lock and clone an `Arc`; inserts are rare and exclusive.
#[derive(Debug, Default)]
pub struct AnswerStore {
    entries: RwLock<Vec<Arc<StoredAnswer>>>,
}

impl AnswerStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a solution and returns its id.
    ///
    /// # Panics
    /// Panics if the answer's patch count does not match the scene — an
    /// answer only means something against the geometry it was simulated
    /// in.
    pub fn insert(&self, name: impl Into<String>, scene: Scene, answer: Answer) -> SceneId {
        self.insert_at_epoch(name, scene, answer, 1)
    }

    /// Registers a scene with *no* solution yet (epoch 0, empty answer —
    /// renders black). A background solve then [`publish`][Self::publish]es
    /// refining answers against the returned id, so clients can start
    /// querying views before the first batch finishes.
    pub fn register(&self, name: impl Into<String>, scene: Scene) -> SceneId {
        let empty = Answer::empty(scene.polygon_count());
        self.insert_at_epoch(name, scene, empty, 0)
    }

    fn insert_at_epoch(
        &self,
        name: impl Into<String>,
        scene: Scene,
        answer: Answer,
        epoch: u64,
    ) -> SceneId {
        assert_eq!(
            answer.patch_count(),
            scene.polygon_count(),
            "answer/scene patch count mismatch"
        );
        let exposure = auto_exposure(&scene, &answer);
        let entry = Arc::new(StoredAnswer {
            name: name.into(),
            scene: Arc::new(scene),
            answer: Arc::new(answer),
            exposure,
            epoch,
        });
        let mut entries = self.entries.write().unwrap();
        entries.push(entry);
        SceneId(entries.len() as u32 - 1)
    }

    /// Atomically replaces entry `id`'s answer with a fresher snapshot,
    /// bumping the epoch and recalibrating exposure. Returns the new epoch.
    ///
    /// Publishes are ordered by photon count, not arrival: a snapshot whose
    /// [`Answer::emitted`] is *less* than the stored answer's is stale by
    /// construction (the solve only ever adds photons) and is rejected —
    /// the entry keeps its fresher answer and the existing epoch is
    /// returned unchanged. Two racing publishers therefore converge on the
    /// richer snapshot no matter which lands last.
    ///
    /// # Panics
    /// Panics on an unknown id or an answer whose patch count does not
    /// match the stored scene.
    pub fn publish(&self, id: SceneId, answer: Answer) -> u64 {
        // Calibrate outside the lock: auto_exposure scans every patch's
        // radiance, and render lookups must not stall behind a publish.
        let scene = {
            let entries = self.entries.read().unwrap();
            let entry = entries
                .get(id.0 as usize)
                .unwrap_or_else(|| panic!("publish to unknown {id}"));
            Arc::clone(&entry.scene)
        };
        assert_eq!(
            answer.patch_count(),
            scene.polygon_count(),
            "answer/scene patch count mismatch"
        );
        let exposure = auto_exposure(&scene, &answer);
        let answer = Arc::new(answer);
        let mut entries = self.entries.write().unwrap();
        let slot = &mut entries[id.0 as usize];
        // Last-writer-wins guard: the exposure above was computed outside
        // the lock, so a racing publish may have landed a richer snapshot
        // in the meantime. Never let a staler answer overwrite it.
        if answer.emitted() < slot.answer.emitted() {
            return slot.epoch;
        }
        let epoch = slot.epoch + 1;
        *slot = Arc::new(StoredAnswer {
            name: slot.name.clone(),
            scene,
            answer,
            exposure,
            epoch,
        });
        epoch
    }

    /// Looks up a solution.
    pub fn get(&self, id: SceneId) -> Option<Arc<StoredAnswer>> {
        self.entries.read().unwrap().get(id.0 as usize).cloned()
    }

    /// Ids of every stored solution, in insertion order.
    pub fn ids(&self) -> Vec<SceneId> {
        (0..self.len() as u32).map(SceneId).collect()
    }

    /// Number of stored solutions.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes entry `id`'s answer as a `PHOTANS1` stream.
    pub fn save(&self, id: SceneId, w: &mut impl Write) -> io::Result<()> {
        let entry = self
            .get(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no {id}")))?;
        entry.answer.write_to(w)
    }

    /// Reads a `PHOTANS1` stream and registers it against `scene`,
    /// rejecting answers simulated in different geometry.
    pub fn load(
        &self,
        name: impl Into<String>,
        scene: Scene,
        r: &mut impl Read,
    ) -> io::Result<SceneId> {
        let answer = Answer::read_from(r)?;
        if answer.patch_count() != scene.polygon_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "answer has {} patch trees but the scene has {} polygons",
                    answer.patch_count(),
                    scene.polygon_count()
                ),
            ));
        }
        Ok(self.insert(name, scene, answer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_scenes::cornell_box;

    fn small_answer() -> (Scene, Answer) {
        let mut sim = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 3,
                ..Default::default()
            },
        );
        sim.run_photons(2_000);
        let answer = sim.answer_snapshot();
        (sim.scene().clone(), answer)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let leaf_bins = answer.total_leaf_bins();
        let id = store.insert("cornell", scene, answer);
        let entry = store.get(id).expect("stored");
        assert_eq!(entry.name, "cornell");
        assert_eq!(entry.answer.total_leaf_bins(), leaf_bins);
        assert!(entry.exposure > 0.0);
        assert_eq!(store.ids(), vec![id]);
    }

    #[test]
    fn save_load_preserves_the_solution() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let id = store.insert("cornell", scene.clone(), answer);
        let mut buf = Vec::new();
        store.save(id, &mut buf).unwrap();

        let restored = AnswerStore::new();
        let rid = restored
            .load("cornell-restored", scene, &mut buf.as_slice())
            .unwrap();
        let a = store.get(id).unwrap();
        let b = restored.get(rid).unwrap();
        assert_eq!(a.answer.emitted(), b.answer.emitted());
        assert_eq!(a.answer.total_leaf_bins(), b.answer.total_leaf_bins());
        assert_eq!(a.exposure, b.exposure);
    }

    #[test]
    fn load_rejects_wrong_scene() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let id = store.insert("cornell", scene, answer);
        let mut buf = Vec::new();
        store.save(id, &mut buf).unwrap();
        // The practice room has 100 polygons; the answer has 30 trees.
        let err = store
            .load(
                "mismatched",
                photon_scenes::harpsichord_room(),
                &mut buf.as_slice(),
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn register_then_publish_bumps_epochs() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let id = store.register("progressive", scene);
        let e0 = store.get(id).unwrap();
        assert_eq!((e0.epoch, e0.answer.emitted()), (0, 0));
        assert_eq!(e0.exposure, 1.0, "unlit placeholder uses unit exposure");
        let emitted = answer.emitted();
        assert_eq!(store.publish(id, answer), 1);
        let e1 = store.get(id).unwrap();
        assert_eq!((e1.epoch, e1.answer.emitted()), (1, emitted));
        assert!(e1.exposure > 0.0);
        // A reader holding the old entry keeps its consistent snapshot.
        assert_eq!(e0.epoch, 0);
        // Inserted entries start published (epoch 1) and keep counting.
        let (scene2, answer2) = small_answer();
        let id2 = store.insert("prestored", scene2, answer2.clone());
        assert_eq!(store.get(id2).unwrap().epoch, 1);
        assert_eq!(store.publish(id2, answer2), 2);
    }

    #[test]
    fn publish_rejects_stale_snapshots() {
        // Regression: two publishes racing on one id could land out of
        // order, letting a snapshot with fewer photons overwrite a fresher
        // answer while still bumping the epoch.
        let store = AnswerStore::new();
        let mut sim = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 3,
                ..Default::default()
            },
        );
        sim.run_photons(1_000);
        let early = sim.answer_snapshot();
        sim.run_photons(1_000);
        let late = sim.answer_snapshot();
        let id = store.register("racy", sim.scene().clone());

        assert_eq!(store.publish(id, late.clone()), 1);
        // The stale snapshot arrives second: no epoch bump, no overwrite.
        assert_eq!(store.publish(id, early), 1, "stale publish must not bump");
        let entry = store.get(id).unwrap();
        assert_eq!(entry.epoch, 1);
        assert_eq!(entry.answer.emitted(), 2_000, "fresher answer survived");
        // An equally-rich snapshot still republishes (same photon count is
        // not stale — the pipeline republishes converged answers).
        assert_eq!(store.publish(id, late), 2);
    }

    #[test]
    fn missing_ids_answer_none() {
        let store = AnswerStore::new();
        assert!(store.is_empty());
        assert!(store.get(SceneId(4)).is_none());
        assert!(store.save(SceneId(0), &mut Vec::new()).is_err());
    }
}
