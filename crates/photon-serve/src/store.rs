//! The answer registry: stored global-illumination solutions paired with
//! their scenes.
//!
//! The paper's central artifact is the view-independent answer file: "once
//! the simulation is finished, all that remains is to determine what is
//! displayed". One simulation therefore serves unlimited viewpoints — the
//! store is the service-side shelf those solutions live on. Each entry
//! pairs an [`Answer`] with its [`Scene`] (the codec stores bin trees only;
//! radiance reconstruction needs patch geometry) and caches the
//! auto-exposure so every request against the same solution maps radiance
//! to display range identically.
//!
//! Persistence reuses the existing `PHOTANS1` codec unchanged
//! ([`Answer::write_to`] / [`Answer::read_from`]); the store adds the
//! scene-consistency check a service needs before answering queries from a
//! file of unknown provenance.
//!
//! **Epochs.** A progressive solve publishes successive snapshots of one
//! scene's answer while the simulation is still running:
//! [`AnswerStore::register`] creates the entry (epoch 0, empty answer) and
//! each [`AnswerStore::publish`] swaps in a fresher answer under the next
//! epoch. The render path keys its view cache by `(scene, epoch, camera)`,
//! so every publish atomically invalidates stale images — readers holding
//! an older entry `Arc` keep a consistent (scene, answer, exposure, epoch)
//! tuple until they resolve the entry again.
//!
//! **Publish watch.** Pollers waste the latency the epochs were built to
//! hide, so the store announces every publish: blocking consumers park in
//! [`AnswerStore::wait_for_epoch`] (a condvar wait, woken by the next
//! publish), and push consumers — the render service's streaming
//! dispatcher — register a callback via [`AnswerStore::register_watcher`]
//! and are invoked inline with the `(SceneId, epoch)` of each publish.

use photon_core::obs::{ObsCtx, ObsKind};
use photon_core::view::auto_exposure;
use photon_core::{Answer, ObsHub};
use photon_geom::Scene;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Handle to one stored solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SceneId(pub u32);

impl std::fmt::Display for SceneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scene#{}", self.0)
    }
}

/// One stored solution: scene + answer + display calibration.
#[derive(Debug)]
pub struct StoredAnswer {
    /// Human-readable name (for logs and bench reports).
    pub name: String,
    /// The scene geometry the answer was simulated in.
    pub scene: Arc<Scene>,
    /// The view-independent solution.
    pub answer: Arc<Answer>,
    /// Exposure mapping mean lit radiance to mid-gray, fixed at insert time
    /// so all views of one solution are consistently calibrated.
    pub exposure: f64,
    /// Publication epoch: 0 for a registered-but-unsolved scene, then +1
    /// per [`AnswerStore::publish`] (an [`AnswerStore::insert`] is epoch 1).
    pub epoch: u64,
}

/// Handle to one registered publish watcher; pass it back to
/// [`AnswerStore::unregister_watcher`] to stop the callbacks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WatcherId(u64);

type WatcherFn = Box<dyn Fn(SceneId, u64) + Send + Sync>;

#[derive(Default)]
struct Watchers {
    next: u64,
    list: Vec<(u64, WatcherFn)>,
}

/// A concurrent registry of stored answers, indexed by [`SceneId`].
///
/// Reads (the hot path — every render request resolves its entry here) take
/// a shared lock and clone an `Arc`; inserts are rare and exclusive.
#[derive(Default)]
pub struct AnswerStore {
    entries: RwLock<Vec<Arc<StoredAnswer>>>,
    /// Pairs with `epoch_cond` for [`wait_for_epoch`][Self::wait_for_epoch]:
    /// holding it across the epoch check and the condvar park means a
    /// publish (which takes it before notifying) can never slip between the
    /// two and leave a waiter asleep past its wake-up.
    epoch_lock: Mutex<()>,
    epoch_cond: Condvar,
    watchers: Mutex<Watchers>,
    /// The shared observability hub. The store is the rendezvous every
    /// tier already meets at, so every component built over this store
    /// (solver pool, render service, exporters) clones this hub — one
    /// flight recorder spans solve → publish → render → delta →
    /// checkpoint with zero configuration.
    obs: Arc<ObsHub>,
}

impl std::fmt::Debug for AnswerStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnswerStore")
            .field("entries", &self.entries.read().unwrap().len())
            .field("watchers", &self.watchers.lock().unwrap().list.len())
            .finish()
    }
}

impl AnswerStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The store's observability hub — shared by every tier built over
    /// this store, so one timeline spans the whole pipeline.
    pub fn obs(&self) -> Arc<ObsHub> {
        Arc::clone(&self.obs)
    }

    /// Registers a solution and returns its id.
    ///
    /// # Panics
    /// Panics if the answer's patch count does not match the scene — an
    /// answer only means something against the geometry it was simulated
    /// in.
    pub fn insert(&self, name: impl Into<String>, scene: Scene, answer: Answer) -> SceneId {
        self.insert_at_epoch(name, scene, answer, 1)
    }

    /// Registers a scene with *no* solution yet (epoch 0, empty answer —
    /// renders black). A background solve then [`publish`][Self::publish]es
    /// refining answers against the returned id, so clients can start
    /// querying views before the first batch finishes.
    pub fn register(&self, name: impl Into<String>, scene: Scene) -> SceneId {
        let empty = Answer::empty(scene.polygon_count());
        self.insert_at_epoch(name, scene, empty, 0)
    }

    fn insert_at_epoch(
        &self,
        name: impl Into<String>,
        scene: Scene,
        answer: Answer,
        epoch: u64,
    ) -> SceneId {
        assert_eq!(
            answer.patch_count(),
            scene.polygon_count(),
            "answer/scene patch count mismatch"
        );
        let exposure = auto_exposure(&scene, &answer);
        let entry = Arc::new(StoredAnswer {
            name: name.into(),
            scene: Arc::new(scene),
            answer: Arc::new(answer),
            exposure,
            epoch,
        });
        let id = {
            let mut entries = self.entries.write().unwrap();
            entries.push(entry);
            SceneId(entries.len() as u32 - 1)
        };
        self.announce(id, epoch);
        id
    }

    /// Atomically replaces entry `id`'s answer with a fresher snapshot,
    /// bumping the epoch and recalibrating exposure. Returns the new epoch.
    ///
    /// Publishes are ordered by photon count, not arrival: a snapshot whose
    /// [`Answer::emitted`] is *less* than the stored answer's is stale by
    /// construction (the solve only ever adds photons) and is rejected —
    /// the entry keeps its fresher answer and the existing epoch is
    /// returned unchanged. Two racing publishers therefore converge on the
    /// richer snapshot no matter which lands last.
    ///
    /// # Panics
    /// Panics on an unknown id or an answer whose patch count does not
    /// match the stored scene.
    pub fn publish(&self, id: SceneId, answer: Answer) -> u64 {
        // Calibrate outside the lock: auto_exposure scans every patch's
        // radiance, and render lookups must not stall behind a publish.
        let scene = {
            let entries = self.entries.read().unwrap();
            let entry = entries
                .get(id.0 as usize)
                .unwrap_or_else(|| panic!("publish to unknown {id}"));
            Arc::clone(&entry.scene)
        };
        assert_eq!(
            answer.patch_count(),
            scene.polygon_count(),
            "answer/scene patch count mismatch"
        );
        let exposure = auto_exposure(&scene, &answer);
        let answer = Arc::new(answer);
        let bumped = {
            let mut entries = self.entries.write().unwrap();
            let slot = &mut entries[id.0 as usize];
            // Last-writer-wins guard: the exposure above was computed
            // outside the lock, so a racing publish may have landed a
            // richer snapshot in the meantime. Never let a staler answer
            // overwrite it.
            if answer.emitted() < slot.answer.emitted() {
                return slot.epoch;
            }
            let epoch = slot.epoch + 1;
            *slot = Arc::new(StoredAnswer {
                name: slot.name.clone(),
                scene,
                answer,
                exposure,
                epoch,
            });
            epoch
        };
        // Announce outside the entries lock: waiters re-resolve the entry
        // on wake-up, and watcher callbacks must never run under it.
        self.announce(id, bumped);
        bumped
    }

    /// Blocks until entry `id`'s epoch reaches `min_epoch`, returning the
    /// (fresh) entry, or `None` when `timeout` passes first or the store
    /// has never seen `id`. An entry already at or past `min_epoch`
    /// returns immediately — this is the poll-free way to follow a
    /// progressive solve: `wait_for_epoch(id, last_seen + 1, ..)`.
    pub fn wait_for_epoch(
        &self,
        id: SceneId,
        min_epoch: u64,
        timeout: Duration,
    ) -> Option<Arc<StoredAnswer>> {
        let deadline = Instant::now() + timeout;
        let mut parked = self.epoch_lock.lock().unwrap();
        loop {
            let entry = self.get(id)?;
            if entry.epoch >= min_epoch {
                return Some(entry);
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, _) = self.epoch_cond.wait_timeout(parked, left).unwrap();
            parked = guard;
        }
    }

    /// Registers `watcher` to be called with `(id, epoch)` on every
    /// publication — each [`publish`][Self::publish] that bumps an epoch
    /// and each [`insert`][Self::insert]/[`register`][Self::register] of a
    /// new entry. Callbacks run inline on the publisher's thread with the
    /// watcher registry locked: keep them cheap (post to a channel) and
    /// never call back into the store's watcher APIs from inside one.
    pub fn register_watcher(
        &self,
        watcher: impl Fn(SceneId, u64) + Send + Sync + 'static,
    ) -> WatcherId {
        let mut watchers = self.watchers.lock().unwrap();
        let id = watchers.next;
        watchers.next += 1;
        watchers.list.push((id, Box::new(watcher)));
        WatcherId(id)
    }

    /// Removes a watcher; unknown (or already removed) ids are a no-op.
    pub fn unregister_watcher(&self, id: WatcherId) {
        self.watchers
            .lock()
            .unwrap()
            .list
            .retain(|(w, _)| *w != id.0);
    }

    /// Wakes [`wait_for_epoch`][Self::wait_for_epoch] parkers and runs the
    /// registered watcher callbacks. Callers must not hold the entries
    /// lock: waiters re-resolve entries inside their critical section.
    fn announce(&self, id: SceneId, epoch: u64) {
        self.obs.emit(
            ObsKind::EpochPublished,
            ObsCtx {
                scene: Some(id.0),
                payload: epoch,
                ..Default::default()
            },
        );
        drop(self.epoch_lock.lock().unwrap());
        self.epoch_cond.notify_all();
        let watchers = self.watchers.lock().unwrap();
        for (_, watcher) in &watchers.list {
            watcher(id, epoch);
        }
    }

    /// Looks up a solution.
    pub fn get(&self, id: SceneId) -> Option<Arc<StoredAnswer>> {
        self.entries.read().unwrap().get(id.0 as usize).cloned()
    }

    /// Ids of every stored solution, in insertion order.
    pub fn ids(&self) -> Vec<SceneId> {
        (0..self.len() as u32).map(SceneId).collect()
    }

    /// Number of stored solutions.
    pub fn len(&self) -> usize {
        self.entries.read().unwrap().len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes entry `id`'s answer as a `PHOTANS1` stream.
    pub fn save(&self, id: SceneId, w: &mut impl Write) -> io::Result<()> {
        let entry = self
            .get(id)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no {id}")))?;
        entry.answer.write_to(w)
    }

    /// Reads a `PHOTANS1` stream and registers it against `scene`,
    /// rejecting answers simulated in different geometry.
    pub fn load(
        &self,
        name: impl Into<String>,
        scene: Scene,
        r: &mut impl Read,
    ) -> io::Result<SceneId> {
        let answer = Answer::read_from(r)?;
        if answer.patch_count() != scene.polygon_count() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "answer has {} patch trees but the scene has {} polygons",
                    answer.patch_count(),
                    scene.polygon_count()
                ),
            ));
        }
        Ok(self.insert(name, scene, answer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::{SimConfig, Simulator};
    use photon_scenes::cornell_box;

    fn small_answer() -> (Scene, Answer) {
        let mut sim = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 3,
                ..Default::default()
            },
        );
        sim.run_photons(2_000);
        let answer = sim.answer_snapshot();
        (sim.scene().clone(), answer)
    }

    #[test]
    fn insert_then_get_round_trips() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let leaf_bins = answer.total_leaf_bins();
        let id = store.insert("cornell", scene, answer);
        let entry = store.get(id).expect("stored");
        assert_eq!(entry.name, "cornell");
        assert_eq!(entry.answer.total_leaf_bins(), leaf_bins);
        assert!(entry.exposure > 0.0);
        assert_eq!(store.ids(), vec![id]);
    }

    #[test]
    fn save_load_preserves_the_solution() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let id = store.insert("cornell", scene.clone(), answer);
        let mut buf = Vec::new();
        store.save(id, &mut buf).unwrap();

        let restored = AnswerStore::new();
        let rid = restored
            .load("cornell-restored", scene, &mut buf.as_slice())
            .unwrap();
        let a = store.get(id).unwrap();
        let b = restored.get(rid).unwrap();
        assert_eq!(a.answer.emitted(), b.answer.emitted());
        assert_eq!(a.answer.total_leaf_bins(), b.answer.total_leaf_bins());
        assert_eq!(a.exposure, b.exposure);
    }

    #[test]
    fn load_rejects_wrong_scene() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let id = store.insert("cornell", scene, answer);
        let mut buf = Vec::new();
        store.save(id, &mut buf).unwrap();
        // The practice room has 100 polygons; the answer has 30 trees.
        let err = store
            .load(
                "mismatched",
                photon_scenes::harpsichord_room(),
                &mut buf.as_slice(),
            )
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn register_then_publish_bumps_epochs() {
        let store = AnswerStore::new();
        let (scene, answer) = small_answer();
        let id = store.register("progressive", scene);
        let e0 = store.get(id).unwrap();
        assert_eq!((e0.epoch, e0.answer.emitted()), (0, 0));
        assert_eq!(e0.exposure, 1.0, "unlit placeholder uses unit exposure");
        let emitted = answer.emitted();
        assert_eq!(store.publish(id, answer), 1);
        let e1 = store.get(id).unwrap();
        assert_eq!((e1.epoch, e1.answer.emitted()), (1, emitted));
        assert!(e1.exposure > 0.0);
        // A reader holding the old entry keeps its consistent snapshot.
        assert_eq!(e0.epoch, 0);
        // Inserted entries start published (epoch 1) and keep counting.
        let (scene2, answer2) = small_answer();
        let id2 = store.insert("prestored", scene2, answer2.clone());
        assert_eq!(store.get(id2).unwrap().epoch, 1);
        assert_eq!(store.publish(id2, answer2), 2);
    }

    #[test]
    fn publish_rejects_stale_snapshots() {
        // Regression: two publishes racing on one id could land out of
        // order, letting a snapshot with fewer photons overwrite a fresher
        // answer while still bumping the epoch.
        let store = AnswerStore::new();
        let mut sim = Simulator::new(
            cornell_box(),
            SimConfig {
                seed: 3,
                ..Default::default()
            },
        );
        sim.run_photons(1_000);
        let early = sim.answer_snapshot();
        sim.run_photons(1_000);
        let late = sim.answer_snapshot();
        let id = store.register("racy", sim.scene().clone());

        assert_eq!(store.publish(id, late.clone()), 1);
        // The stale snapshot arrives second: no epoch bump, no overwrite.
        assert_eq!(store.publish(id, early), 1, "stale publish must not bump");
        let entry = store.get(id).unwrap();
        assert_eq!(entry.epoch, 1);
        assert_eq!(entry.answer.emitted(), 2_000, "fresher answer survived");
        // An equally-rich snapshot still republishes (same photon count is
        // not stale — the pipeline republishes converged answers).
        assert_eq!(store.publish(id, late), 2);
    }

    #[test]
    fn wait_for_epoch_wakes_on_publish_without_polling() {
        let store = Arc::new(AnswerStore::new());
        let (scene, answer) = small_answer();
        let id = store.register("watched", scene);
        // Already-satisfied waits return immediately.
        let e0 = store
            .wait_for_epoch(id, 0, Duration::from_secs(5))
            .expect("epoch 0 exists");
        assert_eq!(e0.epoch, 0);
        let publisher = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                store.publish(id, answer)
            })
        };
        let woken = store
            .wait_for_epoch(id, 1, Duration::from_secs(30))
            .expect("publish wakes the waiter");
        assert!(woken.epoch >= 1);
        assert!(woken.answer.emitted() > 0, "fresh entry, not the stale one");
        assert_eq!(publisher.join().unwrap(), 1);
    }

    #[test]
    fn wait_for_epoch_times_out_and_rejects_unknown_ids() {
        let store = AnswerStore::new();
        let (scene, _) = small_answer();
        let id = store.register("quiet", scene);
        let t0 = std::time::Instant::now();
        assert!(store
            .wait_for_epoch(id, 5, Duration::from_millis(40))
            .is_none());
        assert!(t0.elapsed() >= Duration::from_millis(40));
        assert!(store
            .wait_for_epoch(SceneId(9), 0, Duration::from_secs(5))
            .is_none());
    }

    #[test]
    fn watchers_observe_publishes_until_unregistered() {
        let store = AnswerStore::new();
        let seen: Arc<std::sync::Mutex<Vec<(SceneId, u64)>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let watcher = store.register_watcher(move |id, epoch| {
            sink.lock().unwrap().push((id, epoch));
        });
        let (scene, answer) = small_answer();
        let id = store.register("announced", scene);
        store.publish(id, answer.clone());
        assert_eq!(
            seen.lock().unwrap().as_slice(),
            &[(id, 0), (id, 1)],
            "register and publish both announce"
        );
        // A stale publish bumps nothing and stays silent.
        let early = Answer::empty(answer.patch_count());
        store.publish(id, early);
        assert_eq!(seen.lock().unwrap().len(), 2, "stale publish is silent");
        store.unregister_watcher(watcher);
        store.publish(id, answer);
        assert_eq!(seen.lock().unwrap().len(), 2, "unregistered watcher quiet");
    }

    #[test]
    fn missing_ids_answer_none() {
        let store = AnswerStore::new();
        assert!(store.is_empty());
        assert!(store.get(SceneId(4)).is_none());
        assert!(store.save(SceneId(0), &mut Vec::new()).is_err());
    }
}
