//! photon-serve: a concurrent answer-serving render service.
//!
//! The dissertation's payoff is that Photon's output is *view-independent*:
//! "once the simulation is finished, all that remains is to determine what
//! is displayed" (ch. 4). One expensive simulation therefore amortizes over
//! unlimited cheap view queries — the same shape as a production renderer
//! serving walkthrough traffic. This crate is that serving layer, built on
//! the existing pieces:
//!
//! | module | role |
//! |--------|------|
//! | [`store`] | registry of `(Scene, Answer)` pairs, persisted via the `PHOTANS1` codec |
//! | [`render`] | tile-parallel rendering over `photon-par`'s worker pool, bit-identical to the serial viewer |
//! | [`cache`] | LRU of rendered views keyed by (scene, quantized camera) |
//! | [`service`] | submission queue → batching dispatcher → cache/coalesce/render |
//! | [`metrics`] | p50/p99 latency, queries/sec, and per-batch speed traces in the `perf` style |
//!
//! # Quickstart
//!
//! ```no_run
//! use photon_serve::{AnswerStore, RenderRequest, RenderService, ServeConfig};
//! use std::sync::Arc;
//!
//! # fn scene_and_answer() -> (photon_geom::Scene, photon_core::Answer) { unimplemented!() }
//! # fn some_camera() -> photon_core::Camera { unimplemented!() }
//! let (scene, answer) = scene_and_answer(); // simulate once, offline
//! let store = Arc::new(AnswerStore::new());
//! let id = store.insert("cornell", scene, answer);
//! let service = RenderService::start(store, ServeConfig::default());
//! let view = service
//!     .render_blocking(RenderRequest { scene_id: id, camera: some_camera() })
//!     .unwrap();
//! assert_eq!(view.image.width(), some_camera().width);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod render;
pub mod service;
pub mod store;

pub use cache::{LruCache, ViewKey};
pub use metrics::{LatencySummary, MetricsSnapshot, RequestOutcome};
pub use render::render_parallel;
pub use service::{RenderRequest, RenderResponse, RenderService, ServeConfig, ServeError, Ticket};
pub use store::{AnswerStore, SceneId, StoredAnswer};
