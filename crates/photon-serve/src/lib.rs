//! photon-serve: a full solve→store→render pipeline behind one service.
//!
//! The dissertation's payoff is that Photon's output is *view-independent*:
//! "once the simulation is finished, all that remains is to determine what
//! is displayed" (ch. 4). One expensive simulation therefore amortizes over
//! unlimited cheap view queries — and because every backend is an
//! incremental [`photon_core::SolverEngine`], the simulation doesn't even
//! have to be finished: a solve job publishes refining answer snapshots
//! under increasing epochs while the render path serves views from the
//! freshest one. The crate's layers:
//!
//! | module | role |
//! |--------|------|
//! | [`solver`] | multi-job solver pool: weighted-round-robin batch scheduler, per-tenant photon quotas, pause/resume/cancel, checkpoint/resume job migration |
//! | [`store`] | registry of `(Scene, Answer)` pairs with publication epochs, persisted via the `PHOTANS1` codec |
//! | [`render`] | tile-parallel rendering over `photon-par`'s worker pool, bit-identical to the serial viewer |
//! | [`cache`] | LRU of rendered views keyed by (scene, epoch, quantized camera) — a publish invalidates *and purges* stale images |
//! | [`service`] | submission queue → batching dispatcher → cache/coalesce/render |
//! | [`stream`] | epoch subscriptions: publishes push [`FrameDelta`]s (changed tiles only) to subscribers, reassembling bit-identical frames |
//! | [`netstream`] | off-box transport: a TCP server fanning each scene's epochs out as `PHOTSTRM1` frames (lossless or quantized), with slow consumers coalesced server-side |
//! | [`metrics`] | p50/p99 latency, queries/sec, speed traces, streaming-tier counters, and solve-tier scheduler state (per-job photons/sec, queue depth, per-tenant slices) |
//! | [`obs`] | exporters over the shared observability hub: Prometheus text exposition, versioned JSON dump (metrics + stage histograms + flight-recorder tail), and a scrapeable TCP endpoint |
//!
//! **Multi-job scheduling.** The pool is not FIFO: every backend engine is
//! an incremental `step → snapshot` machine, so the scheduler's unit is
//! one *batch slice* and workers rotate over all runnable jobs by
//! weighted round-robin ([`SolveRequest::priority`] is the weight). A
//! heavy scene therefore cannot starve a light one — they interleave even
//! on a single worker. Jobs carry a [`SolveRequest::tenant`] tag;
//! [`SolverPool::set_tenant_budget`] caps a tenant's total photons,
//! enforced when each slice is granted. Handles
//! [`pause`](SolveHandle::pause) / [`resume`](SolveHandle::resume) /
//! [`cancel`](SolveHandle::cancel) jobs at batch granularity.
//!
//! # Quickstart: scene in, images out
//!
//! ```
//! use photon_serve::{AnswerStore, BackendChoice, RenderRequest, RenderService,
//!                    ServeConfig, SolveRequest, SolverPool};
//! use photon_core::Camera;
//! use photon_math::Vec3;
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! // A scene goes in — no precomputed answer anywhere.
//! let store = Arc::new(AnswerStore::new());
//! let solver = SolverPool::start(Arc::clone(&store), 1);
//! let mut request = SolveRequest::new("cornell", photon_scenes::cornell_box());
//! request.backend = BackendChoice::Threaded { threads: 2 };
//! request.batch_size = 1_000;
//! request.target_photons = 2_000;
//! let job = solver.submit(request);
//!
//! // The scene is renderable immediately; epochs refine underneath.
//! let service = RenderService::start(Arc::clone(&store), ServeConfig::default());
//! let solved = job.wait_done(Duration::from_secs(120)).expect("solve converged");
//! assert!(solved.epoch >= 1 && solved.emitted >= 2_000);
//!
//! let camera = Camera {
//!     eye: Vec3::new(2.78, 2.73, -7.5),
//!     target: Vec3::new(2.78, 2.73, 2.8),
//!     up: Vec3::Y,
//!     vfov_deg: 40.0,
//!     width: 32,
//!     height: 24,
//! };
//! let view = service
//!     .render_blocking(RenderRequest { scene_id: job.scene_id(), camera })
//!     .unwrap();
//! assert_eq!(view.image.width(), 32);
//! assert!(view.image.mean_luminance() > 0.0, "the solved scene is lit");
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod netstream;
pub mod obs;
pub mod render;
pub mod service;
pub mod solver;
pub mod store;
pub mod stream;

pub use cache::{LruCache, ViewKey};
pub use metrics::{
    LatencySummary, MetricsSnapshot, RequestOutcome, SolveJobMetrics, SolverMetricsSnapshot,
    SolverStatsSource, StreamMetricsSnapshot, TenantMetrics,
};
pub use netstream::{StreamClient, StreamServer};
pub use obs::{ObsExporter, ObsServer};
pub use photon_core::wire::WireMode;
pub use render::render_parallel;
pub use service::{RenderRequest, RenderResponse, RenderService, ServeConfig, ServeError, Ticket};
pub use solver::{
    BackendChoice, SolveHandle, SolveJobId, SolveProgress, SolveRequest, SolverPool, DEFAULT_TENANT,
};
pub use store::{AnswerStore, SceneId, StoredAnswer, WatcherId};
pub use stream::{FrameDelta, StreamHandle, StreamRequest};
