//! Service metrics: request latency percentiles, throughput, and solver
//! scheduler state, in the `perf` house style.
//!
//! The simulator's perf layer records speed-vs-time traces per batch
//! ([`SpeedTrace`]); the serving layer does the same with dispatch batches —
//! one sample per drained queue batch, rate in requests/second — and adds
//! the request-level accounting a service needs: completed/rendered/cache
//! splits and p50/p99 latency over the full run.
//!
//! The solve side reports through the same snapshot: attach a
//! [`SolverStatsSource`] (any `SolverPool`) with
//! [`ServiceMetrics::attach_solver`] and every [`MetricsSnapshot`] carries
//! a [`SolverMetricsSnapshot`] — queue depth, per-job photons/sec and
//! epochs/sec, and slices granted per tenant — beside the render-side
//! latencies. That is the engine-level backpressure signal: when queue
//! depth grows while per-job photon rates fall, the solve tier is
//! saturated no matter how healthy the render latencies look.

use photon_core::obs::HistogramSnapshot;
use photon_core::{Histogram, SpeedTrace};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Latency distribution summary, milliseconds.
///
/// Percentiles are read from the bounded log-bucketed latency histogram
/// ([`photon_core::Histogram`]): each is the upper bound of the bucket
/// holding the nearest-rank sample, clamped to the exact max — within one
/// log-bucket of the exact statistic, at constant memory forever. `count`,
/// `mean_ms`, and `max_ms` are exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency (exact).
    pub mean_ms: f64,
    /// Median latency (bucketed).
    pub p50_ms: f64,
    /// 90th-percentile latency (bucketed).
    pub p90_ms: f64,
    /// 99th-percentile latency (bucketed).
    pub p99_ms: f64,
    /// Worst observed latency (exact).
    pub max_ms: f64,
}

impl LatencySummary {
    /// Reads the summary off a histogram snapshot (microsecond samples).
    pub fn from_histogram(h: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: h.count(),
            mean_ms: h.mean() / 1000.0,
            p50_ms: h.quantile(0.50) as f64 / 1000.0,
            p90_ms: h.quantile(0.90) as f64 / 1000.0,
            p99_ms: h.quantile(0.99) as f64 / 1000.0,
            max_ms: h.max as f64 / 1000.0,
        }
    }
}

/// Point-in-time copy of the service counters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Requests answered (rendered, coalesced, or cache hits).
    pub completed: u64,
    /// Requests answered by actually rendering.
    pub rendered: u64,
    /// Requests answered from the view cache.
    pub cache_hits: u64,
    /// Requests answered by riding an identical render in the same batch.
    pub coalesced: u64,
    /// Dispatch batches drained.
    pub batches: u64,
    /// Completed requests per second of service uptime.
    pub qps: f64,
    /// View-cache entries currently live (after stale-epoch purging).
    pub cache_entries: u64,
    /// Stale-epoch cache keys purged when a fresher publish was observed.
    pub cache_purged: u64,
    /// Scenes the dispatcher is tracking freshest-seen epochs for —
    /// bounded by the scenes with live cache keys, so a long-lived service
    /// over many retired scenes stays flat (the `seen_epoch` leak
    /// regression watches this).
    pub seen_epoch_entries: u64,
    /// Streaming tier: epoch subscriptions and tile-delta traffic.
    pub stream: StreamMetricsSnapshot,
    /// Request latency distribution (read off `latency_hist`).
    pub latency: LatencySummary,
    /// The raw bounded latency histogram (microsecond buckets) — what
    /// exporters turn into Prometheus `le` buckets.
    pub latency_hist: HistogramSnapshot,
    /// Per-dispatch-batch rate trace (requests/second), perf style.
    pub speed: SpeedTrace,
    /// Solve-tier scheduler state, when a solver pool is attached via
    /// [`ServiceMetrics::attach_solver`]; empty otherwise.
    pub solver: SolverMetricsSnapshot,
}

/// What one scheduled solve job is doing right now.
#[derive(Clone, Debug)]
pub struct SolveJobMetrics {
    /// The job's pool-assigned id (`SolveJobId.0`).
    pub job: u64,
    /// The tenant the job was submitted under.
    pub tenant: String,
    /// Weighted-round-robin weight (slices granted per scheduling round).
    pub priority: u32,
    /// Scheduler state: `"queued"`, `"running"`, `"paused"`,
    /// `"quota-blocked"`, `"canceled"`, or `"done"`.
    pub state: &'static str,
    /// Photons emitted so far (including photons inherited from a resume
    /// checkpoint).
    pub emitted: u64,
    /// Photons this job inherited by resuming from a checkpoint (0 for a
    /// fresh solve). Quota accounting charges only `emitted` beyond these.
    pub resumed_photons: u64,
    /// The job's convergence target.
    pub target_photons: u64,
    /// Scheduler slices granted to this job so far.
    pub slices: u64,
    /// Snapshots published into the store so far.
    pub epochs: u64,
    /// Photons per second of solve time actually granted to this job.
    pub photons_per_sec: f64,
    /// Epochs published per second of granted solve time.
    pub epochs_per_sec: f64,
    /// Hot packed-node arena bytes of the job's forest after its latest
    /// slice (zero until the first slice reports).
    pub forest_node_bytes: u64,
    /// Cold leaf-statistics arena bytes of the job's forest.
    pub forest_leaf_bytes: u64,
    /// Leaf bins in the job's forest.
    pub forest_leaf_bins: u64,
}

/// Per-tenant scheduling and quota accounting.
#[derive(Clone, Debug)]
pub struct TenantMetrics {
    /// Tenant tag.
    pub tenant: String,
    /// Scheduler slices granted across the tenant's jobs.
    pub slices: u64,
    /// Photons emitted across the tenant's jobs.
    pub photons_used: u64,
    /// Photon budget still grantable; `None` means unlimited.
    pub budget_remaining: Option<u64>,
    /// Jobs currently parked because the budget ran out.
    pub quota_blocked_jobs: u64,
}

/// Point-in-time copy of a solver pool's scheduler state.
#[derive(Clone, Debug, Default)]
pub struct SolverMetricsSnapshot {
    /// Jobs runnable but waiting for a worker slice (the backpressure
    /// signal: persistent depth means the pool is oversubscribed).
    pub queue_depth: u64,
    /// Jobs currently holding a worker slice.
    pub running: u64,
    /// Jobs paused by their owner.
    pub paused: u64,
    /// Jobs parked on an exhausted tenant photon budget.
    pub quota_blocked: u64,
    /// Jobs finished (converged or canceled).
    pub done: u64,
    /// Engine checkpoints the pool has taken (on pause, cancel, shutdown,
    /// or on demand via `SolveHandle::checkpoint`).
    pub checkpoints_taken: u64,
    /// Total `PHOTCK1`-encoded bytes of those checkpoints — the migration
    /// payload a pool handoff would ship.
    pub checkpoint_bytes: u64,
    /// Hot packed-node arena bytes summed over every job's forest (the
    /// solve tier's resident traversal working set).
    pub forest_node_bytes: u64,
    /// Cold leaf-statistics arena bytes summed over every job's forest.
    pub forest_leaf_bytes: u64,
    /// Leaf bins summed over every job's forest.
    pub forest_leaf_bins: u64,
    /// Per-job progress and rates, in submission order.
    pub jobs: Vec<SolveJobMetrics>,
    /// Per-tenant slice/quota accounting, sorted by tenant tag.
    pub tenants: Vec<TenantMetrics>,
}

/// Point-in-time copy of the streaming (epoch-subscription) counters.
///
/// "Bytes" count raw pixel payload (`pixel count × size_of::<Rgb>()`),
/// ignoring per-tile headers — the quantity a transport would dominate on.
/// `full_frame_bytes` is what a frame-per-epoch protocol would have
/// shipped for the same deltas, so the difference is the bandwidth the
/// tile diffing saved.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamMetricsSnapshot {
    /// Live subscriptions (dropped handles leave on their next delta).
    pub subscribers: u64,
    /// Frame deltas pushed to subscribers.
    pub deltas: u64,
    /// Changed tiles shipped across all deltas.
    pub tiles: u64,
    /// Pixel payload bytes actually shipped (changed tiles only).
    pub tile_bytes: u64,
    /// Pixel payload bytes a whole-frame-per-epoch protocol would ship.
    pub full_frame_bytes: u64,
    /// Epoch deltas coalesced into a squashed delivery instead of being
    /// delivered individually — the slow-consumer policy at work.
    pub deltas_squashed: u64,
    /// Times a subscriber crossed its send window into the lagging state
    /// (each lag episode counts once, however many deltas it squashes).
    pub lag_events: u64,
    /// `PHOTSTRM1` frames sent over TCP by the stream server.
    pub wire_deltas: u64,
    /// Encoded bytes those frames put on the wire (length prefix included).
    pub wire_bytes: u64,
}

impl StreamMetricsSnapshot {
    /// Bandwidth saved by shipping deltas instead of full frames.
    pub fn bytes_saved(&self) -> u64 {
        self.full_frame_bytes.saturating_sub(self.tile_bytes)
    }
}

/// Anything that can report solver scheduler state — implemented by
/// `SolverPool`'s shared scheduler so a `RenderService` can surface the
/// solve tier inside its own [`MetricsSnapshot`].
pub trait SolverStatsSource: Send + Sync {
    /// Current scheduler state.
    fn solver_snapshot(&self) -> SolverMetricsSnapshot;
}

#[derive(Default)]
struct Inner {
    completed: u64,
    rendered: u64,
    cache_hits: u64,
    coalesced: u64,
    batches: u64,
    cache_entries: u64,
    cache_purged: u64,
    seen_epoch_entries: u64,
    stream: StreamMetricsSnapshot,
    speed: SpeedTrace,
    solver: Option<Arc<dyn SolverStatsSource>>,
}

/// Shared metrics sink written by the dispatcher, read by anyone.
///
/// Memory is bounded by construction: latencies go into a fixed-size
/// log-bucketed [`Histogram`] (not a growing `Vec`), and the per-batch
/// [`SpeedTrace`] coalesces past [`photon_core::SPEED_TRACE_CAP`] samples
/// — a service that answers a billion requests holds the same metrics
/// footprint as one that answered a thousand.
pub struct ServiceMetrics {
    start: Instant,
    // Lock-free: recorded outside the counter mutex on the hot path.
    latency: Histogram,
    inner: Mutex<Inner>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Fresh metrics anchored at "now".
    pub fn new() -> Self {
        ServiceMetrics {
            start: Instant::now(),
            latency: Histogram::new(),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Attaches a solver pool so snapshots include the solve-tier
    /// scheduler state beside the render-side counters.
    pub fn attach_solver(&self, source: Arc<dyn SolverStatsSource>) {
        self.inner.lock().unwrap().solver = Some(source);
    }

    /// Records the view cache's live entry count and how many stale-epoch
    /// keys the dispatcher just purged.
    pub fn record_cache(&self, entries: u64, purged: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.cache_entries = entries;
        inner.cache_purged += purged;
    }

    /// Records the dispatcher's per-scene epoch-tracking map size (the
    /// `seen_epoch` bound regression watches this gauge).
    pub fn record_epoch_map(&self, entries: u64) {
        self.inner.lock().unwrap().seen_epoch_entries = entries;
    }

    /// Records the current live-subscription count.
    pub fn record_subscribers(&self, count: u64) {
        self.inner.lock().unwrap().stream.subscribers = count;
    }

    /// Records one frame delta pushed to a subscriber: how many changed
    /// tiles it carried, their pixel payload bytes, and what a full frame
    /// of that view would have cost instead.
    pub fn record_delta(&self, tiles: u64, tile_bytes: u64, full_frame_bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.stream.deltas += 1;
        inner.stream.tiles += tiles;
        inner.stream.tile_bytes += tile_bytes;
        inner.stream.full_frame_bytes += full_frame_bytes;
    }

    /// Records one epoch delta coalesced into a lagging subscriber's
    /// pending squash instead of being delivered. `lag_transition` is true
    /// when this fold *started* a lag episode (the subscriber just crossed
    /// its send window).
    pub fn record_squash(&self, lag_transition: bool) {
        let mut inner = self.inner.lock().unwrap();
        inner.stream.deltas_squashed += 1;
        if lag_transition {
            inner.stream.lag_events += 1;
        }
    }

    /// Records one `PHOTSTRM1` frame sent over TCP and its on-wire size.
    pub fn record_wire(&self, bytes: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.stream.wire_deltas += 1;
        inner.stream.wire_bytes += bytes;
    }

    /// Records one answered request and how it was satisfied. The latency
    /// lands in the bounded histogram without taking the counter lock.
    pub fn record_request(&self, latency: Duration, outcome: RequestOutcome) {
        self.latency.record(latency.as_micros() as u64);
        let mut inner = self.inner.lock().unwrap();
        inner.completed += 1;
        match outcome {
            RequestOutcome::Rendered => inner.rendered += 1,
            RequestOutcome::CacheHit => inner.cache_hits += 1,
            RequestOutcome::Coalesced => inner.coalesced += 1,
        }
    }

    /// Records one drained dispatch batch of `requests`, taking
    /// `batch_seconds` to serve.
    pub fn record_batch(&self, requests: u64, batch_seconds: f64) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let mut inner = self.inner.lock().unwrap();
        inner.batches += 1;
        inner.speed.push_batch(elapsed, requests, batch_seconds);
    }

    /// Snapshots every counter.
    ///
    /// All service counters are copied in ONE critical section, so the
    /// snapshot can never tear (e.g. observe a delta's `tiles` without its
    /// `tile_bytes`). The solver source is cloned inside that same section
    /// but its `solver_snapshot()` — which takes the scheduler's own lock
    /// — runs strictly after the counter lock is released, so the two
    /// locks are never nested and a solver that reports back into these
    /// metrics cannot deadlock.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let uptime = self.start.elapsed().as_secs_f64();
        let latency_hist = self.latency.snapshot();
        let (mut snap, solver_source) = {
            let inner = self.inner.lock().unwrap();
            (
                MetricsSnapshot {
                    completed: inner.completed,
                    rendered: inner.rendered,
                    cache_hits: inner.cache_hits,
                    coalesced: inner.coalesced,
                    batches: inner.batches,
                    qps: if uptime > 0.0 {
                        inner.completed as f64 / uptime
                    } else {
                        0.0
                    },
                    cache_entries: inner.cache_entries,
                    cache_purged: inner.cache_purged,
                    seen_epoch_entries: inner.seen_epoch_entries,
                    stream: inner.stream,
                    latency: LatencySummary::from_histogram(&latency_hist),
                    latency_hist,
                    speed: inner.speed.clone(),
                    solver: SolverMetricsSnapshot::default(),
                },
                inner.solver.clone(),
            )
        };
        if let Some(source) = solver_source {
            snap.solver = source.solver_snapshot();
        }
        snap
    }
}

/// How a request was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A fresh tile-parallel render.
    Rendered,
    /// Served from the LRU view cache.
    CacheHit,
    /// Shared an identical render within one dispatch batch.
    Coalesced,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_read_off_the_bounded_histogram() {
        // 1..=100 ms in microseconds.
        let m = ServiceMetrics::new();
        for ms in 1..=100u64 {
            m.record_request(Duration::from_millis(ms), RequestOutcome::Rendered);
        }
        let s = m.snapshot().latency;
        assert_eq!(s.count, 100);
        // Exact aggregates stay exact.
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        // Bucketed percentiles are ≥ the exact nearest-rank value and
        // within the same log2 bucket (exact p50 = 50 ms → bucket upper
        // bound 65.535 ms; exact p99 = 99 ms → clamped to max).
        assert_eq!(s.p50_ms, 65.535);
        assert_eq!(s.p90_ms, 100.0);
        assert_eq!(s.p99_ms, 100.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = ServiceMetrics::new().snapshot().latency;
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ms, 0.0);
    }

    #[test]
    fn stream_tier_accumulates_deltas_and_saved_bytes() {
        let m = ServiceMetrics::new();
        m.record_subscribers(2);
        m.record_epoch_map(3);
        // Two deltas over a 100-pixel frame (2400 payload bytes each):
        // one shipping 1 tile / 600 bytes, one shipping nothing.
        m.record_delta(1, 600, 2400);
        m.record_delta(0, 0, 2400);
        let s = m.snapshot();
        assert_eq!(s.seen_epoch_entries, 3);
        assert_eq!(s.stream.subscribers, 2);
        assert_eq!(s.stream.deltas, 2);
        assert_eq!(s.stream.tiles, 1);
        assert_eq!(
            (s.stream.tile_bytes, s.stream.full_frame_bytes),
            (600, 4800)
        );
        assert_eq!(s.stream.bytes_saved(), 4200);
    }

    #[test]
    fn squash_and_wire_counters_accumulate() {
        let m = ServiceMetrics::new();
        m.record_squash(true);
        m.record_squash(false);
        m.record_squash(false);
        m.record_wire(100);
        m.record_wire(44);
        let s = m.snapshot().stream;
        assert_eq!((s.deltas_squashed, s.lag_events), (3, 1));
        assert_eq!((s.wire_deltas, s.wire_bytes), (2, 144));
    }

    #[test]
    fn outcomes_split_the_counters() {
        let m = ServiceMetrics::new();
        m.record_request(Duration::from_millis(2), RequestOutcome::Rendered);
        m.record_request(Duration::from_millis(1), RequestOutcome::CacheHit);
        m.record_request(Duration::from_millis(1), RequestOutcome::Coalesced);
        m.record_batch(3, 0.004);
        let s = m.snapshot();
        assert_eq!(s.completed, 3);
        assert_eq!((s.rendered, s.cache_hits, s.coalesced), (1, 1, 1));
        assert_eq!(s.batches, 1);
        assert_eq!(s.speed.total_photons(), 3); // "photons" are requests here
        assert!(s.qps > 0.0);
    }
}
