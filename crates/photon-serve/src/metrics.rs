//! Service metrics: request latency percentiles and throughput, in the
//! `perf` house style.
//!
//! The simulator's perf layer records speed-vs-time traces per batch
//! ([`SpeedTrace`]); the serving layer does the same with dispatch batches —
//! one sample per drained queue batch, rate in requests/second — and adds
//! the request-level accounting a service needs: completed/rendered/cache
//! splits and p50/p99 latency over the full run.

use photon_core::SpeedTrace;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Latency distribution summary, milliseconds.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: u64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Median latency.
    pub p50_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Worst observed latency.
    pub max_ms: f64,
}

/// Point-in-time copy of the service counters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Requests answered (rendered, coalesced, or cache hits).
    pub completed: u64,
    /// Requests answered by actually rendering.
    pub rendered: u64,
    /// Requests answered from the view cache.
    pub cache_hits: u64,
    /// Requests answered by riding an identical render in the same batch.
    pub coalesced: u64,
    /// Dispatch batches drained.
    pub batches: u64,
    /// Completed requests per second of service uptime.
    pub qps: f64,
    /// Request latency distribution.
    pub latency: LatencySummary,
    /// Per-dispatch-batch rate trace (requests/second), perf style.
    pub speed: SpeedTrace,
}

struct Inner {
    latencies_us: Vec<u64>,
    rendered: u64,
    cache_hits: u64,
    coalesced: u64,
    batches: u64,
    speed: SpeedTrace,
}

/// Shared metrics sink written by the dispatcher, read by anyone.
pub struct ServiceMetrics {
    start: Instant,
    inner: Mutex<Inner>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceMetrics {
    /// Fresh metrics anchored at "now".
    pub fn new() -> Self {
        ServiceMetrics {
            start: Instant::now(),
            inner: Mutex::new(Inner {
                latencies_us: Vec::new(),
                rendered: 0,
                cache_hits: 0,
                coalesced: 0,
                batches: 0,
                speed: SpeedTrace::new(),
            }),
        }
    }

    /// Records one answered request and how it was satisfied.
    pub fn record_request(&self, latency: Duration, outcome: RequestOutcome) {
        let mut inner = self.inner.lock().unwrap();
        inner.latencies_us.push(latency.as_micros() as u64);
        match outcome {
            RequestOutcome::Rendered => inner.rendered += 1,
            RequestOutcome::CacheHit => inner.cache_hits += 1,
            RequestOutcome::Coalesced => inner.coalesced += 1,
        }
    }

    /// Records one drained dispatch batch of `requests`, taking
    /// `batch_seconds` to serve.
    pub fn record_batch(&self, requests: u64, batch_seconds: f64) {
        let elapsed = self.start.elapsed().as_secs_f64();
        let mut inner = self.inner.lock().unwrap();
        inner.batches += 1;
        inner.speed.push_batch(elapsed, requests, batch_seconds);
    }

    /// Snapshots every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let completed = inner.latencies_us.len() as u64;
        let uptime = self.start.elapsed().as_secs_f64();
        MetricsSnapshot {
            completed,
            rendered: inner.rendered,
            cache_hits: inner.cache_hits,
            coalesced: inner.coalesced,
            batches: inner.batches,
            qps: if uptime > 0.0 {
                completed as f64 / uptime
            } else {
                0.0
            },
            latency: summarize(&inner.latencies_us),
            speed: inner.speed.clone(),
        }
    }
}

/// How a request was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestOutcome {
    /// A fresh tile-parallel render.
    Rendered,
    /// Served from the LRU view cache.
    CacheHit,
    /// Shared an identical render within one dispatch batch.
    Coalesced,
}

/// Summarizes microsecond latencies (nearest-rank percentiles).
fn summarize(latencies_us: &[u64]) -> LatencySummary {
    if latencies_us.is_empty() {
        return LatencySummary::default();
    }
    let mut sorted = latencies_us.to_vec();
    sorted.sort_unstable();
    let pick = |q: f64| {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1] as f64 / 1000.0
    };
    LatencySummary {
        count: sorted.len() as u64,
        mean_ms: sorted.iter().sum::<u64>() as f64 / sorted.len() as f64 / 1000.0,
        p50_ms: pick(0.50),
        p99_ms: pick(0.99),
        max_ms: *sorted.last().unwrap() as f64 / 1000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_follow_nearest_rank() {
        // 1..=100 ms in microseconds.
        let us: Vec<u64> = (1..=100).map(|ms| ms * 1000).collect();
        let s = summarize(&us);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ms, 0.0);
    }

    #[test]
    fn outcomes_split_the_counters() {
        let m = ServiceMetrics::new();
        m.record_request(Duration::from_millis(2), RequestOutcome::Rendered);
        m.record_request(Duration::from_millis(1), RequestOutcome::CacheHit);
        m.record_request(Duration::from_millis(1), RequestOutcome::Coalesced);
        m.record_batch(3, 0.004);
        let s = m.snapshot();
        assert_eq!(s.completed, 3);
        assert_eq!((s.rendered, s.cache_hits, s.coalesced), (1, 1, 1));
        assert_eq!(s.batches, 1);
        assert_eq!(s.speed.total_photons(), 3); // "photons" are requests here
        assert!(s.qps > 0.0);
    }
}
