//! Off-box streaming: the `PHOTSTRM1` TCP transport.
//!
//! [`crate::stream`] delivers [`FrameDelta`]s in-process over channels;
//! this module puts the same subscription on a socket. A
//! [`StreamServer`] listens beside the render service, reads one
//! subscribe frame per connection, registers the subscription through
//! [`RenderService::subscribe`] — the exact path in-process clients use,
//! slow-consumer coalescing included — and writes each delta back as a
//! length-prefixed [`photon_core::wire`] frame. A [`StreamClient`]
//! connects, subscribes, and decodes deltas; in lossless mode (the
//! default) applying them reassembles every epoch bit-identical to a
//! server-side [`crate::render_parallel`] of that epoch.
//!
//! ```text
//! StreamClient ──subscribe(scene, camera, mode)──▶ StreamServer
//!              ◀── PHOTSTRM1 delta frames ──────── (one writer/conn,
//!                                                   fed by StreamHandle)
//! ```
//!
//! The slow-consumer story composes across the boundary: a client that
//! stops reading backs TCP up, the per-connection writer blocks in
//! `write_all`, the subscription's channel fills to its
//! [`crate::ServeConfig::stream_window`], and the dispatcher folds
//! further epochs into one pending squashed delta — server-side memory
//! for the stalled client stays bounded while other connections stream
//! on unaffected.

use crate::service::{RenderService, ServeError};
use crate::store::SceneId;
use crate::stream::{FrameDelta, StreamRequest};
use photon_core::wire::{self, SubscribeFrame, WireFrame, WireMode};
use photon_core::Camera;
use std::io::{self, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a connection writer waits on its subscription channel before
/// re-checking the server's stop flag — bounds shutdown latency, not
/// delivery latency (deltas are handed over the moment they arrive).
const STOP_POLL: Duration = Duration::from_millis(100);

/// A connection's writer thread paired with a raw-fd clone of its
/// socket, kept so [`StreamServer`]'s `Drop` can `shutdown()` the socket
/// out from under a writer blocked on a stalled client before joining.
type ConnRegistry = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// A TCP fan-out endpoint for [`FrameDelta`] subscriptions.
///
/// Binds loopback on an OS-assigned port (read it back from
/// [`local_addr`](Self::local_addr)); each accepted connection reads one
/// subscribe frame and then receives that subscription's delta stream
/// until either side disconnects. Dropping the server shuts every
/// connection down — including writers mid-`write_all` to stalled
/// clients — and joins all threads.
pub struct StreamServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    conns: ConnRegistry,
}

impl StreamServer {
    /// Binds `127.0.0.1:0` and starts accepting subscribers for
    /// `service`'s store.
    pub fn serve(service: Arc<RenderService>) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("photon-stream-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let Ok(sock) = conn else { continue };
                        // The raw-fd clone lets Drop shutdown() the socket
                        // out from under a writer blocked on a stalled
                        // client; without it, joining could hang forever.
                        let Ok(peer) = sock.try_clone() else { continue };
                        let service = Arc::clone(&service);
                        let conn_stop = Arc::clone(&stop);
                        let spawned = std::thread::Builder::new()
                            .name("photon-stream-conn".into())
                            .spawn(move || {
                                let _ = serve_connection(sock, &service, &conn_stop);
                            });
                        if let Ok(handle) = spawned {
                            conns.lock().unwrap().push((handle, peer));
                        }
                    }
                })?
        };
        Ok(StreamServer {
            addr,
            stop,
            accept: Some(accept),
            conns,
        })
    }

    /// The bound address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for StreamServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (thread, sock) in conns {
            let _ = sock.shutdown(Shutdown::Both);
            let _ = thread.join();
        }
    }
}

/// Serves one connection: subscribe handshake, then the delta pump.
fn serve_connection(
    sock: TcpStream,
    service: &Arc<RenderService>,
    stop: &AtomicBool,
) -> io::Result<()> {
    sock.set_nodelay(true)?;
    let mut reader = sock.try_clone()?;
    let mut writer = BufWriter::new(sock);
    let frame = wire::read_frame(&mut reader)?;
    let WireFrame::Subscribe(sub) = wire::decode_frame(&frame)? else {
        let refusal = wire::encode_error("expected a subscribe frame");
        wire::write_frame(&mut writer, &refusal)?;
        return writer.flush();
    };
    let request = StreamRequest {
        scene_id: SceneId(sub.scene),
        camera: sub.camera,
    };
    let handle = match service.subscribe(request) {
        Ok(handle) => handle,
        Err(e) => {
            let refusal = wire::encode_error(&e.to_string());
            wire::write_frame(&mut writer, &refusal)?;
            return writer.flush();
        }
    };
    let metrics = service.metrics_handle();
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(());
        }
        match handle.recv_timeout(STOP_POLL) {
            Ok(delta) => {
                let body = delta.encode(sub.mode);
                // Record before the write — once the frame is flushed the
                // client can observe it and read metrics, so recording
                // afterwards races exact-count readers (the cost is one
                // phantom frame when the write fails and the connection
                // dies anyway). A write error (client gone, server
                // shutdown) drops the handle on return, which
                // unsubscribes dispatcher-side.
                metrics.record_wire(body.len() as u64 + 4);
                wire::write_frame(&mut writer, &body)?;
                writer.flush()?;
            }
            Err(ServeError::TimedOut) => {}
            Err(_) => return Ok(()),
        }
    }
}

/// The client end of an off-box subscription.
///
/// Connects, sends the subscribe frame, and then yields decoded
/// [`FrameDelta`]s from [`recv_delta`](Self::recv_delta). Apply each
/// delta in order (see [`FrameDelta::apply`]) to reassemble the stream —
/// bit-identical to the server's renders in [`WireMode::Lossless`],
/// within the quantization error bound in [`WireMode::Quantized`].
pub struct StreamClient {
    sock: TcpStream,
    mode: WireMode,
    wire_bytes: u64,
}

impl StreamClient {
    /// Connects to a [`StreamServer`] and subscribes `camera` to
    /// `scene_id`'s epoch stream, with delta payloads in `mode`.
    pub fn connect(
        addr: SocketAddr,
        scene_id: SceneId,
        camera: Camera,
        mode: WireMode,
    ) -> io::Result<Self> {
        let mut sock = TcpStream::connect(addr)?;
        sock.set_nodelay(true)?;
        let subscribe = wire::encode_subscribe(&SubscribeFrame {
            scene: scene_id.0,
            mode,
            camera,
        });
        wire::write_frame(&mut sock, &subscribe)?;
        Ok(StreamClient {
            sock,
            mode,
            wire_bytes: 0,
        })
    }

    /// Blocks for the next delta frame. An `UnexpectedEof` error means
    /// the server closed the stream; a server refusal surfaces as
    /// [`io::ErrorKind::Other`] carrying the refusal message.
    pub fn recv_delta(&mut self) -> io::Result<FrameDelta> {
        let frame = wire::read_frame(&mut self.sock)?;
        self.wire_bytes += frame.len() as u64 + 4;
        match wire::decode_frame(&frame)? {
            WireFrame::Delta(d) => Ok(FrameDelta {
                epoch: d.epoch,
                width: d.width,
                height: d.height,
                tiles: d.tiles,
            }),
            WireFrame::Error(msg) => Err(io::Error::other(format!("server refused: {msg}"))),
            WireFrame::Subscribe(_) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unexpected subscribe frame from server",
            )),
        }
    }

    /// The payload mode this subscription asked for.
    pub fn mode(&self) -> WireMode {
        self.mode
    }

    /// Applies a read timeout to the underlying socket (`None` blocks
    /// forever) — lets tests and cautious clients bound
    /// [`recv_delta`](Self::recv_delta).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.sock.set_read_timeout(timeout)
    }

    /// Total bytes received off the wire (length prefixes included) —
    /// what the bench compares against full-frame and in-process delta
    /// costs.
    pub fn wire_bytes(&self) -> u64 {
        self.wire_bytes
    }
}
