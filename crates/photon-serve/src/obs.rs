//! Metrics exporters: Prometheus-style text exposition, a versioned JSON
//! dump, and a minimal TCP endpoint serving both.
//!
//! [`ObsExporter`] turns a live pool's state — the full
//! [`MetricsSnapshot`], the per-stage duration histograms, and the flight
//! recorder's recent tail — into the two formats an operator actually
//! consumes: `prometheus_text()` for scrapers and dashboards, `json()`
//! for post-mortems and scripts. [`ObsServer`] is the off-box probe: a
//! blocking TCP listener (std only, one thread) answering
//! `GET /metrics` with the text exposition and `GET /metrics.json` with
//! the JSON dump — the endpoint a shard router's health checks will point
//! at.
//!
//! Neither exporter holds any lock while formatting: everything reads
//! point-in-time snapshots, so a slow scraper can never stall the
//! dispatcher or the scheduler.

use crate::metrics::{MetricsSnapshot, ServiceMetrics};
use crate::RenderService;
use photon_core::obs::{json_escape, HistogramSnapshot, ObsEvent};
use photon_core::ObsHub;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How many flight-recorder events the JSON dump carries.
pub const JSON_EVENT_TAIL: usize = 256;

/// Schema version stamped into every JSON dump.
pub const JSON_VERSION: u64 = 1;

/// Renders a live service's observability state as Prometheus text or
/// versioned JSON. Cheap to clone; construct via
/// [`RenderService::exporter`] or [`ObsExporter::new`].
#[derive(Clone)]
pub struct ObsExporter {
    metrics: Arc<ServiceMetrics>,
    obs: Arc<ObsHub>,
}

impl ObsExporter {
    /// An exporter over a metrics sink and an observability hub (usually
    /// the store's — see `AnswerStore::obs`).
    pub fn new(metrics: Arc<ServiceMetrics>, obs: Arc<ObsHub>) -> Self {
        ObsExporter { metrics, obs }
    }

    /// The Prometheus-style text exposition: request/outcome counters,
    /// cache and stream counters, solve-tier gauges with per-tenant
    /// labels, and cumulative `le` buckets for the request-latency and
    /// per-stage histograms. Per-job series are deliberately absent —
    /// job ids are unbounded and would blow up scrape cardinality; the
    /// JSON dump carries them instead.
    pub fn prometheus_text(&self) -> String {
        let snap = self.metrics.snapshot();
        let stages = self.obs.stage_snapshot();
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, value: f64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };

        let _ = writeln!(
            out,
            "# HELP photon_requests_total Requests answered, by outcome."
        );
        let _ = writeln!(out, "# TYPE photon_requests_total counter");
        for (outcome, n) in [
            ("rendered", snap.rendered),
            ("cache_hit", snap.cache_hits),
            ("coalesced", snap.coalesced),
        ] {
            let _ = writeln!(out, "photon_requests_total{{outcome=\"{outcome}\"}} {n}");
        }
        counter(
            &mut out,
            "photon_dispatch_batches_total",
            "Dispatch batches drained.",
            snap.batches,
        );
        gauge(
            &mut out,
            "photon_qps",
            "Completed requests per second of uptime.",
            snap.qps,
        );
        gauge(
            &mut out,
            "photon_cache_entries",
            "Live view-cache entries.",
            snap.cache_entries as f64,
        );
        counter(
            &mut out,
            "photon_cache_purged_total",
            "Stale-epoch cache keys purged.",
            snap.cache_purged,
        );
        gauge(
            &mut out,
            "photon_stream_subscribers",
            "Live epoch subscriptions.",
            snap.stream.subscribers as f64,
        );
        counter(
            &mut out,
            "photon_stream_deltas_total",
            "Frame deltas pushed.",
            snap.stream.deltas,
        );
        counter(
            &mut out,
            "photon_stream_tiles_total",
            "Changed tiles shipped.",
            snap.stream.tiles,
        );
        counter(
            &mut out,
            "photon_stream_tile_bytes_total",
            "Pixel payload bytes shipped in deltas.",
            snap.stream.tile_bytes,
        );
        counter(
            &mut out,
            "photon_stream_bytes_saved_total",
            "Bytes saved vs a frame-per-epoch protocol.",
            snap.stream.bytes_saved(),
        );
        counter(
            &mut out,
            "photon_stream_deltas_squashed_total",
            "Deltas coalesced into a slow consumer's pending delta.",
            snap.stream.deltas_squashed,
        );
        counter(
            &mut out,
            "photon_stream_lag_events_total",
            "Times a subscriber entered the lagged (coalescing) state.",
            snap.stream.lag_events,
        );
        counter(
            &mut out,
            "photon_stream_wire_deltas_total",
            "PHOTSTRM1 delta frames written to sockets.",
            snap.stream.wire_deltas,
        );
        counter(
            &mut out,
            "photon_stream_wire_bytes_total",
            "PHOTSTRM1 bytes written to sockets (length prefixes included).",
            snap.stream.wire_bytes,
        );

        gauge(
            &mut out,
            "photon_solver_queue_depth",
            "Jobs waiting for a worker slice.",
            snap.solver.queue_depth as f64,
        );
        gauge(
            &mut out,
            "photon_solver_running",
            "Jobs holding a worker slice.",
            snap.solver.running as f64,
        );
        gauge(
            &mut out,
            "photon_solver_quota_blocked",
            "Jobs parked on exhausted tenant budgets.",
            snap.solver.quota_blocked as f64,
        );
        counter(
            &mut out,
            "photon_solver_done_total",
            "Jobs finished (converged or canceled).",
            snap.solver.done,
        );
        counter(
            &mut out,
            "photon_checkpoints_total",
            "Engine checkpoints frozen.",
            snap.solver.checkpoints_taken,
        );
        counter(
            &mut out,
            "photon_checkpoint_bytes_total",
            "Total PHOTCK1 bytes of frozen checkpoints.",
            snap.solver.checkpoint_bytes,
        );
        let solve_photons: u64 = snap.solver.jobs.iter().map(|j| j.emitted).sum();
        counter(
            &mut out,
            "photon_solve_photons_total",
            "Photons emitted across all solve jobs.",
            solve_photons,
        );
        gauge(
            &mut out,
            "photon_forest_node_bytes",
            "Hot packed-node arena bytes across all solve-job forests.",
            snap.solver.forest_node_bytes as f64,
        );
        gauge(
            &mut out,
            "photon_forest_leaf_bytes",
            "Cold leaf-statistics arena bytes across all solve-job forests.",
            snap.solver.forest_leaf_bytes as f64,
        );
        gauge(
            &mut out,
            "photon_forest_leaf_bins",
            "Leaf bins across all solve-job forests.",
            snap.solver.forest_leaf_bins as f64,
        );
        let _ = writeln!(
            out,
            "# HELP photon_tenant_slices_total Scheduler slices granted, per tenant."
        );
        let _ = writeln!(out, "# TYPE photon_tenant_slices_total counter");
        for t in &snap.solver.tenants {
            let _ = writeln!(
                out,
                "photon_tenant_slices_total{{tenant=\"{}\"}} {}",
                prom_escape(&t.tenant),
                t.slices
            );
        }
        let _ = writeln!(
            out,
            "# HELP photon_tenant_photons_total Photons emitted, per tenant."
        );
        let _ = writeln!(out, "# TYPE photon_tenant_photons_total counter");
        for t in &snap.solver.tenants {
            let _ = writeln!(
                out,
                "photon_tenant_photons_total{{tenant=\"{}\"}} {}",
                prom_escape(&t.tenant),
                t.photons_used
            );
        }

        histogram_text(
            &mut out,
            "photon_request_latency_us",
            "",
            &snap.latency_hist,
        );
        for (stage, hist) in stages.iter() {
            if hist.count() > 0 {
                histogram_text(
                    &mut out,
                    "photon_stage_duration_us",
                    &format!("stage=\"{}\"", stage.name()),
                    hist,
                );
            }
        }

        let recorder = self.obs.recorder();
        counter(
            &mut out,
            "photon_events_recorded_total",
            "Flight-recorder events recorded over the hub's lifetime.",
            recorder.recorded(),
        );
        counter(
            &mut out,
            "photon_events_dropped_total",
            "Flight-recorder events dropped to stay within capacity.",
            recorder.dropped(),
        );
        out
    }

    /// A versioned JSON dump: the full [`MetricsSnapshot`] (service,
    /// stream, and solve tiers with per-job detail), every non-empty stage
    /// histogram, and the newest [`JSON_EVENT_TAIL`] flight-recorder
    /// events.
    pub fn json(&self) -> String {
        let snap = self.metrics.snapshot();
        let stages = self.obs.stage_snapshot();
        let recorder = self.obs.recorder();
        let events = recorder.tail(JSON_EVENT_TAIL);
        let mut out = String::with_capacity(8192);
        out.push_str(&format!("{{\"version\":{JSON_VERSION},"));
        out.push_str(&format!(
            "\"service\":{{\"completed\":{},\"rendered\":{},\"cache_hits\":{},\"coalesced\":{},\"batches\":{},\"qps\":{:.3},\"cache_entries\":{},\"cache_purged\":{},\"seen_epoch_entries\":{}}},",
            snap.completed,
            snap.rendered,
            snap.cache_hits,
            snap.coalesced,
            snap.batches,
            snap.qps,
            snap.cache_entries,
            snap.cache_purged,
            snap.seen_epoch_entries,
        ));
        out.push_str(&format!(
            "\"latency\":{{\"count\":{},\"mean_ms\":{:.3},\"p50_ms\":{:.3},\"p90_ms\":{:.3},\"p99_ms\":{:.3},\"max_ms\":{:.3},\"histogram\":{}}},",
            snap.latency.count,
            snap.latency.mean_ms,
            snap.latency.p50_ms,
            snap.latency.p90_ms,
            snap.latency.p99_ms,
            snap.latency.max_ms,
            histogram_json(&snap.latency_hist),
        ));
        out.push_str(&format!(
            "\"stream\":{{\"subscribers\":{},\"deltas\":{},\"tiles\":{},\"tile_bytes\":{},\"full_frame_bytes\":{},\"bytes_saved\":{},\"deltas_squashed\":{},\"lag_events\":{},\"wire_deltas\":{},\"wire_bytes\":{}}},",
            snap.stream.subscribers,
            snap.stream.deltas,
            snap.stream.tiles,
            snap.stream.tile_bytes,
            snap.stream.full_frame_bytes,
            snap.stream.bytes_saved(),
            snap.stream.deltas_squashed,
            snap.stream.lag_events,
            snap.stream.wire_deltas,
            snap.stream.wire_bytes,
        ));
        out.push_str("\"stages\":{");
        let mut first = true;
        for (stage, hist) in stages.iter() {
            if hist.count() == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", stage.name(), histogram_json(hist)));
        }
        out.push_str("},");
        out.push_str(&format!(
            "\"solver\":{{\"queue_depth\":{},\"running\":{},\"paused\":{},\"quota_blocked\":{},\"done\":{},\"checkpoints_taken\":{},\"checkpoint_bytes\":{},\"forest_node_bytes\":{},\"forest_leaf_bytes\":{},\"forest_leaf_bins\":{},\"jobs\":[",
            snap.solver.queue_depth,
            snap.solver.running,
            snap.solver.paused,
            snap.solver.quota_blocked,
            snap.solver.done,
            snap.solver.checkpoints_taken,
            snap.solver.checkpoint_bytes,
            snap.solver.forest_node_bytes,
            snap.solver.forest_leaf_bytes,
            snap.solver.forest_leaf_bins,
        ));
        for (i, j) in snap.solver.jobs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"job\":{},\"tenant\":\"{}\",\"priority\":{},\"state\":\"{}\",\"emitted\":{},\"resumed_photons\":{},\"target_photons\":{},\"slices\":{},\"epochs\":{},\"photons_per_sec\":{:.1},\"epochs_per_sec\":{:.3},\"forest_node_bytes\":{},\"forest_leaf_bytes\":{},\"forest_leaf_bins\":{}}}",
                j.job,
                json_escape(&j.tenant),
                j.priority,
                j.state,
                j.emitted,
                j.resumed_photons,
                j.target_photons,
                j.slices,
                j.epochs,
                j.photons_per_sec,
                j.epochs_per_sec,
                j.forest_node_bytes,
                j.forest_leaf_bytes,
                j.forest_leaf_bins,
            ));
        }
        out.push_str("],\"tenants\":[");
        for (i, t) in snap.solver.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tenant\":\"{}\",\"slices\":{},\"photons_used\":{},\"budget_remaining\":{},\"quota_blocked_jobs\":{}}}",
                json_escape(&t.tenant),
                t.slices,
                t.photons_used,
                t.budget_remaining
                    .map_or("null".to_string(), |b| b.to_string()),
                t.quota_blocked_jobs,
            ));
        }
        out.push_str("]},");
        out.push_str(&format!(
            "\"recorder\":{{\"recorded\":{},\"dropped\":{},\"capacity\":{},\"events\":[",
            recorder.recorded(),
            recorder.dropped(),
            recorder.capacity(),
        ));
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event_json(e));
        }
        out.push_str("]}}");
        out
    }

    /// The full service snapshot the exporter formats from — for callers
    /// that want the typed data instead of a serialization.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }
}

impl RenderService {
    /// An exporter over this service's metrics and its store's shared
    /// observability hub — the one-liner behind both
    /// [`ObsExporter::prometheus_text`] scrapes and [`ObsServer`]
    /// endpoints.
    pub fn exporter(&self) -> ObsExporter {
        ObsExporter::new(self.metrics_handle(), self.store().obs())
    }
}

/// Escapes a Prometheus label value.
fn prom_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Appends one histogram in exposition format: cumulative `le` buckets
/// (empty buckets skipped), `+Inf`, `_sum`, `_count`. `labels` is either
/// empty or a ready `key="value"` fragment.
fn histogram_text(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot) {
    let _ = writeln!(out, "# HELP {name} Microsecond histogram (log2 buckets).");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let sep = if labels.is_empty() { "" } else { "," };
    for (upper, cum) in h.cumulative() {
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{upper}\"}} {cum}");
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        h.count()
    );
    if labels.is_empty() {
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count());
    } else {
        let _ = writeln!(out, "{name}_sum{{{labels}}} {}", h.sum);
        let _ = writeln!(out, "{name}_count{{{labels}}} {}", h.count());
    }
}

/// One histogram as JSON: count, sum, max, and `[upper, cumulative]`
/// bucket pairs.
fn histogram_json(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h
        .cumulative()
        .iter()
        .map(|(upper, cum)| format!("[{upper},{cum}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum,
        h.max,
        buckets.join(",")
    )
}

/// One flight-recorder event as JSON.
fn event_json(e: &ObsEvent) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"ts_us\":{},\"tier\":\"{}\",\"kind\":\"{}\"",
        e.seq,
        e.ts_us,
        e.tier.name(),
        e.kind.name()
    );
    if let Some(scene) = e.ctx.scene {
        out.push_str(&format!(",\"scene\":{scene}"));
    }
    if let Some(job) = e.ctx.job {
        out.push_str(&format!(",\"job\":{job}"));
    }
    if let Some(tenant) = e.ctx.tenant.as_deref() {
        out.push_str(&format!(",\"tenant\":\"{}\"", json_escape(tenant)));
    }
    out.push_str(&format!(",\"payload\":{}}}", e.ctx.payload));
    out
}

/// A minimal blocking HTTP endpoint serving an [`ObsExporter`]:
/// `GET /metrics` answers the Prometheus text exposition,
/// `GET /metrics.json` the JSON dump, anything else 404. One
/// connection at a time — it is a probe, not a web server. Dropping the
/// server stops the listener thread.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObsServer {
    /// Binds `127.0.0.1:0` (an OS-assigned port — read it back from
    /// [`local_addr`](Self::local_addr)) and starts answering scrapes.
    pub fn serve(exporter: ObsExporter) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("photon-obs-server".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::Acquire) {
                            return;
                        }
                        let Ok(stream) = conn else { continue };
                        let _ = answer_scrape(stream, &exporter);
                    }
                })?
        };
        Ok(ObsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address, e.g. to format a scrape URL:
    /// `http://{local_addr}/metrics`.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// Answers one scrape connection.
fn answer_scrape(stream: TcpStream, exporter: &ObsExporter) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so well-behaved clients see a clean close.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line.trim().is_empty() {
            break;
        }
    }
    let path = request_line.split_whitespace().nth(1).unwrap_or("/");
    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4",
            exporter.prometheus_text(),
        ),
        "/metrics.json" => ("200 OK", "application/json", exporter.json()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use photon_core::obs::{ObsCtx, ObsKind, Stage};
    use std::time::Duration as StdDuration;

    fn exporter_with_data() -> ObsExporter {
        let metrics = Arc::new(ServiceMetrics::new());
        let obs = Arc::new(ObsHub::default());
        metrics.record_request(
            StdDuration::from_millis(3),
            crate::metrics::RequestOutcome::Rendered,
        );
        metrics.record_delta(2, 1200, 4800);
        obs.stage(Stage::Render, 0.002);
        obs.emit(
            ObsKind::EpochPublished,
            ObsCtx {
                scene: Some(0),
                payload: 1,
                ..Default::default()
            },
        );
        ObsExporter::new(metrics, obs)
    }

    #[test]
    fn text_exposition_carries_the_series() {
        let text = exporter_with_data().prometheus_text();
        assert!(text.contains("photon_requests_total{outcome=\"rendered\"} 1"));
        assert!(text.contains("photon_stream_deltas_total 1"));
        assert!(text.contains("photon_request_latency_us_bucket"));
        assert!(text.contains("photon_stage_duration_us_bucket{stage=\"render\""));
        assert!(text.contains("le=\"+Inf\""));
        assert!(text.contains("photon_events_recorded_total 1"));
        assert!(text.contains("photon_forest_node_bytes 0"));
        assert!(text.contains("photon_forest_leaf_bytes 0"));
        // Every non-comment line is `name{labels} value` shaped.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
            assert!(parts.next().is_some(), "no metric name in {line:?}");
        }
    }

    #[test]
    fn json_dump_is_versioned_and_carries_events() {
        let json = exporter_with_data().json();
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"kind\":\"epoch-published\""));
        assert!(json.contains("\"stages\":{\"render\":"));
        assert!(json.contains("\"completed\":1"));
        assert!(json.contains("\"forest_node_bytes\":0"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the dependency set.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close, "unbalanced JSON structure");
    }

    #[test]
    fn obs_server_answers_both_routes_then_stops() {
        let server = ObsServer::serve(exporter_with_data()).expect("bind loopback");
        let addr = server.local_addr();
        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).expect("connect");
            write!(conn, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut body = String::new();
            use std::io::Read;
            conn.read_to_string(&mut body).expect("read response");
            body
        };
        let text = fetch("/metrics");
        assert!(text.starts_with("HTTP/1.1 200 OK"));
        assert!(text.contains("photon_requests_total"));
        let json = fetch("/metrics.json");
        assert!(json.contains("\"version\":1"));
        assert!(fetch("/nope").starts_with("HTTP/1.1 404"));
        drop(server); // joins cleanly
    }
}
